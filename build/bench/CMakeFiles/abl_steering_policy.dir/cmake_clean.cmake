file(REMOVE_RECURSE
  "CMakeFiles/abl_steering_policy.dir/abl_steering_policy.cpp.o"
  "CMakeFiles/abl_steering_policy.dir/abl_steering_policy.cpp.o.d"
  "abl_steering_policy"
  "abl_steering_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_steering_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
