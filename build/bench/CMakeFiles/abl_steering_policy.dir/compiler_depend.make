# Empty compiler generated dependencies file for abl_steering_policy.
# This may be replaced when dependencies are built.
