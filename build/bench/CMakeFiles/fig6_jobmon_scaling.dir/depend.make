# Empty dependencies file for fig6_jobmon_scaling.
# This may be replaced when dependencies are built.
