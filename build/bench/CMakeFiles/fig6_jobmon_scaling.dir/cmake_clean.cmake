file(REMOVE_RECURSE
  "CMakeFiles/fig6_jobmon_scaling.dir/fig6_jobmon_scaling.cpp.o"
  "CMakeFiles/fig6_jobmon_scaling.dir/fig6_jobmon_scaling.cpp.o.d"
  "fig6_jobmon_scaling"
  "fig6_jobmon_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_jobmon_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
