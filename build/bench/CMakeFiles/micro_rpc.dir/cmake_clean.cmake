file(REMOVE_RECURSE
  "CMakeFiles/micro_rpc.dir/micro_rpc.cpp.o"
  "CMakeFiles/micro_rpc.dir/micro_rpc.cpp.o.d"
  "micro_rpc"
  "micro_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
