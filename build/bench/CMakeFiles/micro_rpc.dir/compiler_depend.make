# Empty compiler generated dependencies file for micro_rpc.
# This may be replaced when dependencies are built.
