# Empty compiler generated dependencies file for micro_estimators.
# This may be replaced when dependencies are built.
