file(REMOVE_RECURSE
  "CMakeFiles/micro_estimators.dir/micro_estimators.cpp.o"
  "CMakeFiles/micro_estimators.dir/micro_estimators.cpp.o.d"
  "micro_estimators"
  "micro_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
