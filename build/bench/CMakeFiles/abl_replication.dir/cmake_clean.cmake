file(REMOVE_RECURSE
  "CMakeFiles/abl_replication.dir/abl_replication.cpp.o"
  "CMakeFiles/abl_replication.dir/abl_replication.cpp.o.d"
  "abl_replication"
  "abl_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
