# Empty dependencies file for abl_replication.
# This may be replaced when dependencies are built.
