# Empty compiler generated dependencies file for abl_fairshare.
# This may be replaced when dependencies are built.
