file(REMOVE_RECURSE
  "CMakeFiles/abl_fairshare.dir/abl_fairshare.cpp.o"
  "CMakeFiles/abl_fairshare.dir/abl_fairshare.cpp.o.d"
  "abl_fairshare"
  "abl_fairshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fairshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
