# Empty dependencies file for fig7_steering.
# This may be replaced when dependencies are built.
