file(REMOVE_RECURSE
  "CMakeFiles/fig7_steering.dir/fig7_steering.cpp.o"
  "CMakeFiles/fig7_steering.dir/fig7_steering.cpp.o.d"
  "fig7_steering"
  "fig7_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
