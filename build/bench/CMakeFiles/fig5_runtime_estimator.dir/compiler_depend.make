# Empty compiler generated dependencies file for fig5_runtime_estimator.
# This may be replaced when dependencies are built.
