file(REMOVE_RECURSE
  "CMakeFiles/fig5_runtime_estimator.dir/fig5_runtime_estimator.cpp.o"
  "CMakeFiles/fig5_runtime_estimator.dir/fig5_runtime_estimator.cpp.o.d"
  "fig5_runtime_estimator"
  "fig5_runtime_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_runtime_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
