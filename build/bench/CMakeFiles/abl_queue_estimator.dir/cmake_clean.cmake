file(REMOVE_RECURSE
  "CMakeFiles/abl_queue_estimator.dir/abl_queue_estimator.cpp.o"
  "CMakeFiles/abl_queue_estimator.dir/abl_queue_estimator.cpp.o.d"
  "abl_queue_estimator"
  "abl_queue_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_queue_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
