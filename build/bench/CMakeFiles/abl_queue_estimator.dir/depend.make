# Empty dependencies file for abl_queue_estimator.
# This may be replaced when dependencies are built.
