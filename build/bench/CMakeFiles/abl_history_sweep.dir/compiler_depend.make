# Empty compiler generated dependencies file for abl_history_sweep.
# This may be replaced when dependencies are built.
