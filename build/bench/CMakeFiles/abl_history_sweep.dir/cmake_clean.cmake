file(REMOVE_RECURSE
  "CMakeFiles/abl_history_sweep.dir/abl_history_sweep.cpp.o"
  "CMakeFiles/abl_history_sweep.dir/abl_history_sweep.cpp.o.d"
  "abl_history_sweep"
  "abl_history_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_history_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
