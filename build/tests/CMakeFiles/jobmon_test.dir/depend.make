# Empty dependencies file for jobmon_test.
# This may be replaced when dependencies are built.
