file(REMOVE_RECURSE
  "CMakeFiles/jobmon_test.dir/jobmon_test.cpp.o"
  "CMakeFiles/jobmon_test.dir/jobmon_test.cpp.o.d"
  "jobmon_test"
  "jobmon_test.pdb"
  "jobmon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
