
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/stats_test.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gae_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/gae_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/clarens/CMakeFiles/gae_clarens.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gae_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gae_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/monalisa/CMakeFiles/gae_monalisa.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gae_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/estimators/CMakeFiles/gae_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/quota/CMakeFiles/gae_quota.dir/DependInfo.cmake"
  "/root/repo/build/src/replica/CMakeFiles/gae_replica.dir/DependInfo.cmake"
  "/root/repo/build/src/gridfile/CMakeFiles/gae_gridfile.dir/DependInfo.cmake"
  "/root/repo/build/src/sphinx/CMakeFiles/gae_sphinx.dir/DependInfo.cmake"
  "/root/repo/build/src/jobmon/CMakeFiles/gae_jobmon.dir/DependInfo.cmake"
  "/root/repo/build/src/steering/CMakeFiles/gae_steering.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
