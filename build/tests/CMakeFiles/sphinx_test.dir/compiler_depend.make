# Empty compiler generated dependencies file for sphinx_test.
# This may be replaced when dependencies are built.
