file(REMOVE_RECURSE
  "CMakeFiles/sphinx_test.dir/sphinx_test.cpp.o"
  "CMakeFiles/sphinx_test.dir/sphinx_test.cpp.o.d"
  "sphinx_test"
  "sphinx_test.pdb"
  "sphinx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphinx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
