file(REMOVE_RECURSE
  "CMakeFiles/sim_grid_test.dir/sim_grid_test.cpp.o"
  "CMakeFiles/sim_grid_test.dir/sim_grid_test.cpp.o.d"
  "sim_grid_test"
  "sim_grid_test.pdb"
  "sim_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
