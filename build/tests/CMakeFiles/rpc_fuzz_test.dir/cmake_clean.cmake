file(REMOVE_RECURSE
  "CMakeFiles/rpc_fuzz_test.dir/rpc_fuzz_test.cpp.o"
  "CMakeFiles/rpc_fuzz_test.dir/rpc_fuzz_test.cpp.o.d"
  "rpc_fuzz_test"
  "rpc_fuzz_test.pdb"
  "rpc_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
