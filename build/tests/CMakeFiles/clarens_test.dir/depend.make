# Empty dependencies file for clarens_test.
# This may be replaced when dependencies are built.
