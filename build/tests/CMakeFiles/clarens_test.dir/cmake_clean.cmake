file(REMOVE_RECURSE
  "CMakeFiles/clarens_test.dir/clarens_test.cpp.o"
  "CMakeFiles/clarens_test.dir/clarens_test.cpp.o.d"
  "clarens_test"
  "clarens_test.pdb"
  "clarens_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clarens_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
