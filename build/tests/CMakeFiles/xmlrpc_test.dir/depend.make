# Empty dependencies file for xmlrpc_test.
# This may be replaced when dependencies are built.
