file(REMOVE_RECURSE
  "CMakeFiles/xmlrpc_test.dir/xmlrpc_test.cpp.o"
  "CMakeFiles/xmlrpc_test.dir/xmlrpc_test.cpp.o.d"
  "xmlrpc_test"
  "xmlrpc_test.pdb"
  "xmlrpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlrpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
