# Empty compiler generated dependencies file for quota_test.
# This may be replaced when dependencies are built.
