file(REMOVE_RECURSE
  "CMakeFiles/quota_test.dir/quota_test.cpp.o"
  "CMakeFiles/quota_test.dir/quota_test.cpp.o.d"
  "quota_test"
  "quota_test.pdb"
  "quota_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quota_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
