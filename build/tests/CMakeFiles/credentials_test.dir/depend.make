# Empty dependencies file for credentials_test.
# This may be replaced when dependencies are built.
