file(REMOVE_RECURSE
  "CMakeFiles/credentials_test.dir/credentials_test.cpp.o"
  "CMakeFiles/credentials_test.dir/credentials_test.cpp.o.d"
  "credentials_test"
  "credentials_test.pdb"
  "credentials_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/credentials_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
