# Empty compiler generated dependencies file for estimators_runtime_test.
# This may be replaced when dependencies are built.
