file(REMOVE_RECURSE
  "CMakeFiles/estimators_runtime_test.dir/estimators_runtime_test.cpp.o"
  "CMakeFiles/estimators_runtime_test.dir/estimators_runtime_test.cpp.o.d"
  "estimators_runtime_test"
  "estimators_runtime_test.pdb"
  "estimators_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimators_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
