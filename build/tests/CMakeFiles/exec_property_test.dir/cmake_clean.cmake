file(REMOVE_RECURSE
  "CMakeFiles/exec_property_test.dir/exec_property_test.cpp.o"
  "CMakeFiles/exec_property_test.dir/exec_property_test.cpp.o.d"
  "exec_property_test"
  "exec_property_test.pdb"
  "exec_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
