# Empty dependencies file for exec_property_test.
# This may be replaced when dependencies are built.
