# Empty compiler generated dependencies file for grid_day_test.
# This may be replaced when dependencies are built.
