file(REMOVE_RECURSE
  "CMakeFiles/grid_day_test.dir/grid_day_test.cpp.o"
  "CMakeFiles/grid_day_test.dir/grid_day_test.cpp.o.d"
  "grid_day_test"
  "grid_day_test.pdb"
  "grid_day_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_day_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
