# Empty dependencies file for exec_features_test.
# This may be replaced when dependencies are built.
