file(REMOVE_RECURSE
  "CMakeFiles/exec_features_test.dir/exec_features_test.cpp.o"
  "CMakeFiles/exec_features_test.dir/exec_features_test.cpp.o.d"
  "exec_features_test"
  "exec_features_test.pdb"
  "exec_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
