file(REMOVE_RECURSE
  "CMakeFiles/rpc_server_test.dir/rpc_server_test.cpp.o"
  "CMakeFiles/rpc_server_test.dir/rpc_server_test.cpp.o.d"
  "rpc_server_test"
  "rpc_server_test.pdb"
  "rpc_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
