# Empty dependencies file for rpc_server_test.
# This may be replaced when dependencies are built.
