file(REMOVE_RECURSE
  "CMakeFiles/estimators_queue_test.dir/estimators_queue_test.cpp.o"
  "CMakeFiles/estimators_queue_test.dir/estimators_queue_test.cpp.o.d"
  "estimators_queue_test"
  "estimators_queue_test.pdb"
  "estimators_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimators_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
