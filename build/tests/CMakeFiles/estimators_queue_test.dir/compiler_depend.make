# Empty compiler generated dependencies file for estimators_queue_test.
# This may be replaced when dependencies are built.
