file(REMOVE_RECURSE
  "CMakeFiles/session_store_test.dir/session_store_test.cpp.o"
  "CMakeFiles/session_store_test.dir/session_store_test.cpp.o.d"
  "session_store_test"
  "session_store_test.pdb"
  "session_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
