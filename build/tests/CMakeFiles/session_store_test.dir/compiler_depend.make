# Empty compiler generated dependencies file for session_store_test.
# This may be replaced when dependencies are built.
