# Empty dependencies file for gridfile_test.
# This may be replaced when dependencies are built.
