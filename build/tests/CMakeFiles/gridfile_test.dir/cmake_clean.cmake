file(REMOVE_RECURSE
  "CMakeFiles/gridfile_test.dir/gridfile_test.cpp.o"
  "CMakeFiles/gridfile_test.dir/gridfile_test.cpp.o.d"
  "gridfile_test"
  "gridfile_test.pdb"
  "gridfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
