# Empty dependencies file for estimators_transfer_test.
# This may be replaced when dependencies are built.
