file(REMOVE_RECURSE
  "CMakeFiles/estimators_transfer_test.dir/estimators_transfer_test.cpp.o"
  "CMakeFiles/estimators_transfer_test.dir/estimators_transfer_test.cpp.o.d"
  "estimators_transfer_test"
  "estimators_transfer_test.pdb"
  "estimators_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimators_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
