# Empty dependencies file for jsonrpc_test.
# This may be replaced when dependencies are built.
