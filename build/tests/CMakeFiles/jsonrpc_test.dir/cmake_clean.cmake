file(REMOVE_RECURSE
  "CMakeFiles/jsonrpc_test.dir/jsonrpc_test.cpp.o"
  "CMakeFiles/jsonrpc_test.dir/jsonrpc_test.cpp.o.d"
  "jsonrpc_test"
  "jsonrpc_test.pdb"
  "jsonrpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsonrpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
