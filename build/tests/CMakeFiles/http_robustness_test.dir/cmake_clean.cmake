file(REMOVE_RECURSE
  "CMakeFiles/http_robustness_test.dir/http_robustness_test.cpp.o"
  "CMakeFiles/http_robustness_test.dir/http_robustness_test.cpp.o.d"
  "http_robustness_test"
  "http_robustness_test.pdb"
  "http_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
