file(REMOVE_RECURSE
  "CMakeFiles/rpc_live_integration_test.dir/rpc_live_integration_test.cpp.o"
  "CMakeFiles/rpc_live_integration_test.dir/rpc_live_integration_test.cpp.o.d"
  "rpc_live_integration_test"
  "rpc_live_integration_test.pdb"
  "rpc_live_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_live_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
