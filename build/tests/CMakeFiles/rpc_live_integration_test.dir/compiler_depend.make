# Empty compiler generated dependencies file for rpc_live_integration_test.
# This may be replaced when dependencies are built.
