file(REMOVE_RECURSE
  "CMakeFiles/monalisa_test.dir/monalisa_test.cpp.o"
  "CMakeFiles/monalisa_test.dir/monalisa_test.cpp.o.d"
  "monalisa_test"
  "monalisa_test.pdb"
  "monalisa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monalisa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
