# Empty dependencies file for monalisa_test.
# This may be replaced when dependencies are built.
