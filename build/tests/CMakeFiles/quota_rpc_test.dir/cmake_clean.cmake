file(REMOVE_RECURSE
  "CMakeFiles/quota_rpc_test.dir/quota_rpc_test.cpp.o"
  "CMakeFiles/quota_rpc_test.dir/quota_rpc_test.cpp.o.d"
  "quota_rpc_test"
  "quota_rpc_test.pdb"
  "quota_rpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quota_rpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
