# Empty compiler generated dependencies file for quota_rpc_test.
# This may be replaced when dependencies are built.
