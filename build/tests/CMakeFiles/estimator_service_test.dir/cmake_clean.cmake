file(REMOVE_RECURSE
  "CMakeFiles/estimator_service_test.dir/estimator_service_test.cpp.o"
  "CMakeFiles/estimator_service_test.dir/estimator_service_test.cpp.o.d"
  "estimator_service_test"
  "estimator_service_test.pdb"
  "estimator_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
