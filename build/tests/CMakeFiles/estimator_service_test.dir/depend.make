# Empty dependencies file for estimator_service_test.
# This may be replaced when dependencies are built.
