# Empty dependencies file for config_loader_test.
# This may be replaced when dependencies are built.
