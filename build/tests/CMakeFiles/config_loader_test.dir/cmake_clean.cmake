file(REMOVE_RECURSE
  "CMakeFiles/config_loader_test.dir/config_loader_test.cpp.o"
  "CMakeFiles/config_loader_test.dir/config_loader_test.cpp.o.d"
  "config_loader_test"
  "config_loader_test.pdb"
  "config_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
