file(REMOVE_RECURSE
  "CMakeFiles/rpc_value_test.dir/rpc_value_test.cpp.o"
  "CMakeFiles/rpc_value_test.dir/rpc_value_test.cpp.o.d"
  "rpc_value_test"
  "rpc_value_test.pdb"
  "rpc_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
