# Empty dependencies file for rpc_value_test.
# This may be replaced when dependencies are built.
