# Empty dependencies file for gae_replica.
# This may be replaced when dependencies are built.
