file(REMOVE_RECURSE
  "libgae_replica.a"
)
