
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replica/catalog.cpp" "src/replica/CMakeFiles/gae_replica.dir/catalog.cpp.o" "gcc" "src/replica/CMakeFiles/gae_replica.dir/catalog.cpp.o.d"
  "/root/repo/src/replica/replication.cpp" "src/replica/CMakeFiles/gae_replica.dir/replication.cpp.o" "gcc" "src/replica/CMakeFiles/gae_replica.dir/replication.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gae_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gae_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
