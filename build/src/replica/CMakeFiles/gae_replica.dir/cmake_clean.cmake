file(REMOVE_RECURSE
  "CMakeFiles/gae_replica.dir/catalog.cpp.o"
  "CMakeFiles/gae_replica.dir/catalog.cpp.o.d"
  "CMakeFiles/gae_replica.dir/replication.cpp.o"
  "CMakeFiles/gae_replica.dir/replication.cpp.o.d"
  "libgae_replica.a"
  "libgae_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
