
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clarens/access_control.cpp" "src/clarens/CMakeFiles/gae_clarens.dir/access_control.cpp.o" "gcc" "src/clarens/CMakeFiles/gae_clarens.dir/access_control.cpp.o.d"
  "/root/repo/src/clarens/auth.cpp" "src/clarens/CMakeFiles/gae_clarens.dir/auth.cpp.o" "gcc" "src/clarens/CMakeFiles/gae_clarens.dir/auth.cpp.o.d"
  "/root/repo/src/clarens/credentials.cpp" "src/clarens/CMakeFiles/gae_clarens.dir/credentials.cpp.o" "gcc" "src/clarens/CMakeFiles/gae_clarens.dir/credentials.cpp.o.d"
  "/root/repo/src/clarens/host.cpp" "src/clarens/CMakeFiles/gae_clarens.dir/host.cpp.o" "gcc" "src/clarens/CMakeFiles/gae_clarens.dir/host.cpp.o.d"
  "/root/repo/src/clarens/registry.cpp" "src/clarens/CMakeFiles/gae_clarens.dir/registry.cpp.o" "gcc" "src/clarens/CMakeFiles/gae_clarens.dir/registry.cpp.o.d"
  "/root/repo/src/clarens/session_store.cpp" "src/clarens/CMakeFiles/gae_clarens.dir/session_store.cpp.o" "gcc" "src/clarens/CMakeFiles/gae_clarens.dir/session_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/gae_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gae_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
