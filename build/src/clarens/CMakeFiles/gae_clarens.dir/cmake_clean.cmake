file(REMOVE_RECURSE
  "CMakeFiles/gae_clarens.dir/access_control.cpp.o"
  "CMakeFiles/gae_clarens.dir/access_control.cpp.o.d"
  "CMakeFiles/gae_clarens.dir/auth.cpp.o"
  "CMakeFiles/gae_clarens.dir/auth.cpp.o.d"
  "CMakeFiles/gae_clarens.dir/credentials.cpp.o"
  "CMakeFiles/gae_clarens.dir/credentials.cpp.o.d"
  "CMakeFiles/gae_clarens.dir/host.cpp.o"
  "CMakeFiles/gae_clarens.dir/host.cpp.o.d"
  "CMakeFiles/gae_clarens.dir/registry.cpp.o"
  "CMakeFiles/gae_clarens.dir/registry.cpp.o.d"
  "CMakeFiles/gae_clarens.dir/session_store.cpp.o"
  "CMakeFiles/gae_clarens.dir/session_store.cpp.o.d"
  "libgae_clarens.a"
  "libgae_clarens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_clarens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
