# Empty compiler generated dependencies file for gae_clarens.
# This may be replaced when dependencies are built.
