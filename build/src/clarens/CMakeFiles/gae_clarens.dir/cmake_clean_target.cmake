file(REMOVE_RECURSE
  "libgae_clarens.a"
)
