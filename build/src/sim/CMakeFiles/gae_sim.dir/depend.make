# Empty dependencies file for gae_sim.
# This may be replaced when dependencies are built.
