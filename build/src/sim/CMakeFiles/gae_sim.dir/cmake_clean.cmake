file(REMOVE_RECURSE
  "CMakeFiles/gae_sim.dir/config_loader.cpp.o"
  "CMakeFiles/gae_sim.dir/config_loader.cpp.o.d"
  "CMakeFiles/gae_sim.dir/engine.cpp.o"
  "CMakeFiles/gae_sim.dir/engine.cpp.o.d"
  "CMakeFiles/gae_sim.dir/grid.cpp.o"
  "CMakeFiles/gae_sim.dir/grid.cpp.o.d"
  "CMakeFiles/gae_sim.dir/load.cpp.o"
  "CMakeFiles/gae_sim.dir/load.cpp.o.d"
  "CMakeFiles/gae_sim.dir/network.cpp.o"
  "CMakeFiles/gae_sim.dir/network.cpp.o.d"
  "libgae_sim.a"
  "libgae_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
