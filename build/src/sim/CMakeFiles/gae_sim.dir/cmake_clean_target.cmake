file(REMOVE_RECURSE
  "libgae_sim.a"
)
