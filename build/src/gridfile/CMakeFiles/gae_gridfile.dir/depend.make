# Empty dependencies file for gae_gridfile.
# This may be replaced when dependencies are built.
