file(REMOVE_RECURSE
  "CMakeFiles/gae_gridfile.dir/file_service.cpp.o"
  "CMakeFiles/gae_gridfile.dir/file_service.cpp.o.d"
  "libgae_gridfile.a"
  "libgae_gridfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_gridfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
