file(REMOVE_RECURSE
  "libgae_gridfile.a"
)
