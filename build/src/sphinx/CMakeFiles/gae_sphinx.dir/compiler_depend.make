# Empty compiler generated dependencies file for gae_sphinx.
# This may be replaced when dependencies are built.
