file(REMOVE_RECURSE
  "libgae_sphinx.a"
)
