file(REMOVE_RECURSE
  "CMakeFiles/gae_sphinx.dir/scheduler.cpp.o"
  "CMakeFiles/gae_sphinx.dir/scheduler.cpp.o.d"
  "libgae_sphinx.a"
  "libgae_sphinx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_sphinx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
