
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/execution_service.cpp" "src/exec/CMakeFiles/gae_exec.dir/execution_service.cpp.o" "gcc" "src/exec/CMakeFiles/gae_exec.dir/execution_service.cpp.o.d"
  "/root/repo/src/exec/job.cpp" "src/exec/CMakeFiles/gae_exec.dir/job.cpp.o" "gcc" "src/exec/CMakeFiles/gae_exec.dir/job.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gae_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
