file(REMOVE_RECURSE
  "CMakeFiles/gae_exec.dir/execution_service.cpp.o"
  "CMakeFiles/gae_exec.dir/execution_service.cpp.o.d"
  "CMakeFiles/gae_exec.dir/job.cpp.o"
  "CMakeFiles/gae_exec.dir/job.cpp.o.d"
  "libgae_exec.a"
  "libgae_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
