# Empty dependencies file for gae_exec.
# This may be replaced when dependencies are built.
