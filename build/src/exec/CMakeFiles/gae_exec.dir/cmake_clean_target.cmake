file(REMOVE_RECURSE
  "libgae_exec.a"
)
