file(REMOVE_RECURSE
  "libgae_workload.a"
)
