# Empty dependencies file for gae_workload.
# This may be replaced when dependencies are built.
