file(REMOVE_RECURSE
  "CMakeFiles/gae_workload.dir/paragon_trace.cpp.o"
  "CMakeFiles/gae_workload.dir/paragon_trace.cpp.o.d"
  "CMakeFiles/gae_workload.dir/task_generator.cpp.o"
  "CMakeFiles/gae_workload.dir/task_generator.cpp.o.d"
  "CMakeFiles/gae_workload.dir/trace_io.cpp.o"
  "CMakeFiles/gae_workload.dir/trace_io.cpp.o.d"
  "libgae_workload.a"
  "libgae_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
