file(REMOVE_RECURSE
  "CMakeFiles/gae_estimators.dir/estimate_db.cpp.o"
  "CMakeFiles/gae_estimators.dir/estimate_db.cpp.o.d"
  "CMakeFiles/gae_estimators.dir/history.cpp.o"
  "CMakeFiles/gae_estimators.dir/history.cpp.o.d"
  "CMakeFiles/gae_estimators.dir/queue_time_estimator.cpp.o"
  "CMakeFiles/gae_estimators.dir/queue_time_estimator.cpp.o.d"
  "CMakeFiles/gae_estimators.dir/recorder.cpp.o"
  "CMakeFiles/gae_estimators.dir/recorder.cpp.o.d"
  "CMakeFiles/gae_estimators.dir/rpc_binding.cpp.o"
  "CMakeFiles/gae_estimators.dir/rpc_binding.cpp.o.d"
  "CMakeFiles/gae_estimators.dir/runtime_estimator.cpp.o"
  "CMakeFiles/gae_estimators.dir/runtime_estimator.cpp.o.d"
  "CMakeFiles/gae_estimators.dir/service.cpp.o"
  "CMakeFiles/gae_estimators.dir/service.cpp.o.d"
  "CMakeFiles/gae_estimators.dir/similarity.cpp.o"
  "CMakeFiles/gae_estimators.dir/similarity.cpp.o.d"
  "CMakeFiles/gae_estimators.dir/transfer_estimator.cpp.o"
  "CMakeFiles/gae_estimators.dir/transfer_estimator.cpp.o.d"
  "libgae_estimators.a"
  "libgae_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
