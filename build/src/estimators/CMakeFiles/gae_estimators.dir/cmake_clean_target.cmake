file(REMOVE_RECURSE
  "libgae_estimators.a"
)
