
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimators/estimate_db.cpp" "src/estimators/CMakeFiles/gae_estimators.dir/estimate_db.cpp.o" "gcc" "src/estimators/CMakeFiles/gae_estimators.dir/estimate_db.cpp.o.d"
  "/root/repo/src/estimators/history.cpp" "src/estimators/CMakeFiles/gae_estimators.dir/history.cpp.o" "gcc" "src/estimators/CMakeFiles/gae_estimators.dir/history.cpp.o.d"
  "/root/repo/src/estimators/queue_time_estimator.cpp" "src/estimators/CMakeFiles/gae_estimators.dir/queue_time_estimator.cpp.o" "gcc" "src/estimators/CMakeFiles/gae_estimators.dir/queue_time_estimator.cpp.o.d"
  "/root/repo/src/estimators/recorder.cpp" "src/estimators/CMakeFiles/gae_estimators.dir/recorder.cpp.o" "gcc" "src/estimators/CMakeFiles/gae_estimators.dir/recorder.cpp.o.d"
  "/root/repo/src/estimators/rpc_binding.cpp" "src/estimators/CMakeFiles/gae_estimators.dir/rpc_binding.cpp.o" "gcc" "src/estimators/CMakeFiles/gae_estimators.dir/rpc_binding.cpp.o.d"
  "/root/repo/src/estimators/runtime_estimator.cpp" "src/estimators/CMakeFiles/gae_estimators.dir/runtime_estimator.cpp.o" "gcc" "src/estimators/CMakeFiles/gae_estimators.dir/runtime_estimator.cpp.o.d"
  "/root/repo/src/estimators/service.cpp" "src/estimators/CMakeFiles/gae_estimators.dir/service.cpp.o" "gcc" "src/estimators/CMakeFiles/gae_estimators.dir/service.cpp.o.d"
  "/root/repo/src/estimators/similarity.cpp" "src/estimators/CMakeFiles/gae_estimators.dir/similarity.cpp.o" "gcc" "src/estimators/CMakeFiles/gae_estimators.dir/similarity.cpp.o.d"
  "/root/repo/src/estimators/transfer_estimator.cpp" "src/estimators/CMakeFiles/gae_estimators.dir/transfer_estimator.cpp.o" "gcc" "src/estimators/CMakeFiles/gae_estimators.dir/transfer_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gae_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gae_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gae_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clarens/CMakeFiles/gae_clarens.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/gae_rpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
