# Empty dependencies file for gae_estimators.
# This may be replaced when dependencies are built.
