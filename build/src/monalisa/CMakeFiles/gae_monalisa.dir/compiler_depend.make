# Empty compiler generated dependencies file for gae_monalisa.
# This may be replaced when dependencies are built.
