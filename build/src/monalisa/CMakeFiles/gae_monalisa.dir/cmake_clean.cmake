file(REMOVE_RECURSE
  "CMakeFiles/gae_monalisa.dir/repository.cpp.o"
  "CMakeFiles/gae_monalisa.dir/repository.cpp.o.d"
  "libgae_monalisa.a"
  "libgae_monalisa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_monalisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
