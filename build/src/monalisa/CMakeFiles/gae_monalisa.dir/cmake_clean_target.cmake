file(REMOVE_RECURSE
  "libgae_monalisa.a"
)
