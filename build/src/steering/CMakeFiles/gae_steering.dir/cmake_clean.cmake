file(REMOVE_RECURSE
  "CMakeFiles/gae_steering.dir/rpc_binding.cpp.o"
  "CMakeFiles/gae_steering.dir/rpc_binding.cpp.o.d"
  "CMakeFiles/gae_steering.dir/service.cpp.o"
  "CMakeFiles/gae_steering.dir/service.cpp.o.d"
  "libgae_steering.a"
  "libgae_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
