file(REMOVE_RECURSE
  "libgae_steering.a"
)
