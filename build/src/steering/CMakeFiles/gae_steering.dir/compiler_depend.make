# Empty compiler generated dependencies file for gae_steering.
# This may be replaced when dependencies are built.
