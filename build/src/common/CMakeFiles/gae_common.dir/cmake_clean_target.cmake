file(REMOVE_RECURSE
  "libgae_common.a"
)
