file(REMOVE_RECURSE
  "CMakeFiles/gae_common.dir/clock.cpp.o"
  "CMakeFiles/gae_common.dir/clock.cpp.o.d"
  "CMakeFiles/gae_common.dir/config.cpp.o"
  "CMakeFiles/gae_common.dir/config.cpp.o.d"
  "CMakeFiles/gae_common.dir/id.cpp.o"
  "CMakeFiles/gae_common.dir/id.cpp.o.d"
  "CMakeFiles/gae_common.dir/log.cpp.o"
  "CMakeFiles/gae_common.dir/log.cpp.o.d"
  "CMakeFiles/gae_common.dir/rng.cpp.o"
  "CMakeFiles/gae_common.dir/rng.cpp.o.d"
  "CMakeFiles/gae_common.dir/stats.cpp.o"
  "CMakeFiles/gae_common.dir/stats.cpp.o.d"
  "CMakeFiles/gae_common.dir/status.cpp.o"
  "CMakeFiles/gae_common.dir/status.cpp.o.d"
  "CMakeFiles/gae_common.dir/thread_pool.cpp.o"
  "CMakeFiles/gae_common.dir/thread_pool.cpp.o.d"
  "libgae_common.a"
  "libgae_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
