# Empty dependencies file for gae_common.
# This may be replaced when dependencies are built.
