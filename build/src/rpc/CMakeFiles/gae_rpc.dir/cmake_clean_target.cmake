file(REMOVE_RECURSE
  "libgae_rpc.a"
)
