# Empty compiler generated dependencies file for gae_rpc.
# This may be replaced when dependencies are built.
