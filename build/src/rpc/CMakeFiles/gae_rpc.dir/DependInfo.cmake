
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/client.cpp" "src/rpc/CMakeFiles/gae_rpc.dir/client.cpp.o" "gcc" "src/rpc/CMakeFiles/gae_rpc.dir/client.cpp.o.d"
  "/root/repo/src/rpc/http.cpp" "src/rpc/CMakeFiles/gae_rpc.dir/http.cpp.o" "gcc" "src/rpc/CMakeFiles/gae_rpc.dir/http.cpp.o.d"
  "/root/repo/src/rpc/jsonrpc.cpp" "src/rpc/CMakeFiles/gae_rpc.dir/jsonrpc.cpp.o" "gcc" "src/rpc/CMakeFiles/gae_rpc.dir/jsonrpc.cpp.o.d"
  "/root/repo/src/rpc/server.cpp" "src/rpc/CMakeFiles/gae_rpc.dir/server.cpp.o" "gcc" "src/rpc/CMakeFiles/gae_rpc.dir/server.cpp.o.d"
  "/root/repo/src/rpc/value.cpp" "src/rpc/CMakeFiles/gae_rpc.dir/value.cpp.o" "gcc" "src/rpc/CMakeFiles/gae_rpc.dir/value.cpp.o.d"
  "/root/repo/src/rpc/xmlrpc.cpp" "src/rpc/CMakeFiles/gae_rpc.dir/xmlrpc.cpp.o" "gcc" "src/rpc/CMakeFiles/gae_rpc.dir/xmlrpc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gae_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
