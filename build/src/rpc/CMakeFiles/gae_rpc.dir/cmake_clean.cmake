file(REMOVE_RECURSE
  "CMakeFiles/gae_rpc.dir/client.cpp.o"
  "CMakeFiles/gae_rpc.dir/client.cpp.o.d"
  "CMakeFiles/gae_rpc.dir/http.cpp.o"
  "CMakeFiles/gae_rpc.dir/http.cpp.o.d"
  "CMakeFiles/gae_rpc.dir/jsonrpc.cpp.o"
  "CMakeFiles/gae_rpc.dir/jsonrpc.cpp.o.d"
  "CMakeFiles/gae_rpc.dir/server.cpp.o"
  "CMakeFiles/gae_rpc.dir/server.cpp.o.d"
  "CMakeFiles/gae_rpc.dir/value.cpp.o"
  "CMakeFiles/gae_rpc.dir/value.cpp.o.d"
  "CMakeFiles/gae_rpc.dir/xmlrpc.cpp.o"
  "CMakeFiles/gae_rpc.dir/xmlrpc.cpp.o.d"
  "libgae_rpc.a"
  "libgae_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
