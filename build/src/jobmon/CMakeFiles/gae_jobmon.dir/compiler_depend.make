# Empty compiler generated dependencies file for gae_jobmon.
# This may be replaced when dependencies are built.
