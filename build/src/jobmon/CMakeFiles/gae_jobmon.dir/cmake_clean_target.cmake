file(REMOVE_RECURSE
  "libgae_jobmon.a"
)
