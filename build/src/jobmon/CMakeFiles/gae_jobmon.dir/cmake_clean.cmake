file(REMOVE_RECURSE
  "CMakeFiles/gae_jobmon.dir/collector.cpp.o"
  "CMakeFiles/gae_jobmon.dir/collector.cpp.o.d"
  "CMakeFiles/gae_jobmon.dir/db_manager.cpp.o"
  "CMakeFiles/gae_jobmon.dir/db_manager.cpp.o.d"
  "CMakeFiles/gae_jobmon.dir/rpc_binding.cpp.o"
  "CMakeFiles/gae_jobmon.dir/rpc_binding.cpp.o.d"
  "CMakeFiles/gae_jobmon.dir/service.cpp.o"
  "CMakeFiles/gae_jobmon.dir/service.cpp.o.d"
  "libgae_jobmon.a"
  "libgae_jobmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_jobmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
