# Empty dependencies file for gae_quota.
# This may be replaced when dependencies are built.
