file(REMOVE_RECURSE
  "libgae_quota.a"
)
