file(REMOVE_RECURSE
  "CMakeFiles/gae_quota.dir/quota_service.cpp.o"
  "CMakeFiles/gae_quota.dir/quota_service.cpp.o.d"
  "CMakeFiles/gae_quota.dir/rpc_binding.cpp.o"
  "CMakeFiles/gae_quota.dir/rpc_binding.cpp.o.d"
  "libgae_quota.a"
  "libgae_quota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_quota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
