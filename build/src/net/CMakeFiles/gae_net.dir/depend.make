# Empty dependencies file for gae_net.
# This may be replaced when dependencies are built.
