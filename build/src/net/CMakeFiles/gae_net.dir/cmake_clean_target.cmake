file(REMOVE_RECURSE
  "libgae_net.a"
)
