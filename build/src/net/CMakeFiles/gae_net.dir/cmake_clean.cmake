file(REMOVE_RECURSE
  "CMakeFiles/gae_net.dir/socket.cpp.o"
  "CMakeFiles/gae_net.dir/socket.cpp.o.d"
  "libgae_net.a"
  "libgae_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gae_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
