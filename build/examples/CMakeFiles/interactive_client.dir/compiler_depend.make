# Empty compiler generated dependencies file for interactive_client.
# This may be replaced when dependencies are built.
