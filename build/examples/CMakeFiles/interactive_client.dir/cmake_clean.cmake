file(REMOVE_RECURSE
  "CMakeFiles/interactive_client.dir/interactive_client.cpp.o"
  "CMakeFiles/interactive_client.dir/interactive_client.cpp.o.d"
  "interactive_client"
  "interactive_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
