# Empty dependencies file for configured_grid.
# This may be replaced when dependencies are built.
