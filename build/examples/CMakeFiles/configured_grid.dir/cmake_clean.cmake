file(REMOVE_RECURSE
  "CMakeFiles/configured_grid.dir/configured_grid.cpp.o"
  "CMakeFiles/configured_grid.dir/configured_grid.cpp.o.d"
  "configured_grid"
  "configured_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configured_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
