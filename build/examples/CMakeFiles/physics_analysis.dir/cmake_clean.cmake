file(REMOVE_RECURSE
  "CMakeFiles/physics_analysis.dir/physics_analysis.cpp.o"
  "CMakeFiles/physics_analysis.dir/physics_analysis.cpp.o.d"
  "physics_analysis"
  "physics_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physics_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
