# Empty dependencies file for physics_analysis.
# This may be replaced when dependencies are built.
