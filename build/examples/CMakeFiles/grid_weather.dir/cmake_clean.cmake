file(REMOVE_RECURSE
  "CMakeFiles/grid_weather.dir/grid_weather.cpp.o"
  "CMakeFiles/grid_weather.dir/grid_weather.cpp.o.d"
  "grid_weather"
  "grid_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
