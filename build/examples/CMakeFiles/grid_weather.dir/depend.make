# Empty dependencies file for grid_weather.
# This may be replaced when dependencies are built.
