#include "clarens/host.h"

namespace gae::clarens {

using rpc::Array;
using rpc::CallContext;
using rpc::Struct;
using rpc::Value;

ClarensHost::ClarensHost(std::string name, const Clock& clock, HostOptions options)
    : name_(std::move(name)),
      clock_(clock),
      options_(options),
      dispatcher_(std::make_shared<rpc::Dispatcher>()),
      auth_(clock, options.auth),
      registry_(name_, &clock, options.registry) {
  dispatcher_->set_telemetry(options_.metrics, options_.tracer, name_);
  register_system_methods();

  // Call accounting runs first so every dispatch is counted, whatever its
  // outcome. Server workers dispatch concurrently, hence the lock.
  dispatcher_->add_interceptor([this](const std::string& method, const CallContext&) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_[method];
    return Status::ok();
  });

  // Authentication + ACL interceptor: runs before every dispatched method.
  dispatcher_->add_interceptor([this](const std::string& method, const CallContext& ctx) {
    // Login, introspection and read-only discovery work without a session
    // (Clarens exposed anonymous service lookup; registration stays gated).
    if (method == "system.login" || method == "system.listMethods" ||
        method == "system.echo" || method == "system.lookup" ||
        method == "system.discover" || method == "registry.lookup" ||
        method == "registry.discover") {
      return Status::ok();
    }
    if (!options_.require_auth) return Status::ok();
    auto user = auth_.authenticate(ctx.session_token);
    if (!user.is_ok()) return user.status();
    if (!acl_.check(user.value(), method)) {
      return permission_denied_error("user " + user.value() + " may not call " + method);
    }
    return Status::ok();
  });
}

ClarensHost::~ClarensHost() { stop(); }

std::map<std::string, std::uint64_t> ClarensHost::method_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

Result<std::string> ClarensHost::user_of(const CallContext& ctx) {
  if (!options_.require_auth && ctx.session_token.empty()) {
    return std::string("anonymous");
  }
  return auth_.authenticate(ctx.session_token);
}

Result<Value> ClarensHost::call(const std::string& method, const Array& params,
                                const std::string& session_token) {
  CallContext ctx;
  ctx.session_token = session_token;
  ctx.protocol = "local";
  return dispatcher_->dispatch(method, params, ctx);
}



Result<std::uint16_t> ClarensHost::serve(std::uint16_t port) {
  if (server_) return failed_precondition_error("host already serving");
  rpc::ServerOptions opts;
  opts.port = port;
  opts.num_workers = options_.rpc_workers;
  opts.metrics = options_.metrics;
  opts.admission = options_.admission;
  server_ = std::make_unique<rpc::RpcServer>(dispatcher_, opts);
  auto bound = server_->start();
  if (!bound.is_ok()) {
    server_.reset();
    return bound.status();
  }
  return bound;
}

void ClarensHost::stop() {
  if (server_) {
    server_->stop();
    server_.reset();
  }
}

void ClarensHost::register_system_methods() {
  dispatcher_->register_method(
      "system.echo", [](const Array& params, const CallContext&) -> Result<Value> {
        return params.empty() ? Value() : params.front();
      });

  dispatcher_->register_method(
      "system.listMethods", [this](const Array&, const CallContext&) -> Result<Value> {
        Array names;
        for (const auto& n : dispatcher_->method_names()) names.push_back(Value(n));
        return Value(std::move(names));
      });

  dispatcher_->register_method(
      "system.login", [this](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 2) {
          return invalid_argument_error("system.login(user, secret)");
        }
        auto token = auth_.login(params[0].as_string(), params[1].as_string());
        if (!token.is_ok()) return token.status();
        return Value(std::move(token).value());
      });

  dispatcher_->register_method(
      "system.logout", [this](const Array&, const CallContext& ctx) -> Result<Value> {
        const Status s = auth_.logout(ctx.session_token);
        if (!s.is_ok()) return s;
        return Value(true);
      });

  dispatcher_->register_method(
      "system.lookup", [this](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 1) return invalid_argument_error("system.lookup(name)");
        auto info = registry_.lookup(params[0].as_string());
        if (!info.is_ok()) return info.status();
        Struct out;
        out["name"] = Value(info.value().name);
        out["host"] = Value(info.value().host);
        out["port"] = Value(static_cast<std::int64_t>(info.value().port));
        out["protocol"] = Value(info.value().protocol);
        return Value(std::move(out));
      });

  dispatcher_->register_method(
      "system.discover", [this](const Array& params, const CallContext&) -> Result<Value> {
        const std::string prefix = params.empty() ? "" : params[0].as_string();
        Array out;
        for (const auto& info : registry_.discover(prefix)) {
          Struct s;
          s["name"] = Value(info.name);
          s["host"] = Value(info.host);
          s["port"] = Value(static_cast<std::int64_t>(info.port));
          s["protocol"] = Value(info.protocol);
          out.emplace_back(std::move(s));
        }
        return Value(std::move(out));
      });

  // The transport-level batch (RpcClient::call_many's server half): one
  // wire exchange and one admission ticket per batch. Distinct from
  // system.multicall below, which is the XML-RPC compatibility extension
  // with its own fault-struct result shape.
  dispatcher_->enable_batch();

  // system.multicall([{methodName, params}, ...]) -> [[result] | fault-struct]
  // (the standard XML-RPC batching extension; sub-calls run under the
  // caller's session and each failure is isolated into a fault struct).
  dispatcher_->register_method(
      "system.multicall",
      [this](const Array& params, const CallContext& ctx) -> Result<Value> {
        if (params.size() != 1 || !params[0].is_array()) {
          return invalid_argument_error("system.multicall([calls])");
        }
        Array results;
        for (const auto& call : params[0].as_array()) {
          if (!call.is_struct() || !call.has("methodName")) {
            return invalid_argument_error(
                "multicall entries need {methodName, params}");
          }
          const std::string method = call.at("methodName").as_string();
          if (method == "system.multicall") {
            return invalid_argument_error("recursive multicall is not allowed");
          }
          Array sub_params;
          if (call.has("params")) sub_params = call.at("params").as_array();
          auto result = dispatcher_->dispatch(method, sub_params, ctx);
          if (result.is_ok()) {
            // Convention: a successful result is wrapped in a 1-element array.
            results.emplace_back(Array{std::move(result).value()});
          } else {
            Struct fault;
            fault["faultCode"] = Value(static_cast<std::int64_t>(
                rpc::status_to_fault_code(result.status().code())));
            fault["faultString"] = Value(result.status().message());
            results.emplace_back(std::move(fault));
          }
        }
        return Value(std::move(results));
      });

  dispatcher_->register_method(
      "system.stats", [this](const Array&, const CallContext&) -> Result<Value> {
        Struct out;
        for (const auto& [method, calls] : method_stats()) {
          out[method] = Value(static_cast<std::int64_t>(calls));
        }
        return Value(std::move(out));
      });

  dispatcher_->register_method(
      "system.register", [this](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() < 3) {
          return invalid_argument_error("system.register(name, host, port[, protocol])");
        }
        ServiceInfo info;
        info.name = params[0].as_string();
        info.host = params[1].as_string();
        info.port = static_cast<std::uint16_t>(params[2].as_int());
        info.protocol = params.size() > 3 ? params[3].as_string() : "xmlrpc";
        info.registered_at = clock_.now();
        registry_.register_service(std::move(info));
        return Value(true);
      });
}

}  // namespace gae::clarens
