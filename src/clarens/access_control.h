// Method-level access control lists.
//
// Rules grant users (or "*") access to method-name prefixes. The most
// specific matching rule wins; a deny beats an allow at equal specificity.
// With no matching rule access is denied, except for the "system." methods
// every Clarens host exposes.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gae::clarens {

class AccessControl {
 public:
  /// Grants access to methods starting with prefix. `principal` is a user
  /// name, "group:NAME" (virtual-organisation group), or "*" for everyone.
  void allow(const std::string& principal, const std::string& method_prefix);

  /// Denies methods starting with prefix for the principal.
  void deny(const std::string& principal, const std::string& method_prefix);

  /// Adds a user to a VO group usable as "group:NAME" in rules.
  void add_group_member(const std::string& group, const std::string& user);
  bool is_member(const std::string& group, const std::string& user) const;

  /// Whether `user` may call `method`.
  bool check(const std::string& user, const std::string& method) const;

  std::size_t rule_count() const { return rules_.size(); }

 private:
  struct Rule {
    std::string principal;
    std::string prefix;
    bool allow;
  };
  /// 2 = named user, 1 = group, 0 = wildcard (higher beats lower at equal
  /// prefix length).
  int principal_specificity(const Rule& rule) const;
  bool principal_matches(const Rule& rule, const std::string& user) const;

  std::vector<Rule> rules_;
  std::map<std::string, std::set<std::string>> groups_;
};

}  // namespace gae::clarens
