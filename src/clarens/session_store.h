// Analysis-session state storage.
//
// The GAE services "store the state of users' analysis sessions" (§3) so a
// physicist can disconnect and resume later from any client. This store
// keeps versioned, per-user documents (arbitrary RPC values) and exposes
// them as session.* web-service methods bound to the caller's identity.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "rpc/value.h"

namespace gae::clarens {

class ClarensHost;

struct SessionDocument {
  rpc::Value content;
  int version = 0;
  SimTime updated_at = 0;
};

class SessionStateStore {
 public:
  explicit SessionStateStore(const Clock& clock) : clock_(clock) {}

  /// Creates or overwrites a document; each write bumps the version.
  /// `expected_version` >= 0 enables optimistic concurrency: the write is
  /// rejected (FAILED_PRECONDITION) when the stored version differs.
  Status put(const std::string& user, const std::string& key, rpc::Value content,
             int expected_version = -1);

  Result<SessionDocument> get(const std::string& user, const std::string& key) const;

  /// Keys this user has stored (sorted).
  std::vector<std::string> list(const std::string& user) const;

  Status remove(const std::string& user, const std::string& key);

  std::size_t total_documents() const;

 private:
  const Clock& clock_;
  std::map<std::string, std::map<std::string, SessionDocument>> docs_;  // user -> key -> doc
};

/// Registers session.save / load / list / delete on the host. Documents are
/// namespaced by the authenticated caller, so users cannot read each other's
/// sessions. The store must outlive the host.
void register_session_methods(ClarensHost& host, SessionStateStore& store);

}  // namespace gae::clarens
