// A Clarens web-service host: the container the GAE services are deployed
// into. Bundles a method dispatcher with authentication, access control and
// the lookup/discovery registry, exposes the standard system.* methods, and
// can serve over real TCP (RpcServer) or be called in-process (simulation
// runs and unit tests use the in-process path; the fig-6 benchmark uses TCP).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "clarens/access_control.h"
#include "clarens/auth.h"
#include "clarens/registry.h"
#include "common/clock.h"
#include "common/status.h"
#include "rpc/server.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gae::clarens {

struct HostOptions {
  /// When true, non-system methods require a valid session token and an ACL
  /// allow for the calling user.
  bool require_auth = true;
  AuthOptions auth;
  /// Lease policy for this host's lookup/discovery registry.
  RegistryOptions registry;
  std::size_t rpc_workers = 8;
  /// Telemetry sinks for every dispatch through this host (TCP and
  /// in-process alike): per-method metrics and one "server" span per call,
  /// stamped with the host name as the span's service. Either may be null;
  /// both must outlive the host.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::Tracer* tracer = nullptr;
  /// Adaptive admission control for the TCP transport (see
  /// rpc::ServerOptions::admission); service bindings may also consult it
  /// for brownout (degraded-mode) decisions. Null = static cap only. Must
  /// outlive the host.
  AdmissionController* admission = nullptr;
};

class ClarensHost {
 public:
  ClarensHost(std::string name, const Clock& clock, HostOptions options = {});
  ~ClarensHost();

  ClarensHost(const ClarensHost&) = delete;
  ClarensHost& operator=(const ClarensHost&) = delete;

  const std::string& name() const { return name_; }

  rpc::Dispatcher& dispatcher() { return *dispatcher_; }
  std::shared_ptr<rpc::Dispatcher> dispatcher_ptr() { return dispatcher_; }
  AuthService& auth() { return auth_; }
  AccessControl& acl() { return acl_; }
  ServiceRegistry& registry() { return registry_; }

  /// Resolves the caller of a request; UNAUTHENTICATED on bad tokens. When
  /// require_auth is off, anonymous callers resolve to "anonymous".
  Result<std::string> user_of(const rpc::CallContext& ctx);

  /// In-process call path (no sockets): what co-located services use.
  Result<rpc::Value> call(const std::string& method, const rpc::Array& params,
                          const std::string& session_token = "");

  /// Per-method call counts across both transports (system.stats exposes
  /// this; counted before authentication, so rejected calls count too).
  std::map<std::string, std::uint64_t> method_stats() const;

  /// Starts serving over TCP; returns the bound port.
  Result<std::uint16_t> serve(std::uint16_t port = 0);
  void stop();
  std::uint16_t port() const { return server_ ? server_->port() : 0; }

 private:
  void register_system_methods();

  std::string name_;
  const Clock& clock_;
  HostOptions options_;
  std::shared_ptr<rpc::Dispatcher> dispatcher_;
  mutable std::mutex stats_mutex_;  // server workers count concurrently
  std::map<std::string, std::uint64_t> stats_;
  AuthService auth_;
  AccessControl acl_;
  ServiceRegistry registry_;
  std::unique_ptr<rpc::RpcServer> server_;
};

}  // namespace gae::clarens
