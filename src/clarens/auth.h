// Session authentication for Clarens hosts.
//
// The paper's Clarens provided "a common set of services for authentication
// [and] access control". Here: users register with a shared secret, login
// mints a session token with an expiry, and services resolve tokens back to
// user names on each call.
#pragma once

#include <map>
#include <string>

#include "clarens/credentials.h"
#include "common/clock.h"
#include "common/status.h"

namespace gae::clarens {

struct AuthOptions {
  /// Sessions expire this many seconds after login (sliding on use).
  double session_ttl_seconds = 3600.0;
};

class AuthService {
 public:
  explicit AuthService(const Clock& clock, AuthOptions options = {});

  /// Registers a user; ALREADY_EXISTS on duplicates.
  Status register_user(const std::string& user, const std::string& secret);

  /// Verifies the secret and mints a session token.
  Result<std::string> login(const std::string& user, const std::string& secret);

  /// Trusts a certificate authority for certificate-based logins.
  void trust(const CertificateAuthority* ca) { ca_ = ca; }

  /// GSI-style login: verifies the certificate chain against the trusted CA
  /// and mints a session for the certificate's CN. No password registration
  /// is required — the grid identity is the credential.
  Result<std::string> login_with_chain(const std::vector<Certificate>& chain);

  /// Invalidates a session; NOT_FOUND for unknown tokens.
  Status logout(const std::string& token);

  /// Resolves a token to its user; UNAUTHENTICATED when unknown or expired.
  /// Valid use slides the expiry forward.
  Result<std::string> authenticate(const std::string& token);

  std::size_t active_sessions() const;

 private:
  struct Session {
    std::string user;
    SimTime expires_at;
  };

  const Clock& clock_;
  AuthOptions options_;
  const CertificateAuthority* ca_ = nullptr;
  std::map<std::string, std::string> secrets_;  // user -> secret
  mutable std::map<std::string, Session> sessions_;
};

}  // namespace gae::clarens
