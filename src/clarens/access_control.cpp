#include "clarens/access_control.h"

namespace gae::clarens {

void AccessControl::allow(const std::string& principal, const std::string& method_prefix) {
  rules_.push_back({principal, method_prefix, true});
}

void AccessControl::deny(const std::string& principal, const std::string& method_prefix) {
  rules_.push_back({principal, method_prefix, false});
}

void AccessControl::add_group_member(const std::string& group, const std::string& user) {
  groups_[group].insert(user);
}

bool AccessControl::is_member(const std::string& group, const std::string& user) const {
  auto it = groups_.find(group);
  return it != groups_.end() && it->second.count(user) != 0;
}

int AccessControl::principal_specificity(const Rule& rule) const {
  if (rule.principal == "*") return 0;
  if (rule.principal.rfind("group:", 0) == 0) return 1;
  return 2;
}

bool AccessControl::principal_matches(const Rule& rule, const std::string& user) const {
  if (rule.principal == "*") return true;
  if (rule.principal.rfind("group:", 0) == 0) {
    return is_member(rule.principal.substr(6), user);
  }
  return rule.principal == user;
}

bool AccessControl::check(const std::string& user, const std::string& method) const {
  // Longest matching prefix wins; at equal length a more specific principal
  // (user > group > wildcard) wins; deny beats allow on a full tie.
  const Rule* best = nullptr;
  for (const auto& rule : rules_) {
    if (!principal_matches(rule, user)) continue;
    if (method.rfind(rule.prefix, 0) != 0) continue;
    if (!best) {
      best = &rule;
      continue;
    }
    if (rule.prefix.size() > best->prefix.size()) {
      best = &rule;
    } else if (rule.prefix.size() == best->prefix.size()) {
      const int rs = principal_specificity(rule);
      const int bs = principal_specificity(*best);
      if (rs > bs) {
        best = &rule;
      } else if (rs == bs && !rule.allow) {
        best = &rule;
      }
    }
  }
  if (best) return best->allow;
  return method.rfind("system.", 0) == 0;  // built-ins are open by default
}

}  // namespace gae::clarens
