#include "clarens/registry.h"

namespace gae::clarens {

void ServiceRegistry::register_service(ServiceInfo info) {
  services_[info.name] = std::move(info);
}

Status ServiceRegistry::deregister_service(const std::string& name) {
  if (services_.erase(name) == 0) return not_found_error("no such service: " + name);
  return Status::ok();
}

Result<ServiceInfo> ServiceRegistry::lookup(const std::string& name) const {
  std::set<const ServiceRegistry*> visited;
  return lookup_visited(name, visited);
}

Result<ServiceInfo> ServiceRegistry::lookup_visited(
    const std::string& name, std::set<const ServiceRegistry*>& visited) const {
  if (!visited.insert(this).second) return not_found_error("already visited");
  auto it = services_.find(name);
  if (it != services_.end()) return it->second;
  for (const ServiceRegistry* peer : peers_) {
    auto found = peer->lookup_visited(name, visited);
    if (found.is_ok()) return found;
  }
  return not_found_error("service not found: " + name);
}

std::vector<ServiceInfo> ServiceRegistry::discover(const std::string& prefix) const {
  std::set<const ServiceRegistry*> visited;
  std::map<std::string, ServiceInfo> found;
  discover_visited(prefix, visited, found);
  std::vector<ServiceInfo> out;
  out.reserve(found.size());
  for (auto& [_, info] : found) out.push_back(std::move(info));
  return out;
}

void ServiceRegistry::discover_visited(const std::string& prefix,
                                       std::set<const ServiceRegistry*>& visited,
                                       std::map<std::string, ServiceInfo>& out) const {
  if (!visited.insert(this).second) return;
  for (const auto& [name, info] : services_) {
    if (name.rfind(prefix, 0) == 0 && !out.count(name)) out.emplace(name, info);
  }
  for (const ServiceRegistry* peer : peers_) {
    peer->discover_visited(prefix, visited, out);
  }
}

void ServiceRegistry::add_peer(const ServiceRegistry* peer) {
  if (peer && peer != this) peers_.push_back(peer);
}

}  // namespace gae::clarens
