#include "clarens/registry.h"

#include "common/log.h"

namespace gae::clarens {

Lease ServiceRegistry::register_service(ServiceInfo info, SimDuration ttl) {
  if (ttl == 0) ttl = options_.default_ttl;
  const std::string name = info.name;

  auto it = services_.find(name);
  if (it != services_.end() && !expired(it->second) &&
      (it->second.info.host != info.host || it->second.info.port != info.port)) {
    ++replacements_;
    GAE_LOG_WARN << "registry " << host_name_ << ": service '" << name
                 << "' re-registered from " << it->second.info.host << ":"
                 << it->second.info.port << " to " << info.host << ":" << info.port
                 << " (live entry replaced)";
  }
  tombstones_.erase(name);

  Entry entry;
  entry.info = std::move(info);
  entry.lease_id = next_lease_id_++;
  entry.ttl = ttl;
  entry.expires_at =
      (ttl > 0 && clock_) ? clock_->now() + ttl : kSimTimeNever;
  const Lease lease{name, entry.lease_id, entry.expires_at};
  services_[name] = std::move(entry);
  return lease;
}

Status ServiceRegistry::renew(const std::string& name, std::uint64_t lease_id) {
  auto it = services_.find(name);
  if (it == services_.end() || expired(it->second)) {
    return not_found_error("no live lease for service: " + name);
  }
  if (it->second.lease_id != lease_id) {
    return failed_precondition_error("stale lease for service: " + name);
  }
  if (it->second.ttl > 0 && clock_) {
    it->second.expires_at = clock_->now() + it->second.ttl;
  }
  return Status::ok();
}

Status ServiceRegistry::deregister_service(const std::string& name) {
  if (services_.erase(name) == 0) return not_found_error("no such service: " + name);
  tombstones_.erase(name);
  return Status::ok();
}

std::size_t ServiceRegistry::sweep() {
  std::size_t swept = 0;
  for (auto it = services_.begin(); it != services_.end();) {
    if (expired(it->second)) {
      tombstones_[it->first] = it->second.expires_at;
      ++expirations_;
      ++swept;
      GAE_LOG_INFO << "registry " << host_name_ << ": lease expired for '"
                   << it->first << "'";
      it = services_.erase(it);
    } else {
      ++it;
    }
  }
  if (options_.tombstone_horizon > 0 && clock_) {
    const SimTime now = clock_->now();
    for (auto it = tombstones_.begin(); it != tombstones_.end();) {
      if (it->second != kSimTimeNever &&
          now - it->second >= options_.tombstone_horizon) {
        ++tombstone_expirations_;
        if (options_.metrics) {
          options_.metrics->counter("clarens.registry.tombstones_expired").inc();
        }
        it = tombstones_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (options_.metrics) {
    options_.metrics->gauge("clarens.registry.tombstones")
        .set(static_cast<std::int64_t>(tombstones_.size()));
  }
  return swept;
}

Result<PrimaryLease> ServiceRegistry::acquire_primary(const std::string& service,
                                                      SimDuration ttl) {
  if (ttl == 0) ttl = options_.default_ttl;
  auto it = primaries_.find(service);
  if (it != primaries_.end() && !primary_expired(it->second)) {
    return already_exists_error("primary lease still live for: " + service);
  }

  PrimaryEntry entry;
  entry.epoch = ++epochs_[service];
  entry.lease_id = next_lease_id_++;
  entry.ttl = ttl;
  entry.expires_at = (ttl > 0 && clock_) ? clock_->now() + ttl : kSimTimeNever;
  PrimaryLease lease{service, entry.epoch, entry.lease_id, entry.expires_at};
  primaries_[service] = entry;
  GAE_LOG_INFO << "registry " << host_name_ << ": primary lease for '" << service
               << "' granted at epoch " << entry.epoch;
  return lease;
}

Status ServiceRegistry::renew_primary(const std::string& service,
                                      std::uint64_t lease_id) {
  auto it = primaries_.find(service);
  if (it == primaries_.end() || primary_expired(it->second)) {
    return not_found_error("no live primary lease for: " + service);
  }
  if (it->second.lease_id != lease_id) {
    return failed_precondition_error("stale primary lease for: " + service);
  }
  if (it->second.ttl > 0 && clock_) {
    it->second.expires_at = clock_->now() + it->second.ttl;
  }
  return Status::ok();
}

Status ServiceRegistry::release_primary(const std::string& service,
                                        std::uint64_t lease_id) {
  auto it = primaries_.find(service);
  if (it == primaries_.end()) {
    return not_found_error("no primary lease for: " + service);
  }
  if (it->second.lease_id != lease_id) {
    return failed_precondition_error("stale primary lease for: " + service);
  }
  primaries_.erase(it);
  return Status::ok();
}

std::uint64_t ServiceRegistry::primary_epoch(const std::string& service) const {
  auto it = epochs_.find(service);
  return it == epochs_.end() ? 0 : it->second;
}

bool ServiceRegistry::primary_live(const std::string& service) const {
  auto it = primaries_.find(service);
  return it != primaries_.end() && !primary_expired(it->second);
}

Result<SimTime> ServiceRegistry::tombstone(const std::string& name) const {
  auto it = tombstones_.find(name);
  if (it == tombstones_.end()) return not_found_error("no tombstone for: " + name);
  return it->second;
}

std::size_t ServiceRegistry::live_count() const {
  std::size_t n = 0;
  for (const auto& [_, entry] : services_) {
    if (!expired(entry)) ++n;
  }
  return n;
}

Result<ServiceInfo> ServiceRegistry::lookup(const std::string& name) const {
  std::set<const ServiceRegistry*> visited;
  return lookup_visited(name, visited);
}

Result<ServiceInfo> ServiceRegistry::lookup_visited(
    const std::string& name, std::set<const ServiceRegistry*>& visited) const {
  if (!visited.insert(this).second) return not_found_error("already visited");
  auto it = services_.find(name);
  if (it != services_.end() && !expired(it->second)) return it->second.info;
  for (const ServiceRegistry* peer : peers_) {
    auto found = peer->lookup_visited(name, visited);
    if (found.is_ok()) return found;
  }
  return not_found_error("service not found: " + name);
}

std::vector<ServiceInfo> ServiceRegistry::discover(const std::string& prefix) const {
  std::set<const ServiceRegistry*> visited;
  std::map<std::string, ServiceInfo> found;
  discover_visited(prefix, visited, found);
  std::vector<ServiceInfo> out;
  out.reserve(found.size());
  for (auto& [_, info] : found) out.push_back(std::move(info));
  return out;
}

void ServiceRegistry::discover_visited(const std::string& prefix,
                                       std::set<const ServiceRegistry*>& visited,
                                       std::map<std::string, ServiceInfo>& out) const {
  if (!visited.insert(this).second) return;
  for (const auto& [name, entry] : services_) {
    if (name.rfind(prefix, 0) == 0 && !expired(entry) && !out.count(name)) {
      out.emplace(name, entry.info);
    }
  }
  for (const ServiceRegistry* peer : peers_) {
    peer->discover_visited(prefix, visited, out);
  }
}

void ServiceRegistry::add_peer(const ServiceRegistry* peer) {
  if (peer && peer != this) peers_.push_back(peer);
}

}  // namespace gae::clarens
