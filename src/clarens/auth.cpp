#include "clarens/auth.h"

#include "common/id.h"

namespace gae::clarens {

AuthService::AuthService(const Clock& clock, AuthOptions options)
    : clock_(clock), options_(options) {}

Status AuthService::register_user(const std::string& user, const std::string& secret) {
  if (user.empty()) return invalid_argument_error("user name must not be empty");
  if (secrets_.count(user)) return already_exists_error("user exists: " + user);
  secrets_[user] = secret;
  return Status::ok();
}

Result<std::string> AuthService::login(const std::string& user, const std::string& secret) {
  auto it = secrets_.find(user);
  if (it == secrets_.end() || it->second != secret) {
    // One message for both cases: do not reveal which part was wrong.
    return unauthenticated_error("bad user or secret");
  }
  const std::string token = make_token();
  sessions_[token] = {user, clock_.now() + from_seconds(options_.session_ttl_seconds)};
  return token;
}

Result<std::string> AuthService::login_with_chain(const std::vector<Certificate>& chain) {
  if (!ca_) return failed_precondition_error("no trusted certificate authority");
  auto cn = ca_->verify_chain(chain, clock_.now());
  if (!cn.is_ok()) return cn.status();
  if (cn.value().empty()) return permission_denied_error("certificate has no CN");
  const std::string token = make_token();
  sessions_[token] = {cn.value(),
                      clock_.now() + from_seconds(options_.session_ttl_seconds)};
  return token;
}

Status AuthService::logout(const std::string& token) {
  if (sessions_.erase(token) == 0) return not_found_error("no such session");
  return Status::ok();
}

Result<std::string> AuthService::authenticate(const std::string& token) {
  auto it = sessions_.find(token);
  if (it == sessions_.end()) return unauthenticated_error("unknown session token");
  if (clock_.now() > it->second.expires_at) {
    sessions_.erase(it);
    return unauthenticated_error("session expired");
  }
  it->second.expires_at = clock_.now() + from_seconds(options_.session_ttl_seconds);
  return it->second.user;
}

std::size_t AuthService::active_sessions() const {
  std::size_t live = 0;
  const SimTime now = clock_.now();
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now > it->second.expires_at) {
      it = sessions_.erase(it);
    } else {
      ++live;
      ++it;
    }
  }
  return live;
}

}  // namespace gae::clarens
