#include "clarens/session_store.h"

#include "clarens/host.h"

namespace gae::clarens {

using rpc::Array;
using rpc::CallContext;
using rpc::Struct;
using rpc::Value;

Status SessionStateStore::put(const std::string& user, const std::string& key,
                              rpc::Value content, int expected_version) {
  if (user.empty()) return invalid_argument_error("user must not be empty");
  if (key.empty()) return invalid_argument_error("session key must not be empty");
  SessionDocument& doc = docs_[user][key];
  if (expected_version >= 0 && doc.version != expected_version) {
    return failed_precondition_error("version conflict on " + key + ": stored " +
                                     std::to_string(doc.version) + ", expected " +
                                     std::to_string(expected_version));
  }
  doc.content = std::move(content);
  ++doc.version;
  doc.updated_at = clock_.now();
  return Status::ok();
}

Result<SessionDocument> SessionStateStore::get(const std::string& user,
                                               const std::string& key) const {
  auto uit = docs_.find(user);
  if (uit == docs_.end()) return not_found_error("no sessions for user " + user);
  auto kit = uit->second.find(key);
  if (kit == uit->second.end()) return not_found_error("no session document " + key);
  return kit->second;
}

std::vector<std::string> SessionStateStore::list(const std::string& user) const {
  std::vector<std::string> out;
  auto uit = docs_.find(user);
  if (uit == docs_.end()) return out;
  out.reserve(uit->second.size());
  for (const auto& [key, _] : uit->second) out.push_back(key);
  return out;
}

Status SessionStateStore::remove(const std::string& user, const std::string& key) {
  auto uit = docs_.find(user);
  if (uit == docs_.end() || uit->second.erase(key) == 0) {
    return not_found_error("no session document " + key);
  }
  if (uit->second.empty()) docs_.erase(uit);
  return Status::ok();
}

std::size_t SessionStateStore::total_documents() const {
  std::size_t n = 0;
  for (const auto& [_, docs] : docs_) n += docs.size();
  return n;
}

void register_session_methods(ClarensHost& host, SessionStateStore& store) {
  auto& d = host.dispatcher();
  ClarensHost* host_ptr = &host;

  // session.save(key, document[, expected_version]) -> {version}
  d.register_method(
      "session.save",
      [host_ptr, &store](const Array& params, const CallContext& ctx) -> Result<Value> {
        auto user = host_ptr->user_of(ctx);
        if (!user.is_ok()) return user.status();
        if (params.size() < 2 || !params[0].is_string()) {
          return invalid_argument_error("session.save(key, document[, expected_version])");
        }
        const int expected =
            params.size() > 2 ? static_cast<int>(params[2].as_int()) : -1;
        const Status s = store.put(user.value(), params[0].as_string(), params[1], expected);
        if (!s.is_ok()) return s;
        Struct out;
        out["version"] =
            Value(static_cast<std::int64_t>(store.get(user.value(), params[0].as_string())
                                                .value()
                                                .version));
        return Value(std::move(out));
      });

  // session.load(key) -> {content, version, updated_at}
  d.register_method(
      "session.load",
      [host_ptr, &store](const Array& params, const CallContext& ctx) -> Result<Value> {
        auto user = host_ptr->user_of(ctx);
        if (!user.is_ok()) return user.status();
        if (params.size() != 1 || !params[0].is_string()) {
          return invalid_argument_error("session.load(key)");
        }
        auto doc = store.get(user.value(), params[0].as_string());
        if (!doc.is_ok()) return doc.status();
        Struct out;
        out["content"] = doc.value().content;
        out["version"] = Value(static_cast<std::int64_t>(doc.value().version));
        out["updated_at"] = Value(to_seconds(doc.value().updated_at));
        return Value(std::move(out));
      });

  d.register_method(
      "session.list",
      [host_ptr, &store](const Array&, const CallContext& ctx) -> Result<Value> {
        auto user = host_ptr->user_of(ctx);
        if (!user.is_ok()) return user.status();
        Array out;
        for (const auto& key : store.list(user.value())) out.push_back(Value(key));
        return Value(std::move(out));
      });

  d.register_method(
      "session.delete",
      [host_ptr, &store](const Array& params, const CallContext& ctx) -> Result<Value> {
        auto user = host_ptr->user_of(ctx);
        if (!user.is_ok()) return user.status();
        if (params.size() != 1 || !params[0].is_string()) {
          return invalid_argument_error("session.delete(key)");
        }
        const Status s = store.remove(user.value(), params[0].as_string());
        if (!s.is_ok()) return s;
        return Value(true);
      });
}

}  // namespace gae::clarens
