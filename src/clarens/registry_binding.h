// Wire face of the lookup/discovery registry: registry.register / renew /
// deregister / lookup / discover, so remote services maintain their leases
// over the same RPC plane as everything else (heartbeats are just renew
// calls). lookup/discover are anonymous like system.lookup; the mutating
// methods go through the host's normal auth/ACL gate.
#pragma once

#include "clarens/host.h"

namespace gae::clarens {

/// Serialises a registry entry as an RPC struct.
rpc::Value service_info_to_value(const ServiceInfo& info);

/// Registers the registry.* methods on the host (they operate on
/// host.registry()). The host must outlive its dispatcher, as usual.
void register_registry_methods(ClarensHost& host);

}  // namespace gae::clarens
