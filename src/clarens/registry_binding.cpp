#include "clarens/registry_binding.h"

namespace gae::clarens {

using rpc::Array;
using rpc::CallContext;
using rpc::Struct;
using rpc::Value;

Value service_info_to_value(const ServiceInfo& info) {
  Struct out;
  out["name"] = Value(info.name);
  out["host"] = Value(info.host);
  out["port"] = Value(static_cast<std::int64_t>(info.port));
  out["protocol"] = Value(info.protocol);
  out["registered_at_s"] = Value(to_seconds(info.registered_at));
  Struct metadata;
  for (const auto& [k, v] : info.metadata) metadata[k] = Value(v);
  out["metadata"] = Value(std::move(metadata));
  return Value(std::move(out));
}

void register_registry_methods(ClarensHost& host) {
  auto& d = host.dispatcher();
  ServiceRegistry* registry = &host.registry();

  // registry.register(name, host, port[, protocol[, ttl_ms]]) -> lease struct
  d.register_method(
      "registry.register",
      [registry](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() < 3 || !params[0].is_string() || !params[1].is_string() ||
            !params[2].is_number()) {
          return invalid_argument_error(
              "registry.register(name, host, port[, protocol[, ttl_ms]])");
        }
        ServiceInfo info;
        info.name = params[0].as_string();
        info.host = params[1].as_string();
        info.port = static_cast<std::uint16_t>(params[2].as_int());
        if (params.size() > 3) info.protocol = params[3].as_string();
        SimDuration ttl = 0;
        if (params.size() > 4) ttl = from_millis(params[4].as_double());
        const Lease lease = registry->register_service(std::move(info), ttl);
        Struct out;
        out["lease_id"] = Value(static_cast<std::int64_t>(lease.id));
        out["expires_at_s"] = Value(lease.expires_at == kSimTimeNever
                                        ? -1.0
                                        : to_seconds(lease.expires_at));
        return Value(std::move(out));
      });

  // registry.renew(name, lease_id) -> true (the heartbeat path)
  d.register_method(
      "registry.renew",
      [registry](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 2 || !params[0].is_string() || !params[1].is_number()) {
          return invalid_argument_error("registry.renew(name, lease_id)");
        }
        const Status s = registry->renew(params[0].as_string(),
                                         static_cast<std::uint64_t>(params[1].as_int()));
        if (!s.is_ok()) return s;
        return Value(true);
      });

  // registry.deregister(name) -> true
  d.register_method(
      "registry.deregister",
      [registry](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 1 || !params[0].is_string()) {
          return invalid_argument_error("registry.deregister(name)");
        }
        const Status s = registry->deregister_service(params[0].as_string());
        if (!s.is_ok()) return s;
        return Value(true);
      });

  // registry.lookup(name) -> entry struct (live entries only)
  d.register_method(
      "registry.lookup",
      [registry](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 1 || !params[0].is_string()) {
          return invalid_argument_error("registry.lookup(name)");
        }
        auto info = registry->lookup(params[0].as_string());
        if (!info.is_ok()) return info.status();
        return service_info_to_value(info.value());
      });

  // registry.discover([prefix]) -> [entry struct, ...]
  d.register_method(
      "registry.discover",
      [registry](const Array& params, const CallContext&) -> Result<Value> {
        const std::string prefix = params.empty() ? "" : params[0].as_string();
        Array out;
        for (const auto& info : registry->discover(prefix)) {
          out.push_back(service_info_to_value(info));
        }
        return Value(std::move(out));
      });
}

}  // namespace gae::clarens
