#include "clarens/credentials.h"

#include "common/id.h"

namespace gae::clarens {

namespace {

std::uint64_t fnv(const std::string& s, std::uint64_t h = 1469598103934665603ULL) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Structural signature: hash of all fields bound to the signing key.
std::uint64_t sign(const Certificate& cert, const std::string& signing_key) {
  std::uint64_t h = fnv(cert.subject);
  h = fnv(cert.issuer, h);
  h = fnv(cert.public_key, h);
  h = fnv(std::to_string(cert.not_after), h);
  h = fnv(cert.is_proxy ? "proxy" : "cert", h);
  h = fnv(std::to_string(cert.delegation_budget), h);
  h = fnv(signing_key, h);
  return h;
}

}  // namespace

std::string subject_cn(const std::string& subject) {
  const std::string marker = "CN=";
  const auto pos = subject.find(marker);
  if (pos == std::string::npos) return "";
  const auto start = pos + marker.size();
  const auto end = subject.find('/', start);
  return subject.substr(start, end == std::string::npos ? std::string::npos : end - start);
}

CertificateAuthority::CertificateAuthority(std::string name)
    : name_(std::move(name)), key_("ca-key-" + make_token()) {}

CredentialPair CertificateAuthority::issue(const std::string& cn, SimTime not_after,
                                           int delegation_budget) const {
  CredentialPair pair;
  pair.private_key = "key-" + make_token();
  Certificate& cert = pair.certificate;
  cert.subject = "/O=GAE/CN=" + cn;
  cert.issuer = name_;
  cert.public_key = pair.private_key;  // simulated key pair: same identifier
  cert.not_after = not_after;
  cert.is_proxy = false;
  cert.delegation_budget = delegation_budget;
  cert.signature = sign(cert, key_);
  return pair;
}

Result<CredentialPair> CertificateAuthority::delegate(const CredentialPair& parent,
                                                      SimTime not_after) {
  if (parent.certificate.delegation_budget <= 0) {
    return failed_precondition_error("delegation budget exhausted for " +
                                     parent.certificate.subject);
  }
  CredentialPair proxy;
  proxy.private_key = "key-" + make_token();
  Certificate& cert = proxy.certificate;
  cert.subject = parent.certificate.subject + "/proxy";
  cert.issuer = parent.certificate.subject;
  cert.public_key = proxy.private_key;
  cert.not_after = std::min(not_after, parent.certificate.not_after);
  cert.is_proxy = true;
  cert.delegation_budget = parent.certificate.delegation_budget - 1;
  cert.signature = sign(cert, parent.private_key);
  return proxy;
}

Result<std::string> CertificateAuthority::verify_chain(
    const std::vector<Certificate>& chain, SimTime now) const {
  if (chain.empty()) return invalid_argument_error("empty certificate chain");

  // The chain is leaf-first; the last entry must be a CA-signed user cert.
  const Certificate& base = chain.back();
  if (base.is_proxy) return permission_denied_error("chain has no base user certificate");
  if (base.issuer != name_) {
    return permission_denied_error("untrusted issuer: " + base.issuer);
  }
  if (base.signature != sign(base, key_)) {
    return permission_denied_error("bad signature on " + base.subject);
  }
  if (now > base.not_after) {
    return unauthenticated_error("certificate expired: " + base.subject);
  }

  // Walk proxies from the base outwards: each must be signed by its parent's
  // key, expire no later, and respect the delegation budget.
  for (std::size_t i = chain.size() - 1; i-- > 0;) {
    const Certificate& parent = chain[i + 1];
    const Certificate& proxy = chain[i];
    if (!proxy.is_proxy) {
      return permission_denied_error("non-proxy certificate above the base");
    }
    if (proxy.issuer != parent.subject) {
      return permission_denied_error("broken chain at " + proxy.subject);
    }
    if (parent.delegation_budget <= 0) {
      return permission_denied_error("delegation budget exhausted at " + parent.subject);
    }
    if (proxy.delegation_budget != parent.delegation_budget - 1) {
      return permission_denied_error("delegation budget mismatch at " + proxy.subject);
    }
    if (proxy.signature != sign(proxy, parent.public_key)) {
      return permission_denied_error("bad signature on " + proxy.subject);
    }
    if (proxy.not_after > parent.not_after) {
      return permission_denied_error("proxy outlives parent: " + proxy.subject);
    }
    if (now > proxy.not_after) {
      return unauthenticated_error("proxy expired: " + proxy.subject);
    }
  }
  return subject_cn(base.subject);
}

}  // namespace gae::clarens
