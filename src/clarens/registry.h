// Service lookup and discovery.
//
// Clarens "enables users and services to dynamically discover other services
// and resources within the GAE through a peer-to-peer based lookup service".
// Each host keeps a local registry; lookups that miss locally are forwarded
// to peer registries breadth-first (with a visited set, so arbitrary peer
// graphs terminate).
//
// Entries are leased: register_service() grants a TTL lease that heartbeats
// (renew) keep alive. An entry whose lease lapses is excluded from lookup()
// and discover() immediately and tombstoned by sweep(), so peers stop
// routing to dead services within one TTL without any manual deregistration
// — the liveness-aware discovery adaptive steering needs. A registry built
// without a clock keeps the historical semantics: leases never expire.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/time_types.h"
#include "telemetry/metrics.h"

namespace gae::clarens {

struct ServiceInfo {
  std::string name;        // e.g. "jobmon@site-a"
  std::string host;        // "127.0.0.1" or a site name
  std::uint16_t port = 0;  // 0 for in-process services
  std::string protocol = "xmlrpc";
  std::map<std::string, std::string> metadata;
  SimTime registered_at = 0;
};

struct RegistryOptions {
  /// Lease granted to registrations that do not name their own TTL.
  /// 0 = immortal entries (the pre-lease behaviour).
  SimDuration default_ttl = 0;
  /// How long sweep() keeps a tombstone after the lease lapsed. Long-running
  /// deployments churn through many short-lived service names; without a
  /// horizon the tombstone set grows without bound. 0 = keep forever (the
  /// historical behaviour).
  SimDuration tombstone_horizon = 0;
  /// When set, the registry counts clarens.registry.tombstones_expired and
  /// keeps clarens.registry.tombstones current. Must outlive the registry.
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// Proof of registration: renewals must present the lease id so a stale
/// instance cannot keep a replacement's entry alive.
struct Lease {
  std::string service;
  std::uint64_t id = 0;
  SimTime expires_at = kSimTimeNever;  // kSimTimeNever = immortal
};

/// Exclusive write-ownership of a replicated state machine. The epoch is a
/// fencing token: it increases monotonically across acquisitions of the same
/// name (never resets, even after expiry), so replicas can reject writes
/// stamped with any epoch older than the newest they have seen — a deposed
/// primary that is alive but partitioned cannot corrupt state it no longer
/// owns.
struct PrimaryLease {
  std::string service;
  std::uint64_t epoch = 0;
  std::uint64_t lease_id = 0;
  SimTime expires_at = kSimTimeNever;
};

class ServiceRegistry {
 public:
  explicit ServiceRegistry(std::string host_name) : host_name_(std::move(host_name)) {}
  ServiceRegistry(std::string host_name, const Clock* clock, RegistryOptions options = {})
      : host_name_(std::move(host_name)), clock_(clock), options_(options) {}

  const std::string& host_name() const { return host_name_; }

  /// Registers or refreshes a service entry and grants a lease (`ttl` 0 uses
  /// the registry default; without a clock, leases are immortal). Replacing
  /// an entry that points at a different host/port is logged and counted —
  /// it usually means two instances fighting over one name.
  Lease register_service(ServiceInfo info, SimDuration ttl = 0);

  /// Extends the named lease by its original TTL. NOT_FOUND for unknown or
  /// expired entries; FAILED_PRECONDITION when `lease_id` is stale (the name
  /// was re-registered since).
  Status renew(const std::string& name, std::uint64_t lease_id);

  Status deregister_service(const std::string& name);

  /// Local-then-peer lookup; NOT_FOUND when nobody knows the name. Entries
  /// whose lease has lapsed are invisible here.
  Result<ServiceInfo> lookup(const std::string& name) const;

  /// All live services (local and peer-known) whose name starts with `prefix`.
  std::vector<ServiceInfo> discover(const std::string& prefix) const;

  /// Moves lapsed entries to the tombstone set; returns how many expired.
  /// lookup/discover already skip lapsed entries, so sweeping is about
  /// reclaiming memory and making expirations observable. Tombstones older
  /// than options.tombstone_horizon are expired here too, so the set stays
  /// bounded across long runs.
  std::size_t sweep();

  // --- Primary leases (hot-standby failover) -------------------------------

  /// Grants exclusive primaryship of `service` with a fresh (strictly
  /// higher) epoch. ALREADY_EXISTS while another holder's primary lease is
  /// still live — promotion has to wait out the old primary's lease, which
  /// is what makes the epoch a fence rather than a race. `ttl` 0 uses the
  /// registry default; without a clock, primary leases are immortal.
  Result<PrimaryLease> acquire_primary(const std::string& service, SimDuration ttl = 0);

  /// Heartbeat for a primary lease. NOT_FOUND when the lease lapsed (the
  /// holder has been deposed and must stop writing); FAILED_PRECONDITION
  /// when `lease_id` is stale (someone else acquired since).
  Status renew_primary(const std::string& service, std::uint64_t lease_id);

  /// Voluntarily gives up primaryship (clean shutdown / planned handover).
  Status release_primary(const std::string& service, std::uint64_t lease_id);

  /// Highest epoch ever granted for `service` (0 = never acquired). Replicas
  /// use this to validate fencing tokens without holding the lease.
  std::uint64_t primary_epoch(const std::string& service) const;

  /// True while a primary lease for `service` is live.
  bool primary_live(const std::string& service) const;

  /// Expiry instant of a tombstoned (lease-lapsed, swept) service;
  /// NOT_FOUND when the name is live or never registered.
  Result<SimTime> tombstone(const std::string& name) const;

  /// Adds a peer registry for P2P lookups (one direction; call on both sides
  /// for a symmetric mesh).
  void add_peer(const ServiceRegistry* peer);

  /// Raw local entry count (including not-yet-swept lapsed entries).
  std::size_t local_count() const { return services_.size(); }
  /// Local entries whose lease is still live.
  std::size_t live_count() const;

  /// Registrations that replaced an entry pointing at a different host/port.
  std::uint64_t replacements() const { return replacements_; }
  /// Entries tombstoned by sweep() over the registry's lifetime.
  std::uint64_t expirations() const { return expirations_; }
  /// Tombstones aged out past the horizon over the registry's lifetime.
  std::uint64_t tombstone_expirations() const { return tombstone_expirations_; }
  /// Tombstones currently held.
  std::size_t tombstone_count() const { return tombstones_.size(); }

 private:
  struct Entry {
    ServiceInfo info;
    std::uint64_t lease_id = 0;
    SimDuration ttl = 0;                 // 0 = immortal
    SimTime expires_at = kSimTimeNever;  // kSimTimeNever = immortal
  };

  struct PrimaryEntry {
    std::uint64_t epoch = 0;
    std::uint64_t lease_id = 0;
    SimDuration ttl = 0;
    SimTime expires_at = kSimTimeNever;
  };

  bool expired(const Entry& entry) const {
    return entry.expires_at != kSimTimeNever && clock_ &&
           clock_->now() >= entry.expires_at;
  }

  bool primary_expired(const PrimaryEntry& entry) const {
    return entry.expires_at != kSimTimeNever && clock_ &&
           clock_->now() >= entry.expires_at;
  }

  Result<ServiceInfo> lookup_visited(const std::string& name,
                                     std::set<const ServiceRegistry*>& visited) const;
  void discover_visited(const std::string& prefix,
                        std::set<const ServiceRegistry*>& visited,
                        std::map<std::string, ServiceInfo>& out) const;

  std::string host_name_;
  const Clock* clock_ = nullptr;
  RegistryOptions options_;
  std::map<std::string, Entry> services_;
  std::map<std::string, SimTime> tombstones_;  // name -> expiry instant
  std::map<std::string, PrimaryEntry> primaries_;
  /// Highest epoch ever granted per service — never reset, so fencing
  /// tokens stay monotonic across arbitrarily many failovers.
  std::map<std::string, std::uint64_t> epochs_;
  std::vector<const ServiceRegistry*> peers_;
  std::uint64_t next_lease_id_ = 1;
  std::uint64_t replacements_ = 0;
  std::uint64_t expirations_ = 0;
  std::uint64_t tombstone_expirations_ = 0;
};

}  // namespace gae::clarens
