// Service lookup and discovery.
//
// Clarens "enables users and services to dynamically discover other services
// and resources within the GAE through a peer-to-peer based lookup service".
// Each host keeps a local registry; lookups that miss locally are forwarded
// to peer registries breadth-first (with a visited set, so arbitrary peer
// graphs terminate).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_types.h"

namespace gae::clarens {

struct ServiceInfo {
  std::string name;        // e.g. "jobmon@site-a"
  std::string host;        // "127.0.0.1" or a site name
  std::uint16_t port = 0;  // 0 for in-process services
  std::string protocol = "xmlrpc";
  std::map<std::string, std::string> metadata;
  SimTime registered_at = 0;
};

class ServiceRegistry {
 public:
  explicit ServiceRegistry(std::string host_name) : host_name_(std::move(host_name)) {}

  const std::string& host_name() const { return host_name_; }

  /// Registers or refreshes a service entry.
  void register_service(ServiceInfo info);
  Status deregister_service(const std::string& name);

  /// Local-then-peer lookup; NOT_FOUND when nobody knows the name.
  Result<ServiceInfo> lookup(const std::string& name) const;

  /// All services (local and peer-known) whose name starts with `prefix`.
  std::vector<ServiceInfo> discover(const std::string& prefix) const;

  /// Adds a peer registry for P2P lookups (one direction; call on both sides
  /// for a symmetric mesh).
  void add_peer(const ServiceRegistry* peer);

  std::size_t local_count() const { return services_.size(); }

 private:
  Result<ServiceInfo> lookup_visited(const std::string& name,
                                     std::set<const ServiceRegistry*>& visited) const;
  void discover_visited(const std::string& prefix,
                        std::set<const ServiceRegistry*>& visited,
                        std::map<std::string, ServiceInfo>& out) const;

  std::string host_name_;
  std::map<std::string, ServiceInfo> services_;
  std::vector<const ServiceRegistry*> peers_;
};

}  // namespace gae::clarens
