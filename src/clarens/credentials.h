// Simulated grid PKI: the Clarens framework authenticated users with
// X.509/GSI certificates and proxy delegation. This module models the
// *structure* of that system — a certificate authority, user certificates,
// bounded proxy-delegation chains, expiry — with a structural (NOT
// cryptographic) signature: a hash over the certificate fields and the
// issuer's key. Tampering is detected; real-world forgery resistance is out
// of scope for a simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_types.h"

namespace gae::clarens {

struct Certificate {
  std::string subject;       // "/O=GAE/CN=alice" or ".../CN=alice/proxy"
  std::string issuer;        // CA name or parent subject for proxies
  std::string public_key;    // opaque identifier of the key pair
  SimTime not_after = 0;     // expiry instant
  bool is_proxy = false;
  /// Remaining times this certificate may itself be delegated.
  int delegation_budget = 0;
  /// Structural signature over the fields, bound to the issuer key.
  std::uint64_t signature = 0;
};

/// A certificate together with the (secret) key that can sign delegations.
struct CredentialPair {
  Certificate certificate;
  std::string private_key;
};

/// Extracts the CN component of a subject ("" when absent).
std::string subject_cn(const std::string& subject);

class CertificateAuthority {
 public:
  explicit CertificateAuthority(std::string name);

  const std::string& name() const { return name_; }

  /// Issues a user certificate valid until `not_after`, allowing up to
  /// `delegation_budget` levels of proxy delegation.
  CredentialPair issue(const std::string& cn, SimTime not_after,
                       int delegation_budget = 3) const;

  /// Derives a proxy from a parent credential. The proxy expires no later
  /// than the parent and spends one level of delegation budget.
  /// FAILED_PRECONDITION when the parent's budget is exhausted.
  static Result<CredentialPair> delegate(const CredentialPair& parent, SimTime not_after);

  /// Verifies a chain ordered leaf-first (proxy..., user cert last):
  /// signatures, expiry at `now`, issuer linkage, proxy budgets. Returns the
  /// CN of the base user certificate.
  Result<std::string> verify_chain(const std::vector<Certificate>& chain,
                                   SimTime now) const;

 private:
  std::string name_;
  std::string key_;  // the CA key pair identifier
};

}  // namespace gae::clarens
