#include "net/fault_injector.h"

#include <chrono>
#include <thread>

#include "common/log.h"

namespace gae::net {

namespace {

/// Deliberately not HTTP: the client's response parser must choke on it.
constexpr char kGarbageBytes[] = "\x01\x02\x7f GARBAGE \xff\xfe not-http \x00\x03";

/// Copies bytes from -> to until EOF/error, honouring an optional forward
/// budget. Returns bytes forwarded.
std::size_t pump(TcpStream& from, TcpStream& to, std::size_t budget, bool unlimited) {
  char buf[4096];
  std::size_t forwarded = 0;
  for (;;) {
    auto r = from.read_some(buf, sizeof(buf));
    if (!r.is_ok() || r.value() == 0) break;
    std::size_t n = r.value();
    if (!unlimited) {
      if (forwarded >= budget) break;
      n = std::min(n, budget - forwarded);
    }
    if (!to.write_all(buf, n).is_ok()) break;
    forwarded += n;
    if (!unlimited && forwarded >= budget) break;
  }
  return forwarded;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kRefuseConnect: return "refuse-connect";
    case FaultKind::kDropAfterBytes: return "drop-after-bytes";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kGarbage: return "garbage";
    case FaultKind::kDropResponse: return "drop-response";
  }
  return "?";
}

FaultInjector::FaultInjector(std::string upstream_host, std::uint16_t upstream_port,
                             FaultPlan plan)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port),
      plan_(std::move(plan)),
      rng_(plan_.seed) {}

FaultInjector::~FaultInjector() { stop(); }

Result<std::uint16_t> FaultInjector::start() {
  auto listener = TcpListener::bind(0);
  if (!listener.is_ok()) return listener.status();
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  return port_;
}

void FaultInjector::stop() {
  if (!running_.exchange(false)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& weak : live_streams_) {
      if (auto stream = weak.lock()) stream->shutdown_both();
    }
    handlers.swap(handlers_);
  }
  for (auto& t : handlers) {
    if (t.joinable()) t.join();
  }
}

std::map<std::string, std::uint64_t> FaultInjector::fault_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_counts_;
}

FaultSpec FaultInjector::next_fault() {
  const std::uint64_t index = connection_index_++;
  if (index < plan_.script.size()) return plan_.script[index];
  if (plan_.fault_rate > 0.0 && !plan_.random_kinds.empty() &&
      rng_.bernoulli(plan_.fault_rate)) {
    FaultSpec spec;
    spec.kind = plan_.random_kinds[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(plan_.random_kinds.size()) - 1))];
    spec.after_bytes = static_cast<std::size_t>(rng_.uniform_int(0, 64));
    spec.delay_ms = static_cast<int>(rng_.uniform_int(1, 50));
    return spec;
  }
  return FaultSpec{};
}

void FaultInjector::track(const std::shared_ptr<TcpStream>& stream) {
  std::lock_guard<std::mutex> lock(mutex_);
  live_streams_.push_back(stream);
}

void FaultInjector::accept_loop() {
  while (running_.load()) {
    auto stream = listener_.accept();
    if (!stream.is_ok()) return;
    connections_.fetch_add(1, std::memory_order_relaxed);
    const FaultSpec fault = next_fault();
    if (fault.kind != FaultKind::kNone) {
      faults_.fetch_add(1, std::memory_order_relaxed);
    }
    auto client = std::make_shared<TcpStream>(std::move(stream).value());
    std::lock_guard<std::mutex> lock(mutex_);
    live_streams_.push_back(client);
    fault_counts_[fault_kind_name(fault.kind)]++;
    handlers_.emplace_back(
        [this, client, fault]() mutable { handle_connection(std::move(client), fault); });
  }
}

void FaultInjector::handle_connection(std::shared_ptr<TcpStream> client, FaultSpec fault) {
  if (fault.kind == FaultKind::kRefuseConnect) {
    client->close();
    return;
  }
  if (fault.kind == FaultKind::kGarbage) {
    client->write_all(kGarbageBytes, sizeof(kGarbageBytes) - 1);
    client->close();
    return;
  }
  if (fault.kind == FaultKind::kDelay && fault.delay_ms > 0) {
    // Connection-level stall: the client's first bytes wait in the socket
    // buffer while its deadline keeps running.
    std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
    if (!running_.load()) return;
  }

  auto upstream_result = TcpStream::connect(upstream_host_, upstream_port_);
  if (!upstream_result.is_ok()) {
    client->close();
    return;
  }
  auto upstream = std::make_shared<TcpStream>(std::move(upstream_result).value());
  track(upstream);

  // Downstream pump (server -> client) runs aside; the handler thread pumps
  // client -> server. Shutdowns propagate EOF across the proxy.
  std::thread downstream([client, upstream, fault] {
    if (fault.kind == FaultKind::kDropResponse) {
      // Let the server's answer arrive, then swallow it and cut the line:
      // the request executed but the client can never learn the outcome.
      char buf[4096];
      auto r = upstream->read_some(buf, sizeof(buf));
      (void)r;
      client->shutdown_both();
      upstream->shutdown_both();
      return;
    }
    pump(*upstream, *client, 0, /*unlimited=*/true);
    client->shutdown_write();
  });

  if (fault.kind == FaultKind::kDropAfterBytes) {
    pump(*client, *upstream, fault.after_bytes, /*unlimited=*/false);
    client->shutdown_both();
    upstream->shutdown_both();
  } else {
    pump(*client, *upstream, 0, /*unlimited=*/true);
    upstream->shutdown_write();
  }
  downstream.join();
}

}  // namespace gae::net
