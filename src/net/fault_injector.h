// Deterministic transport-fault injection for chaos tests and benches.
//
// The injector is a loopback TCP proxy that sits between an RpcClient and an
// RpcServer and misbehaves on schedule: refuse the connection, cut it after
// N forwarded bytes, delay traffic, answer with garbage, or swallow the
// response after delivering the request. Which fault hits which connection
// is decided by a scripted plan first and a seeded RNG after, so a failing
// chaos run replays bit-for-bit from its seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/socket.h"

namespace gae::net {

enum class FaultKind {
  kNone = 0,
  /// Close the client connection immediately; never dial upstream.
  kRefuseConnect,
  /// Forward only the first `after_bytes` client bytes upstream, then cut
  /// both directions (mid-request connection loss).
  kDropAfterBytes,
  /// Hold the client's bytes for `delay_ms` before forwarding (exercises
  /// client deadlines without killing the connection).
  kDelay,
  /// Reply with garbage bytes instead of proxying (framing corruption).
  kGarbage,
  /// Deliver the full request upstream but swallow the response and cut the
  /// connection — the dangerous case for non-idempotent retries: the server
  /// executed the call, the client cannot know.
  kDropResponse,
};

const char* fault_kind_name(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  std::size_t after_bytes = 0;  // kDropAfterBytes
  int delay_ms = 0;             // kDelay
};

/// Which connections misbehave. Connection i (0-based accept order) takes
/// script[i] while the script lasts; afterwards each connection draws a
/// fault with probability `fault_rate` from `random_kinds`, seeded.
struct FaultPlan {
  std::vector<FaultSpec> script;
  double fault_rate = 0.0;
  std::uint64_t seed = 1;
  std::vector<FaultKind> random_kinds = {FaultKind::kRefuseConnect,
                                         FaultKind::kDropResponse, FaultKind::kGarbage};
};

class FaultInjector {
 public:
  FaultInjector(std::string upstream_host, std::uint16_t upstream_port, FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Binds the proxy listener and starts accepting; returns the port
  /// clients should connect to.
  Result<std::uint16_t> start();

  /// Stops accepting, cuts live connections, joins all threads. Idempotent.
  void stop();

  std::uint16_t port() const { return port_; }

  std::uint64_t connections_seen() const { return connections_.load(); }
  std::uint64_t faults_injected() const { return faults_.load(); }
  /// Faults injected per kind (by name), for assertions and bench reports.
  std::map<std::string, std::uint64_t> fault_counts() const;

 private:
  void accept_loop();
  void handle_connection(std::shared_ptr<TcpStream> client, FaultSpec fault);
  FaultSpec next_fault();

  /// stop() shuts these down to unblock pumps parked in recv.
  void track(const std::shared_ptr<TcpStream>& stream);

  std::string upstream_host_;
  std::uint16_t upstream_port_;
  FaultPlan plan_;
  Rng rng_;
  std::uint64_t connection_index_ = 0;  // acceptor thread only

  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> faults_{0};

  mutable std::mutex mutex_;
  std::vector<std::thread> handlers_;
  std::vector<std::weak_ptr<TcpStream>> live_streams_;
  std::map<std::string, std::uint64_t> fault_counts_;
};

}  // namespace gae::net
