#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gae::net {

namespace {

Status errno_status(const char* what) {
  return unavailable_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Result<TcpStream> TcpStream::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return invalid_argument_error("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = errno_status("connect");
    ::close(fd);
    return s;
  }
  return TcpStream(fd);
}

Status TcpStream::write_all(const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("send");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Result<std::size_t> TcpStream::read_some(void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired (set_recv_timeout_ms): a deadline, not a
        // dead peer — callers decide whether to retry or hang up.
        return deadline_exceeded_error("recv timed out");
      }
      return errno_status("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

Status TcpStream::read_exact(void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    auto r = read_some(p, len);
    if (!r.is_ok()) return r.status();
    if (r.value() == 0) return unavailable_error("unexpected EOF");
    p += r.value();
    len -= r.value();
  }
  return Status::ok();
}

Status TcpStream::set_no_delay(bool on) {
  const int flag = on ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) != 0) {
    return errno_status("setsockopt(TCP_NODELAY)");
  }
  return Status::ok();
}

Status TcpStream::set_recv_timeout_ms(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return errno_status("setsockopt(SO_RCVTIMEO)");
  }
  return Status::ok();
}

void TcpStream::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpStream::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Result<TcpListener> TcpListener::bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = errno_status("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) != 0) {
    const Status s = errno_status("listen");
    ::close(fd);
    return s;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status s = errno_status("getsockname");
    ::close(fd);
    return s;
  }

  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<TcpStream> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return errno_status("accept");
    }
    return TcpStream(fd);
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    // shutdown() unblocks accept() on Linux; close alone may not.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace gae::net
