// RAII TCP sockets (IPv4). The RPC layer runs over loopback in tests and
// benchmarks, so only the portable POSIX subset is wrapped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace gae::net {

/// A connected TCP stream. Move-only; the descriptor closes on destruction.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connects to host:port. Host must be a dotted-quad or "localhost".
  static Result<TcpStream> connect(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes the whole buffer; UNAVAILABLE on peer reset.
  Status write_all(const void* data, std::size_t len);
  Status write_all(const std::string& data) { return write_all(data.data(), data.size()); }

  /// Reads up to len bytes; 0 return means orderly EOF.
  Result<std::size_t> read_some(void* buf, std::size_t len);

  /// Reads exactly len bytes; UNAVAILABLE on premature EOF.
  Status read_exact(void* buf, std::size_t len);

  /// Disables Nagle (small request/response RPC traffic).
  Status set_no_delay(bool on);

  /// Receive timeout; 0 disables.
  Status set_recv_timeout_ms(int ms);

  /// Shuts down the write side (signals EOF to the peer).
  void shutdown_write();

  /// Shuts down both directions; unblocks a thread sitting in recv on this
  /// socket without closing the descriptor.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds to 127.0.0.1:port; port 0 picks an ephemeral port.
  static Result<TcpListener> bind(std::uint16_t port);

  /// Blocks for the next connection. UNAVAILABLE once closed.
  Result<TcpStream> accept();

  /// The actually bound port (useful after binding port 0).
  std::uint16_t port() const { return port_; }

  bool valid() const { return fd_ >= 0; }

  /// Unblocks pending accept() calls; they return UNAVAILABLE.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace gae::net
