// Per-store health surfaced through the same degraded-mode machinery the
// overload fabric uses: where AdmissionController::browned_out() tells a
// binding to serve the cheap answer, StoreHealth tells it whether the
// durable state behind the answer can be trusted at all.
//
// Three states, strictly ordered by how much of the store still works:
//
//   kHealthy     — reads and writes flow.
//   kReadOnly    — the write path latched (short append, failed fsync):
//                  serving reads from the already-recovered view is safe,
//                  accepting new mutations is not.
//   kQuarantined — the scrubber (or recovery) found CRC damage in the log:
//                  the in-memory view may be poisoned, so reads are refused
//                  too until repair swaps in a verified image.
//
// The owning store consults writable()/readable() on its mutation/read
// paths; the scrubber and recovery flip the state; the repair recipe is
// armed off the on_change callback and marks the store healthy again.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/wal.h"
#include "telemetry/metrics.h"

namespace gae::storage {

enum class StoreState : int { kHealthy = 0, kReadOnly = 1, kQuarantined = 2 };

const char* store_state_name(StoreState state);

class StoreHealth {
 public:
  /// `metrics` (optional, must outlive this) receives the
  /// storage.<stream>.state gauge, latch/quarantine counters, and the
  /// wal.<stream>.recover.* series note_recover publishes.
  explicit StoreHealth(std::string stream,
                       telemetry::MetricsRegistry* metrics = nullptr);

  const std::string& stream() const { return stream_; }

  StoreState state() const;
  /// True only while kHealthy: a read-only or quarantined store must not
  /// accept mutations.
  bool writable() const { return state() == StoreState::kHealthy; }
  /// True unless kQuarantined: a read-only store still serves its view.
  bool readable() const { return state() != StoreState::kQuarantined; }
  /// Why the store left kHealthy ("" while healthy).
  std::string reason() const;

  /// Write path broke (latched storage); reads keep working. A quarantined
  /// store stays quarantined — read-only is the lesser degradation.
  void mark_read_only(const std::string& why);
  /// Integrity damage found; refuse reads too until repaired.
  void quarantine(const std::string& why);
  /// Repair (or a clean re-open) restored the store.
  void mark_healthy();

  /// Runs (outside the lock) whenever the state changes. One listener;
  /// repair wiring uses it to schedule the repair recipe on quarantine.
  void set_on_change(std::function<void(StoreState)> fn);

  /// Publishes what a recovery dropped: wal.<stream>.recover.corrupt_frames
  /// and .bytes_truncated counters. Quarantines the store when the log was
  /// corrupt mid-frame (a torn tail alone is the normal crash artifact and
  /// does not quarantine).
  void note_recover(const RecoverStats& stats);

  std::uint64_t quarantines() const;

 private:
  void transition_locked(StoreState next, const std::string& why,
                         std::function<void(StoreState)>& fire);

  std::string stream_;
  mutable std::mutex mutex_;
  StoreState state_ = StoreState::kHealthy;
  std::string reason_;
  std::uint64_t quarantines_ = 0;
  std::function<void(StoreState)> on_change_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Gauge* state_gauge_ = nullptr;
  telemetry::Counter* quarantine_counter_ = nullptr;
  telemetry::Counter* read_only_counter_ = nullptr;
};

}  // namespace gae::storage
