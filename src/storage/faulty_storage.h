// Deterministic storage-fault injection for chaos tests and benches: the
// disk-side twin of net::FaultInjector.
//
// FaultyWalStorage decorates any WalStorage and misbehaves on schedule:
// tear an append short (crash/ENOSPC mid-frame), fail the durability flush
// (fsyncgate), refuse a read, rot a byte at rest, or fail a replace. Which
// fault hits which operation is decided by a scripted plan first and a
// seeded RNG after, so a failing chaos run replays bit-for-bit from its
// seed — the same schedule discipline as the network injector.
//
// Latch semantics mirror FileWalStorage: any fault that leaves the media
// tail torn or unknowable (torn append, ENOSPC, failed fsync) latches the
// storage read-only; appends are refused until replace() rewrites the log
// wholesale (the repair path) or make_writable() is called.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/wal.h"

namespace gae::storage {

enum class StorageFaultKind {
  kNone = 0,
  /// Append lands only a prefix of the frame on media, then errors and
  /// latches — the torn-tail crash artifact, made injectable.
  kTornAppend,
  /// Device full mid-frame: prefix lands, RESOURCE_EXHAUSTED, latches.
  kEnospc,
  /// The flush that would make the write durable fails. The bytes are on
  /// media (page cache made it) but durability is unknowable: latches.
  kFsyncFail,
  /// read_all() fails UNAVAILABLE once (transient medium error).
  kReadError,
  /// The byte at `offset` reads back flipped from now on (at-rest rot;
  /// survives until replace() rewrites the media).
  kBitRot,
  /// replace() fails UNAVAILABLE; inner contents untouched.
  kReplaceFail,
};

const char* storage_fault_kind_name(StorageFaultKind kind);

struct StorageFaultSpec {
  StorageFaultKind kind = StorageFaultKind::kNone;
  /// kTornAppend/kEnospc: bytes of the append that land (0 = half the frame).
  std::size_t after_bytes = 0;
  /// kBitRot: absolute byte offset into the log (taken mod its size).
  std::size_t offset = 0;
  /// kBitRot: which bits flip.
  std::uint8_t xor_mask = 0x01;
};

/// Which operations misbehave. Operation i (0-based, counted across
/// append/replace/sync/read_all in call order) takes script[i] while the
/// script lasts; afterwards each operation draws a fault with probability
/// `fault_rate` from `random_kinds`, seeded. A drawn fault that does not
/// apply to the operation at hand (e.g. kReadError on an append) is a no-op,
/// which keeps schedules deterministic without per-op-kind bookkeeping.
struct StorageFaultPlan {
  std::vector<StorageFaultSpec> script;
  double fault_rate = 0.0;
  std::uint64_t seed = 1;
  std::vector<StorageFaultKind> random_kinds = {StorageFaultKind::kTornAppend,
                                                StorageFaultKind::kFsyncFail,
                                                StorageFaultKind::kBitRot};
};

class FaultyWalStorage final : public WalStorage {
 public:
  explicit FaultyWalStorage(WalStorage* inner, StorageFaultPlan plan = {});

  Status append(const std::string& bytes) override;
  Result<std::string> read_all() const override;
  Status replace(const std::string& bytes) override;
  Status sync() override;
  bool writable() const override;
  void make_writable() override;

  /// Direct at-rest corruption (tests and the scrub bench use this to place
  /// damage precisely): byte at `offset` (mod log size) reads back XOR'd
  /// with `mask` until replace() rewrites the media.
  void rot_byte(std::size_t offset, std::uint8_t mask = 0x01);
  /// Drops all injected rot (as if the medium were rewritten).
  void clear_rot();
  /// Forces the read-only latch (as if an earlier fsync had failed).
  void force_latch();

  std::uint64_t ops_seen() const;
  std::uint64_t faults_injected() const;
  /// Faults actually applied, per kind name — assertions and bench reports.
  std::map<std::string, std::uint64_t> fault_counts() const;

 private:
  /// Draws the fault for the current operation; advances the schedule.
  StorageFaultSpec next_fault_locked() const;
  void count_fault_locked(StorageFaultKind kind) const;
  Result<std::string> read_inner_locked() const;

  WalStorage* inner_;
  StorageFaultPlan plan_;
  mutable std::mutex mutex_;
  mutable Rng rng_;
  mutable std::uint64_t op_index_ = 0;
  bool latched_ = false;
  /// offset -> xor mask applied on every read (at-rest rot).
  mutable std::map<std::size_t, std::uint8_t> rot_;
  mutable std::uint64_t faults_ = 0;
  mutable std::map<std::string, std::uint64_t> fault_counts_;
};

}  // namespace gae::storage
