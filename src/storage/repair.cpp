#include "storage/repair.h"

#include <utility>

#include "common/log.h"

namespace gae::storage {

Result<RepairReport> repair_from_standby(const RepairOptions& options) {
  if (!options.storage) return invalid_argument_error("repair: no storage");
  if (!options.source) return invalid_argument_error("repair: no standby source");

  const SimTime start =
      options.clock ? options.clock->now() : kSimTimeNever;

  auto fetched = options.source->fetch(options.stream);
  if (!fetched.is_ok()) {
    if (options.metrics) {
      options.metrics->counter("storage." + options.stream + ".repair_failures")
          .inc();
    }
    return Status(fetched.status().code(),
                  "repair fetch failed for stream " + options.stream + ": " +
                      fetched.status().message());
  }
  ha::SnapshotInstall image = std::move(fetched).value();

  // Never install an image we have not verified ourselves: the standby
  // checks before exporting, but the transport (and its hex codec) sit in
  // between.
  if (crc32(image.bytes) != image.crc) {
    if (options.metrics) {
      options.metrics->counter("storage." + options.stream + ".repair_failures")
          .inc();
    }
    return internal_error("repair image crc mismatch for stream " +
                           options.stream);
  }
  const WalReadResult decoded = Wal::decode(image.bytes);
  if (decoded.corrupt || decoded.torn_tail) {
    if (options.metrics) {
      options.metrics->counter("storage." + options.stream + ".repair_failures")
          .inc();
    }
    return internal_error(
        "repair image for stream " + options.stream + " fails verification (" +
        std::to_string(image.bytes.size() - decoded.valid_bytes) +
        " damaged bytes)");
  }

  // Atomic swap. replace() is the one storage operation defined to clear
  // the read-only latch: the damaged media (and its unknowable tail) are
  // rewritten wholesale.
  Status installed = options.storage->replace(image.bytes);
  if (!installed.is_ok()) {
    if (options.metrics) {
      options.metrics->counter("storage." + options.stream + ".repair_failures")
          .inc();
    }
    return Status(installed.code(),
                  "repair install failed for stream " + options.stream + ": " +
                      installed.message());
  }

  // Read back what actually landed before declaring victory — the swap went
  // through a medium we just watched fail.
  auto readback = options.storage->read_all();
  if (!readback.is_ok() || readback.value() != image.bytes) {
    if (options.metrics) {
      options.metrics->counter("storage." + options.stream + ".repair_failures")
          .inc();
    }
    return internal_error("repair readback mismatch for stream " +
                           options.stream);
  }

  if (options.replay) {
    Status replayed = options.replay();
    if (!replayed.is_ok()) {
      if (options.metrics) {
        options.metrics
            ->counter("storage." + options.stream + ".repair_failures")
            .inc();
      }
      return Status(replayed.code(),
                    "repair replay failed for stream " + options.stream + ": " +
                        replayed.message());
    }
  }

  if (options.health) options.health->mark_healthy();
  if (options.scrubber) options.scrubber->note_repaired(options.stream);

  RepairReport report;
  report.bytes_installed = image.bytes.size();
  report.frames = decoded.records.size();
  report.standby_epoch = image.epoch;
  report.standby_next_seq = image.next_seq;

  if (options.metrics) {
    options.metrics->counter("storage." + options.stream + ".repairs").inc();
    if (options.clock && start != kSimTimeNever) {
      const double ms = to_millis(options.clock->now() - start);
      options.metrics->histogram("storage." + options.stream + ".repair_ms")
          .record(static_cast<std::uint64_t>(ms < 0 ? 0 : ms));
    }
  }
  GAE_LOG_INFO << "repair: stream '" << options.stream << "' restored from "
               << "standby (" << report.frames << " frames, "
               << report.bytes_installed << " bytes, standby epoch "
               << report.standby_epoch << ")";
  return report;
}

supervision::SupervisedService make_repair_recipe(
    std::string recipe_name, RepairOptions options,
    std::function<void(const RepairReport&)> on_repaired) {
  supervision::SupervisedService service;
  service.name = std::move(recipe_name);
  service.restart = [options = std::move(options),
                     on_repaired = std::move(on_repaired)]() -> Status {
    auto repaired = repair_from_standby(options);
    if (!repaired.is_ok()) return repaired.status();
    if (on_repaired) on_repaired(repaired.value());
    return Status::ok();
  };
  return service;
}

void arm_repair_on_quarantine(StoreHealth& health,
                              supervision::Supervisor& supervisor,
                              std::string recipe_name) {
  health.set_on_change(
      [&supervisor, recipe_name = std::move(recipe_name)](StoreState state) {
        if (state == StoreState::kQuarantined) {
          supervisor.on_service_dead(recipe_name);
        }
      });
}

}  // namespace gae::storage
