#include "storage/faulty_storage.h"

#include "common/log.h"

namespace gae::storage {

const char* storage_fault_kind_name(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kNone: return "none";
    case StorageFaultKind::kTornAppend: return "torn_append";
    case StorageFaultKind::kEnospc: return "enospc";
    case StorageFaultKind::kFsyncFail: return "fsync_fail";
    case StorageFaultKind::kReadError: return "read_error";
    case StorageFaultKind::kBitRot: return "bit_rot";
    case StorageFaultKind::kReplaceFail: return "replace_fail";
  }
  return "unknown";
}

FaultyWalStorage::FaultyWalStorage(WalStorage* inner, StorageFaultPlan plan)
    : inner_(inner), plan_(std::move(plan)), rng_(plan_.seed) {}

StorageFaultSpec FaultyWalStorage::next_fault_locked() const {
  const std::uint64_t index = op_index_++;
  if (index < plan_.script.size()) return plan_.script[index];
  if (plan_.fault_rate > 0.0 && !plan_.random_kinds.empty() &&
      rng_.bernoulli(plan_.fault_rate)) {
    StorageFaultSpec spec;
    spec.kind = plan_.random_kinds[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(plan_.random_kinds.size()) - 1))];
    // Seeded rot placement: anywhere in the log as it stands now.
    auto contents = inner_->read_all();
    const std::size_t size = contents.is_ok() ? contents.value().size() : 0;
    spec.offset = size == 0 ? 0
                            : static_cast<std::size_t>(rng_.uniform_int(
                                  0, static_cast<std::int64_t>(size) - 1));
    return spec;
  }
  return StorageFaultSpec{};
}

void FaultyWalStorage::count_fault_locked(StorageFaultKind kind) const {
  ++faults_;
  ++fault_counts_[storage_fault_kind_name(kind)];
}

Status FaultyWalStorage::append(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (latched_) {
    return failed_precondition_error("faulty storage latched read-only");
  }
  const StorageFaultSpec fault = next_fault_locked();
  switch (fault.kind) {
    case StorageFaultKind::kTornAppend:
    case StorageFaultKind::kEnospc: {
      std::size_t keep = fault.after_bytes ? fault.after_bytes : bytes.size() / 2;
      if (keep > bytes.size()) keep = bytes.size();
      (void)inner_->append(bytes.substr(0, keep));  // the torn tail lands
      latched_ = true;
      count_fault_locked(fault.kind);
      GAE_LOG_WARN << "storage-fault: " << storage_fault_kind_name(fault.kind)
                   << " wrote " << keep << " of " << bytes.size() << " bytes (latched)";
      if (fault.kind == StorageFaultKind::kEnospc) {
        return resource_exhausted_error(
            "injected ENOSPC mid-frame (storage latched): wrote " +
            std::to_string(keep) + " of " + std::to_string(bytes.size()));
      }
      return internal_error("injected torn append (storage latched): wrote " +
                            std::to_string(keep) + " of " +
                            std::to_string(bytes.size()));
    }
    case StorageFaultKind::kFsyncFail: {
      // The bytes reach the page cache; the flush that would make them
      // durable fails. fsyncgate: nothing past this point may be trusted.
      (void)inner_->append(bytes);
      latched_ = true;
      count_fault_locked(fault.kind);
      GAE_LOG_WARN << "storage-fault: fsync failed after append (latched)";
      return internal_error("injected fsync failure (storage latched)");
    }
    case StorageFaultKind::kBitRot: {
      const Status s = inner_->append(bytes);
      if (s.is_ok()) {
        rot_[fault.offset] = fault.xor_mask ? fault.xor_mask : 0x01;
        count_fault_locked(fault.kind);
      }
      return s;
    }
    default:
      return inner_->append(bytes);
  }
}

Result<std::string> FaultyWalStorage::read_inner_locked() const {
  auto bytes = inner_->read_all();
  if (!bytes.is_ok() || rot_.empty()) return bytes;
  std::string out = std::move(bytes).value();
  for (const auto& [offset, mask] : rot_) {
    if (!out.empty()) out[offset % out.size()] ^= static_cast<char>(mask);
  }
  return out;
}

Result<std::string> FaultyWalStorage::read_all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const StorageFaultSpec fault = next_fault_locked();
  switch (fault.kind) {
    case StorageFaultKind::kReadError:
      count_fault_locked(fault.kind);
      return unavailable_error("injected wal read error");
    case StorageFaultKind::kBitRot:
      rot_[fault.offset] = fault.xor_mask ? fault.xor_mask : 0x01;
      count_fault_locked(fault.kind);
      return read_inner_locked();
    default:
      return read_inner_locked();
  }
}

Status FaultyWalStorage::replace(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  const StorageFaultSpec fault = next_fault_locked();
  if (fault.kind == StorageFaultKind::kReplaceFail) {
    count_fault_locked(fault.kind);
    return unavailable_error("injected wal replace failure");
  }
  const Status s = inner_->replace(bytes);
  if (s.is_ok()) {
    // The medium was rewritten wholesale: at-rest rot is gone and the
    // unknowable tail that latched us no longer exists.
    rot_.clear();
    latched_ = false;
  }
  return s;
}

Status FaultyWalStorage::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  const StorageFaultSpec fault = next_fault_locked();
  if (fault.kind == StorageFaultKind::kFsyncFail) {
    latched_ = true;
    count_fault_locked(fault.kind);
    GAE_LOG_WARN << "storage-fault: injected fsync failure (latched)";
    return internal_error("injected fsync failure (storage latched)");
  }
  return inner_->sync();
}

bool FaultyWalStorage::writable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !latched_ && inner_->writable();
}

void FaultyWalStorage::make_writable() {
  std::lock_guard<std::mutex> lock(mutex_);
  latched_ = false;
  inner_->make_writable();
}

void FaultyWalStorage::rot_byte(std::size_t offset, std::uint8_t mask) {
  std::lock_guard<std::mutex> lock(mutex_);
  rot_[offset] = mask ? mask : 0x01;
  count_fault_locked(StorageFaultKind::kBitRot);
}

void FaultyWalStorage::clear_rot() {
  std::lock_guard<std::mutex> lock(mutex_);
  rot_.clear();
}

void FaultyWalStorage::force_latch() {
  std::lock_guard<std::mutex> lock(mutex_);
  latched_ = true;
}

std::uint64_t FaultyWalStorage::ops_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return op_index_;
}

std::uint64_t FaultyWalStorage::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_;
}

std::map<std::string, std::uint64_t> FaultyWalStorage::fault_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_counts_;
}

}  // namespace gae::storage
