// Self-healing repair: a quarantined (or write-latched) store pulls a full,
// verified log image back from its hot standby and atomically swaps it in —
// PR 7's gap-resync machinery run in reverse. The standby has every
// acknowledged frame (sync replication acks only after standby fsync), so a
// primary whose disk rotted or tore repairs to exactly the acked history.
//
// Flow: fetch the standby's log over ShipperTransport::fetch (ha.fetch on
// the wire) -> verify the end-to-end CRC and re-decode every frame (a
// damaged donor must never be installed) -> WalStorage::replace (crash-
// atomic; clears the read-only latch) -> re-read and byte-compare what
// landed -> replay into the live store -> mark healthy.
//
// make_repair_recipe packages this as a supervision::SupervisedService so
// repair rides the same detector-verdict + capped-backoff machinery as
// promotion: arm_repair_on_quarantine wires a StoreHealth quarantine
// transition to schedule the recipe, and the supervisor retries with
// backoff until the standby is reachable — or quarantines the recipe
// itself if repair crash-loops.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "common/wal.h"
#include "ha/replication.h"
#include "storage/health.h"
#include "storage/scrubber.h"
#include "supervision/supervisor.h"
#include "telemetry/metrics.h"

namespace gae::storage {

struct RepairOptions {
  std::string stream;
  /// The damaged store's storage; replace() swaps the repaired image in.
  WalStorage* storage = nullptr;
  /// Where the verified image comes from (a transport to the hot standby).
  ha::ShipperTransport* source = nullptr;
  /// Marked healthy after a successful repair (optional).
  StoreHealth* health = nullptr;
  /// Bumps wal.<stream>.scrub.repaired so detection and healing share a
  /// metric family (optional).
  Scrubber* scrubber = nullptr;
  /// Rebuilds the live in-memory view from the repaired log (DBManager::
  /// recover and friends). Runs after the swap; its failure fails the
  /// repair (optional).
  std::function<Status()> replay;
  /// storage.<stream>.repair_ms histogram and .repair_failures counter.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Times the repair for the histogram (optional).
  const Clock* clock = nullptr;
};

struct RepairReport {
  std::size_t bytes_installed = 0;
  std::size_t frames = 0;
  std::uint64_t standby_epoch = 0;
  std::uint64_t standby_next_seq = 0;
};

/// One repair attempt. Fails without touching the local log when the
/// standby is unreachable or its image does not verify; the supervisor's
/// backoff retries.
Result<RepairReport> repair_from_standby(const RepairOptions& options);

/// Packages repair_from_standby as a supervisor restart recipe. manage()
/// this under `recipe_name` and schedule it (arm_repair_on_quarantine does
/// so automatically) and repair runs with capped backoff until it lands.
/// `on_repaired` (optional) runs after a successful repair.
supervision::SupervisedService make_repair_recipe(
    std::string recipe_name, RepairOptions options,
    std::function<void(const RepairReport&)> on_repaired = {});

/// Wires a quarantine verdict into the supervisor: when `health` enters
/// kQuarantined, a restart of `recipe_name` is scheduled (idempotent while
/// one is pending). `supervisor` and `health` must outlive each other's
/// use; call after supervisor.manage(make_repair_recipe(...)).
void arm_repair_on_quarantine(StoreHealth& health,
                              supervision::Supervisor& supervisor,
                              std::string recipe_name);

}  // namespace gae::storage
