// Background integrity scrubbing for WAL-backed stores.
//
// Crash recovery only inspects a log when a process restarts; bit rot does
// not wait for a restart. The Scrubber re-reads registered logs on a
// clock-injected cadence, re-verifies the CRC framing of every record and
// snapshot, and — instead of letting a rotten store keep answering reads —
// quarantines it through its StoreHealth, which arms the repair recipe
// (storage/repair.h) to pull a verified image back from a hot standby.
//
// Rate limiting is byte-budgeted per tick so a scrub pass over a large log
// cannot starve the serving path; the cadence and budget both come from
// options, and the clock is injected so virtual-time tests are exact.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/wal.h"
#include "storage/health.h"
#include "telemetry/metrics.h"

namespace gae::storage {

enum class ScrubVerdict {
  kClean = 0,
  /// Trailing bytes do not frame a complete record. On a live store (no
  /// crash in between) this means a torn append latched the write path.
  kTornTail,
  /// CRC mismatch mid-log, an unknown frame type, or an unreadable medium:
  /// the store's view may be poisoned.
  kCorrupt,
};

const char* scrub_verdict_name(ScrubVerdict verdict);

struct ScrubTarget {
  std::string stream;
  WalStorage* storage = nullptr;
  /// Quarantined on damage (may be null: detect-and-count only).
  StoreHealth* health = nullptr;
};

struct ScrubberOptions {
  /// Minimum gap between two scrubs of the same target (tick() cadence).
  SimDuration interval = from_seconds(5);
  /// Byte budget per tick(): scrubbing stops for this tick once the logs
  /// verified so far exceed it. One target is always scrubbed when due,
  /// however large, so progress is guaranteed.
  std::size_t max_bytes_per_tick = 4 * 1024 * 1024;
  /// Quarantine on a torn tail too (default): on a live store a torn tail
  /// is a latched torn append, not a crash artifact, and the standby holds
  /// the complete log.
  bool quarantine_on_torn_tail = true;
  /// wal.<stream>.scrub.{frames,corrupt,repaired} counters land here.
  telemetry::MetricsRegistry* metrics = nullptr;
};

struct ScrubReport {
  std::string stream;
  ScrubVerdict verdict = ScrubVerdict::kClean;
  std::size_t frames = 0;         // frames verified in the valid prefix
  std::size_t bytes = 0;          // total log bytes read
  std::size_t damaged_bytes = 0;  // bytes past the valid prefix
};

struct ScrubberStats {
  std::uint64_t scrubs = 0;
  std::uint64_t frames_verified = 0;
  std::uint64_t corruptions_found = 0;
  std::uint64_t repairs_noted = 0;
};

class Scrubber {
 public:
  explicit Scrubber(const Clock& clock, ScrubberOptions options = {});

  /// Registers a log to scrub (replacing any previous target for the
  /// stream). `storage` (and `health`, when set) must outlive the scrubber.
  void add_target(ScrubTarget target);

  /// Verifies one stream immediately (no cadence or budget applied).
  /// NOT_FOUND for unknown streams; a read error quarantines and reports
  /// kCorrupt — an unreadable log cannot be trusted any more than a rotten
  /// one, and repair heals both the same way.
  Result<ScrubReport> scrub(const std::string& stream);

  /// Scrubs every target whose interval has elapsed, oldest-scrub first,
  /// within the byte budget. Returns the number of targets scrubbed. Call
  /// from a periodic event (simulation) or a timer thread (live).
  std::size_t tick();

  /// Repair completed for `stream`: bumps wal.<stream>.scrub.repaired (the
  /// repair recipe calls this so detection and healing share a series).
  void note_repaired(const std::string& stream);

  ScrubberStats stats() const;

 private:
  struct Target {
    ScrubTarget target;
    SimTime last_scrub = kSimTimeNever;
  };

  ScrubReport scrub_target(Target& entry);

  const Clock& clock_;
  ScrubberOptions options_;
  std::map<std::string, Target> targets_;
  ScrubberStats stats_;
};

}  // namespace gae::storage
