#include "storage/health.h"

#include "common/log.h"

namespace gae::storage {

const char* store_state_name(StoreState state) {
  switch (state) {
    case StoreState::kHealthy: return "healthy";
    case StoreState::kReadOnly: return "read_only";
    case StoreState::kQuarantined: return "quarantined";
  }
  return "unknown";
}

StoreHealth::StoreHealth(std::string stream, telemetry::MetricsRegistry* metrics)
    : stream_(std::move(stream)), metrics_(metrics) {
  if (metrics_) {
    state_gauge_ = &metrics_->gauge("storage." + stream_ + ".state");
    quarantine_counter_ = &metrics_->counter("storage." + stream_ + ".quarantines");
    read_only_counter_ = &metrics_->counter("storage." + stream_ + ".read_only_latches");
  }
}

StoreState StoreHealth::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::string StoreHealth::reason() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reason_;
}

void StoreHealth::set_on_change(std::function<void(StoreState)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_change_ = std::move(fn);
}

void StoreHealth::transition_locked(StoreState next, const std::string& why,
                                    std::function<void(StoreState)>& fire) {
  if (state_ == next) return;
  state_ = next;
  reason_ = next == StoreState::kHealthy ? std::string() : why;
  if (state_gauge_) state_gauge_->set(static_cast<std::int64_t>(next));
  fire = on_change_;
}

void StoreHealth::mark_read_only(const std::string& why) {
  std::function<void(StoreState)> fire;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Quarantine is the stronger verdict; a write-path latch must not
    // soften it back to serving reads.
    if (state_ == StoreState::kQuarantined || state_ == StoreState::kReadOnly) return;
    transition_locked(StoreState::kReadOnly, why, fire);
  }
  if (read_only_counter_) read_only_counter_->inc();
  GAE_LOG_WARN << "storage: store '" << stream_ << "' degraded read-only: " << why;
  if (fire) fire(StoreState::kReadOnly);
}

void StoreHealth::quarantine(const std::string& why) {
  std::function<void(StoreState)> fire;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == StoreState::kQuarantined) return;
    ++quarantines_;
    transition_locked(StoreState::kQuarantined, why, fire);
  }
  if (quarantine_counter_) quarantine_counter_->inc();
  GAE_LOG_ERROR << "storage: store '" << stream_ << "' QUARANTINED: " << why;
  if (fire) fire(StoreState::kQuarantined);
}

void StoreHealth::mark_healthy() {
  std::function<void(StoreState)> fire;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == StoreState::kHealthy) return;
    transition_locked(StoreState::kHealthy, "", fire);
  }
  GAE_LOG_INFO << "storage: store '" << stream_ << "' healthy again";
  if (fire) fire(StoreState::kHealthy);
}

void StoreHealth::note_recover(const RecoverStats& stats) {
  if (metrics_) {
    metrics_->counter("wal." + stream_ + ".recover.corrupt_frames")
        .inc(stats.corrupt_frames);
    metrics_->counter("wal." + stream_ + ".recover.bytes_truncated")
        .inc(stats.bytes_truncated);
  }
  if (stats.corrupt) {
    quarantine("recovery found corrupt frame (kept " +
               std::to_string(stats.frames_kept) + " frames, dropped " +
               std::to_string(stats.bytes_truncated) + " bytes)");
  } else if (stats.torn_tail) {
    GAE_LOG_WARN << "storage: store '" << stream_ << "' recovery dropped a torn tail ("
                 << stats.bytes_truncated << " bytes)";
  }
}

std::uint64_t StoreHealth::quarantines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantines_;
}

}  // namespace gae::storage
