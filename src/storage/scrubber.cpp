#include "storage/scrubber.h"

#include <algorithm>

#include "common/log.h"

namespace gae::storage {

const char* scrub_verdict_name(ScrubVerdict verdict) {
  switch (verdict) {
    case ScrubVerdict::kClean: return "clean";
    case ScrubVerdict::kTornTail: return "torn_tail";
    case ScrubVerdict::kCorrupt: return "corrupt";
  }
  return "unknown";
}

Scrubber::Scrubber(const Clock& clock, ScrubberOptions options)
    : clock_(clock), options_(options) {}

void Scrubber::add_target(ScrubTarget target) {
  if (!target.storage) return;
  Target entry;
  entry.target = std::move(target);
  targets_[entry.target.stream] = std::move(entry);
}

ScrubReport Scrubber::scrub_target(Target& entry) {
  const ScrubTarget& t = entry.target;
  entry.last_scrub = clock_.now();
  ++stats_.scrubs;

  ScrubReport report;
  report.stream = t.stream;

  auto bytes = t.storage->read_all();
  if (!bytes.is_ok()) {
    report.verdict = ScrubVerdict::kCorrupt;
    ++stats_.corruptions_found;
    if (options_.metrics) {
      options_.metrics->counter("wal." + t.stream + ".scrub.corrupt").inc();
    }
    if (t.health) t.health->quarantine("scrub read error: " + bytes.status().message());
    return report;
  }
  report.bytes = bytes.value().size();

  const WalReadResult decoded = Wal::decode(bytes.value());
  report.frames = decoded.records.size();
  report.damaged_bytes = report.bytes - decoded.valid_bytes;
  stats_.frames_verified += decoded.records.size();
  if (options_.metrics) {
    options_.metrics->counter("wal." + t.stream + ".scrub.frames")
        .inc(decoded.records.size());
  }

  if (decoded.corrupt) {
    report.verdict = ScrubVerdict::kCorrupt;
  } else if (decoded.torn_tail) {
    report.verdict = ScrubVerdict::kTornTail;
  }
  const bool damage =
      report.verdict == ScrubVerdict::kCorrupt ||
      (report.verdict == ScrubVerdict::kTornTail && options_.quarantine_on_torn_tail);
  if (damage) {
    ++stats_.corruptions_found;
    if (options_.metrics) {
      options_.metrics->counter("wal." + t.stream + ".scrub.corrupt").inc();
    }
    GAE_LOG_ERROR << "scrub: stream '" << t.stream << "' "
                  << scrub_verdict_name(report.verdict) << " (" << report.frames
                  << " clean frames, " << report.damaged_bytes << " damaged bytes)";
    if (t.health) {
      t.health->quarantine("scrub found " +
                           std::string(scrub_verdict_name(report.verdict)) + ": " +
                           std::to_string(report.damaged_bytes) + " damaged bytes");
    }
  }
  return report;
}

Result<ScrubReport> Scrubber::scrub(const std::string& stream) {
  auto it = targets_.find(stream);
  if (it == targets_.end()) return not_found_error("no scrub target: " + stream);
  return scrub_target(it->second);
}

std::size_t Scrubber::tick() {
  const SimTime now = clock_.now();
  // Due targets, least-recently-scrubbed first, so the budget rotates
  // fairly instead of always feeding the same early streams.
  std::vector<Target*> due;
  for (auto& [_, entry] : targets_) {
    if (entry.last_scrub == kSimTimeNever ||
        now - entry.last_scrub >= options_.interval) {
      due.push_back(&entry);
    }
  }
  std::sort(due.begin(), due.end(), [](const Target* a, const Target* b) {
    return a->last_scrub < b->last_scrub;
  });

  std::size_t scrubbed = 0;
  std::size_t budget_spent = 0;
  for (Target* entry : due) {
    if (scrubbed > 0 && budget_spent >= options_.max_bytes_per_tick) break;
    const ScrubReport report = scrub_target(*entry);
    budget_spent += report.bytes;
    ++scrubbed;
  }
  return scrubbed;
}

void Scrubber::note_repaired(const std::string& stream) {
  ++stats_.repairs_noted;
  if (options_.metrics) {
    options_.metrics->counter("wal." + stream + ".scrub.repaired").inc();
  }
}

ScrubberStats Scrubber::stats() const { return stats_; }

}  // namespace gae::storage
