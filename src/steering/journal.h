// Append-only recovery journal for the Steering Service.
//
// Steering's Backup & Recovery state (which tasks are watched, where they
// are placed, how they have moved) used to live only in memory: one crashed
// service host orphaned every watched task. The journal persists that state
// through a pluggable sink as it changes, and restore_from_journal() replays
// it so a restarted steering service re-adopts its tasks.
//
// Format: one record per line, "v1 <kind> key=value ...", keys/values
// percent-escaped. Append-only by construction — recovery state is always a
// fold over the full history, never an in-place update.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/wal.h"

namespace gae::steering {

/// Where journal lines go. Implementations must append durably enough for
/// their deployment (memory for tests, fsync'd file for a real service).
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  virtual Status append(const std::string& line) = 0;
};

/// Test/simulation sink: lines kept in memory, handed back for replay.
class MemoryJournalSink final : public JournalSink {
 public:
  Status append(const std::string& line) override {
    lines_.push_back(line);
    return Status::ok();
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

/// File-backed sink; every append is flushed so a crash loses at most the
/// line being written.
class FileJournalSink final : public JournalSink {
 public:
  /// Opens `path` for append; INTERNAL on open failure (reported lazily by
  /// the first append).
  explicit FileJournalSink(std::string path);
  ~FileJournalSink();

  Status append(const std::string& line) override;

 private:
  std::string path_;
  void* file_ = nullptr;  // FILE*, kept out of the header
};

/// CRC-framed sink: each journal line rides one common::Wal record, which
/// buys steering's recovery journal torn-tail detection on replay, a
/// scrubbable on-disk format (storage/scrubber.h watches the same Wal), and
/// standby replication by wrapping the Wal's storage — none of which the
/// raw line-per-line FileJournalSink offers. A failed append surfaces to
/// the caller; the underlying storage latches itself.
class WalJournalSink final : public JournalSink {
 public:
  /// `wal` must outlive the sink.
  explicit WalJournalSink(Wal* wal) : wal_(wal) {}

  Status append(const std::string& line) override;

 private:
  Wal* wal_;
};

/// Decodes a journal Wal (frames written by WalJournalSink) back into the
/// lines restore_from_journal replays. Folds from the last snapshot (its
/// payload is the newline-joined lines) plus the record tail; a torn final
/// frame is dropped as the usual crash artifact.
Result<std::vector<std::string>> journal_lines_from_wal(const Wal& wal);

/// One journal record: a kind plus flat string fields.
struct JournalRecord {
  std::string kind;  // "watch" | "place" | "move" | "recover" | "restart" | "done"
  std::map<std::string, std::string> fields;

  std::string field(const std::string& key, const std::string& fallback = "") const;
  double field_double(const std::string& key, double fallback = 0.0) const;

  /// Serialises to one "v1 ..." line (no trailing newline).
  std::string to_line() const;

  /// Parses a line written by to_line(). INVALID_ARGUMENT on malformed or
  /// unknown-version input.
  static Result<JournalRecord> parse(const std::string& line);
};

/// Parses a whole journal, skipping blank lines. Fails on the first
/// malformed record (a torn final line after a crash is the caller's call:
/// pass `tolerate_trailing_garbage` to drop it instead).
Result<std::vector<JournalRecord>> parse_journal(const std::vector<std::string>& lines,
                                                 bool tolerate_trailing_garbage = false);

/// Reads a file-backed journal written through FileJournalSink.
Result<std::vector<JournalRecord>> read_journal_file(const std::string& path,
                                                     bool tolerate_trailing_garbage = true);

}  // namespace gae::steering
