#include "steering/rpc_binding.h"

#include "jobmon/rpc_binding.h"
#include "telemetry/instrument.h"

namespace gae::steering {

using rpc::Array;
using rpc::CallContext;
using rpc::Struct;
using rpc::Value;

namespace {

Result<std::string> task_id_param(const Array& params, const char* usage) {
  if (params.empty() || !params[0].is_string()) return invalid_argument_error(usage);
  return params[0].as_string();
}

Value placement_to_value(const sphinx::SitePlacement& p) {
  Struct out;
  out["task_id"] = Value(p.task_id);
  out["site"] = Value(p.site);
  out["est_runtime_seconds"] = Value(p.score.est_runtime_seconds);
  out["est_queue_seconds"] = Value(p.score.est_queue_seconds);
  out["est_transfer_seconds"] = Value(p.score.est_transfer_seconds);
  out["total_seconds"] = Value(p.score.total_seconds);
  return Value(std::move(out));
}

}  // namespace

void register_steering_methods(clarens::ClarensHost& host, SteeringService& service,
                               telemetry::Tracer* tracer,
                               telemetry::MetricsRegistry* metrics) {
  const telemetry::TracedRegistrar d(host.dispatcher(), tracer, metrics);

  d.register_method("steering.kill",
                    [&service](const Array& params, const CallContext& ctx) -> Result<Value> {
                      auto id = task_id_param(params, "steering.kill(task_id)");
                      if (!id.is_ok()) return id.status();
                      const Status s = service.kill(ctx.session_token, id.value());
                      if (!s.is_ok()) return s;
                      return Value(true);
                    });

  d.register_method("steering.pause",
                    [&service](const Array& params, const CallContext& ctx) -> Result<Value> {
                      auto id = task_id_param(params, "steering.pause(task_id)");
                      if (!id.is_ok()) return id.status();
                      const Status s = service.pause(ctx.session_token, id.value());
                      if (!s.is_ok()) return s;
                      return Value(true);
                    });

  d.register_method("steering.resume",
                    [&service](const Array& params, const CallContext& ctx) -> Result<Value> {
                      auto id = task_id_param(params, "steering.resume(task_id)");
                      if (!id.is_ok()) return id.status();
                      const Status s = service.resume(ctx.session_token, id.value());
                      if (!s.is_ok()) return s;
                      return Value(true);
                    });

  d.register_method(
      "steering.priority",
      [&service](const Array& params, const CallContext& ctx) -> Result<Value> {
        if (params.size() != 2) {
          return invalid_argument_error("steering.priority(task_id, priority)");
        }
        const Status s = service.change_priority(ctx.session_token, params[0].as_string(),
                                                 static_cast<int>(params[1].as_int()));
        if (!s.is_ok()) return s;
        return Value(true);
      });

  d.register_method(
      "steering.move",
      [&service](const Array& params, const CallContext& ctx) -> Result<Value> {
        auto id = task_id_param(params, "steering.move(task_id[, to_site])");
        if (!id.is_ok()) return id.status();
        const std::string to_site =
            params.size() > 1 && params[1].is_string() ? params[1].as_string() : "";
        auto placement = service.move(ctx.session_token, id.value(), to_site);
        if (!placement.is_ok()) return placement.status();
        return placement_to_value(placement.value());
      });

  d.register_method("steering.restart",
                    [&service](const Array& params, const CallContext& ctx) -> Result<Value> {
                      auto id = task_id_param(params, "steering.restart(task_id)");
                      if (!id.is_ok()) return id.status();
                      auto placement = service.restart(ctx.session_token, id.value());
                      if (!placement.is_ok()) return placement.status();
                      return placement_to_value(placement.value());
                    });

  d.register_method("steering.info",
                    [&service](const Array& params, const CallContext& ctx) -> Result<Value> {
                      auto id = task_id_param(params, "steering.info(task_id)");
                      if (!id.is_ok()) return id.status();
                      auto report = service.job_info(ctx.session_token, id.value());
                      if (!report.is_ok()) return report.status();
                      return jobmon::report_to_value(report.value());
                    });

  d.register_method(
      "steering.advise",
      [&service](const Array& params, const CallContext& ctx) -> Result<Value> {
        auto id = task_id_param(params, "steering.advise(task_id)");
        if (!id.is_ok()) return id.status();
        auto scores = service.advise(ctx.session_token, id.value());
        if (!scores.is_ok()) return scores.status();
        Array out;
        for (const auto& score : scores.value()) {
          Struct s;
          s["site"] = Value(score.site);
          s["est_runtime_seconds"] = Value(score.est_runtime_seconds);
          s["est_queue_seconds"] = Value(score.est_queue_seconds);
          s["est_transfer_seconds"] = Value(score.est_transfer_seconds);
          s["total_seconds"] = Value(score.total_seconds);
          out.emplace_back(std::move(s));
        }
        return Value(std::move(out));
      });

  d.register_method("steering.notifications",
                    [&service](const Array&, const CallContext&) -> Result<Value> {
                      Array out;
                      for (const auto& n : service.notification_log()) {
                        Struct s;
                        s["time"] = Value(to_seconds(n.time));
                        s["kind"] = Value(n.kind);
                        s["job_id"] = Value(n.job_id);
                        s["task_id"] = Value(n.task_id);
                        s["detail"] = Value(n.detail);
                        Array files;
                        for (const auto& f : n.output_files) files.push_back(Value(f));
                        s["output_files"] = Value(std::move(files));
                        out.emplace_back(std::move(s));
                      }
                      return Value(std::move(out));
                    });

  d.register_method(
      "steering.notificationsSince",
      [&service](const Array& params, const CallContext&) -> Result<Value> {
        if (params.empty() || !params[0].is_int()) {
          return invalid_argument_error("steering.notificationsSince(after[, max])");
        }
        const auto after = static_cast<std::size_t>(params[0].as_int());
        const std::size_t max =
            params.size() > 1 ? static_cast<std::size_t>(params[1].as_int()) : 100;
        Array out;
        std::size_t index = after;
        for (const auto& n : service.notifications_since(after, max)) {
          Struct s;
          s["index"] = Value(static_cast<std::int64_t>(index++));
          s["time"] = Value(to_seconds(n.time));
          s["kind"] = Value(n.kind);
          s["job_id"] = Value(n.job_id);
          s["task_id"] = Value(n.task_id);
          s["detail"] = Value(n.detail);
          out.emplace_back(std::move(s));
        }
        return Value(std::move(out));
      });

  host.registry().register_service(
      {"steering@" + host.name(), host.name(), host.port(), "xmlrpc", {}, 0});
}

}  // namespace gae::steering
