#include "steering/journal.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace gae::steering {
namespace {

constexpr char kVersion[] = "v1";

bool needs_escape(char c) {
  return c == ' ' || c == '=' || c == '%' || c == '\n' || c == '\r';
}

std::string escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (needs_escape(c)) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

Result<std::string> unescape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      out += in[i];
      continue;
    }
    if (i + 2 >= in.size() ||
        !std::isxdigit(static_cast<unsigned char>(in[i + 1])) ||
        !std::isxdigit(static_cast<unsigned char>(in[i + 2]))) {
      return invalid_argument_error("bad escape in journal token: " + in);
    }
    out += static_cast<char>(std::stoi(in.substr(i + 1, 2), nullptr, 16));
    i += 2;
  }
  return out;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

}  // namespace

FileJournalSink::FileJournalSink(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "a");
}

FileJournalSink::~FileJournalSink() {
  if (file_) std::fclose(static_cast<std::FILE*>(file_));
}

Status FileJournalSink::append(const std::string& line) {
  if (!file_) return internal_error("journal file not open: " + path_);
  auto* f = static_cast<std::FILE*>(file_);
  if (std::fputs(line.c_str(), f) < 0 || std::fputc('\n', f) < 0) {
    return internal_error("journal write failed: " + path_);
  }
  std::fflush(f);
  return Status::ok();
}

std::string JournalRecord::field(const std::string& key,
                                 const std::string& fallback) const {
  auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

double JournalRecord::field_double(const std::string& key, double fallback) const {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? fallback : v;
}

std::string JournalRecord::to_line() const {
  std::string line = std::string(kVersion) + " " + escape(kind);
  for (const auto& [key, value] : fields) {
    line += " " + escape(key) + "=" + escape(value);
  }
  return line;
}

Result<JournalRecord> JournalRecord::parse(const std::string& line) {
  const std::vector<std::string> tokens = split_ws(line);
  if (tokens.size() < 2) return invalid_argument_error("short journal line: " + line);
  if (tokens[0] != kVersion) {
    return invalid_argument_error("unknown journal version: " + tokens[0]);
  }
  JournalRecord rec;
  auto kind = unescape(tokens[1]);
  if (!kind.is_ok()) return kind.status();
  rec.kind = kind.value();
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      return invalid_argument_error("journal token missing '=': " + tokens[i]);
    }
    auto key = unescape(tokens[i].substr(0, eq));
    if (!key.is_ok()) return key.status();
    auto value = unescape(tokens[i].substr(eq + 1));
    if (!value.is_ok()) return value.status();
    rec.fields[key.value()] = value.value();
  }
  return rec;
}

Result<std::vector<JournalRecord>> parse_journal(const std::vector<std::string>& lines,
                                                 bool tolerate_trailing_garbage) {
  std::vector<JournalRecord> records;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    auto rec = JournalRecord::parse(lines[i]);
    if (!rec.is_ok()) {
      // A torn final line is the normal crash artifact; anything earlier is
      // real corruption.
      if (tolerate_trailing_garbage && i + 1 == lines.size()) break;
      return rec.status();
    }
    records.push_back(std::move(rec).value());
  }
  return records;
}

Result<std::vector<JournalRecord>> read_journal_file(const std::string& path,
                                                     bool tolerate_trailing_garbage) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return not_found_error("journal file not found: " + path);
  std::vector<std::string> lines;
  std::string current;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += static_cast<char>(c);
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  std::fclose(f);
  return parse_journal(lines, tolerate_trailing_garbage);
}

Status WalJournalSink::append(const std::string& line) {
  if (!wal_) return failed_precondition_error("journal sink has no wal");
  return wal_->append(line);
}

Result<std::vector<std::string>> journal_lines_from_wal(const Wal& wal) {
  auto read = wal.read();
  if (!read.is_ok()) return read.status();
  const WalReadResult& log = read.value();

  std::vector<std::string> lines;
  std::size_t at = log.replay_start();
  if (at < log.records.size() &&
      log.records[at].type == WalRecord::Type::kSnapshot) {
    std::istringstream in(log.records[at].payload);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    ++at;
  }
  for (; at < log.records.size(); ++at) {
    lines.push_back(log.records[at].payload);
  }
  return lines;
}

}  // namespace gae::steering
