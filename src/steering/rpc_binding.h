// Web-service face of the Steering Service: registers "steering.*" methods
// on a Clarens host. The session token from the transport (x-clarens-session)
// doubles as the steering authorization token, so the Session Manager checks
// the same identity the host authenticated.
#pragma once

#include "clarens/host.h"
#include "steering/service.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gae::steering {

/// Registers steering.kill / pause / resume / priority / move / info /
/// notifications on the host. The service must outlive the host. With a
/// tracer/metrics each handler also records an "internal" span under service
/// "steering" and steering.<method>.{calls,errors} counters.
void register_steering_methods(clarens::ClarensHost& host, SteeringService& service,
                               telemetry::Tracer* tracer = nullptr,
                               telemetry::MetricsRegistry* metrics = nullptr);

}  // namespace gae::steering
