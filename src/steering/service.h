// Steering Service (paper §4, fig. 2).
//
// Components map one-to-one onto the paper's design:
//  - Subscriber: receives concrete job plans from the scheduler and starts
//    watching the tasks and the execution services they use.
//  - Command Processor: client- and optimizer-initiated job control (kill,
//    pause, resume, change priority, move to another site). Job redirection
//    goes through the scheduler (Sphinx).
//  - Optimizer: periodically compares each running task's observed progress
//    rate against expectation; on slow execution it consults the estimators
//    (fast mode) or the Quota/Accounting service (cheap mode) and redirects
//    the task to the "best site".
//  - Backup & Recovery: polls the execution services; when one fails, it
//    asks Sphinx to allocate a new site and resubmits the affected tasks.
//    Completion/failure notifications and output-file retrieval also live
//    here.
//  - Session Manager: makes sure only authorized users steer jobs.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clarens/auth.h"
#include "exec/execution_service.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "quota/quota_service.h"
#include "sim/engine.h"
#include "sphinx/scheduler.h"
#include "steering/journal.h"

namespace gae::steering {

struct SteeringOptions {
  /// Optimizer: enable automatic steering (users can always steer manually).
  bool auto_steer = true;
  /// Optimizer poll cadence (virtual seconds).
  double optimizer_interval_seconds = 15.0;
  /// Observe a task at least this long before judging it slow.
  double min_observation_seconds = 30.0;
  /// A running task is "slow" when its progress rate (reference-CPU seconds
  /// per wall second) falls below this threshold (a free node achieves ~1.0).
  double slow_rate_threshold = 0.5;
  /// Only move when the predicted saving exceeds this many seconds.
  double min_benefit_seconds = 30.0;
  /// Fig. 7's "testing purposes" mode: leave the original instance running
  /// at the old site after a move.
  bool keep_original_on_move = false;
  /// "fast" minimises expected completion time; "cheap" picks the cheapest
  /// site from the Quota & Accounting service.
  std::string optimize_for = "fast";
  /// Backup & Recovery poll cadence (virtual seconds).
  double recovery_interval_seconds = 30.0;
  /// Maximum automatic moves per task (stops ping-ponging).
  int max_moves_per_task = 3;
  /// Backup & Recovery may resubmit a task that failed while its execution
  /// service stayed up (e.g. staging aborted by a link failure) this many
  /// times before giving up. 0 keeps the historical behaviour: task-level
  /// failures are terminal and wait for a manual restart().
  int max_auto_resubmits = 0;
};

/// Client-visible notification (the paper's steering service "provides
/// constant feedback of the submitted jobs to the users").
struct Notification {
  SimTime time = 0;
  std::string kind;  // "completed" | "failed" | "moved" | "service_failure" | "recovered"
  std::string job_id;
  std::string task_id;
  std::string detail;
  std::vector<std::string> output_files;  // populated for completed/failed
};

struct SteeringStats {
  std::size_t auto_moves = 0;
  std::size_t manual_moves = 0;
  std::size_t recoveries = 0;  // service-failure resubmissions via Sphinx
  std::size_t resubmits = 0;   // task-level failure resubmissions (link chaos)
  std::size_t completions = 0;
  std::size_t failures = 0;
  std::size_t journal_appends = 0;
  std::size_t journal_replayed = 0;  // records folded by restore_from_journal
  std::size_t journal_adopted = 0;   // watches re-adopted after a restart
};

class SteeringService {
 public:
  struct Deps {
    sim::Simulation* sim = nullptr;
    sphinx::SphinxScheduler* scheduler = nullptr;
    jobmon::JobMonitoringService* jobmon = nullptr;
    std::map<std::string, exec::ExecutionService*> services;
    quota::QuotaAccountingService* quota = nullptr;  // optional; "cheap" mode
    clarens::AuthService* auth = nullptr;            // optional; session manager
    JournalSink* journal = nullptr;                  // optional; Backup & Recovery
    monalisa::Repository* monitoring = nullptr;      // optional; counter export
  };

  SteeringService(Deps deps, SteeringOptions options = {});
  ~SteeringService();

  SteeringService(const SteeringService&) = delete;
  SteeringService& operator=(const SteeringService&) = delete;

  // -- Subscriber ------------------------------------------------------------

  /// Called automatically for plans published by the scheduler; can also be
  /// invoked directly when plans arrive out of band.
  void watch_plan(const sphinx::JobDescription& job, const sphinx::ConcreteJobPlan& plan);

  std::size_t watched_tasks() const { return watches_.size(); }

  // -- Command Processor (session-checked job control) -----------------------

  Status kill(const std::string& token, const std::string& task_id);
  Status pause(const std::string& token, const std::string& task_id);
  Status resume(const std::string& token, const std::string& task_id);
  Status change_priority(const std::string& token, const std::string& task_id,
                         int priority);

  /// Moves a task. Empty `to_site` lets the Optimizer pick the best site.
  Result<sphinx::SitePlacement> move(const std::string& token, const std::string& task_id,
                                     const std::string& to_site = "");

  /// Resubmits a failed (or killed) task through the scheduler — the
  /// "restart processing steps that may have failed" capability of §2.
  Result<sphinx::SitePlacement> restart(const std::string& token,
                                        const std::string& task_id);

  /// Monitoring passthrough with session check (clients read progress here).
  Result<jobmon::JobMonitorReport> job_info(const std::string& token,
                                            const std::string& task_id) const;

  /// "Grid weather for my job": the scheduler's ranked site estimates for a
  /// watched task, so advanced users can decide where to move it manually.
  Result<std::vector<sphinx::SiteScore>> advise(const std::string& token,
                                                const std::string& task_id) const;

  // -- Notifications -----------------------------------------------------------

  using NotificationCallback = std::function<void(const Notification&)>;
  int subscribe(NotificationCallback cb);
  void unsubscribe(int token);
  const std::vector<Notification>& notification_log() const { return log_; }

  /// Notifications after index `after` (0-based position in the log), at
  /// most `max` — lets polling clients tail the feed incrementally.
  std::vector<Notification> notifications_since(std::size_t after,
                                                std::size_t max = 100) const;

  const SteeringStats& stats() const { return stats_; }

  // -- Backup & Recovery journal ---------------------------------------------

  /// Rebuilds watch state from a recovery journal (the fold of all records):
  /// non-terminal tasks are re-adopted and the periodic passes re-armed, so a
  /// restarted steering service picks up where the crashed one stopped.
  /// Already-watched tasks are left alone — replay is idempotent.
  Status restore_from_journal(const std::vector<JournalRecord>& records);

  /// Convenience: parse raw journal lines, then restore.
  Status restore_from_journal(const std::vector<std::string>& lines);

  /// Runs one optimizer pass immediately (tests and manual tools).
  void optimizer_tick();
  /// Runs one Backup & Recovery pass immediately.
  void recovery_tick();

  /// Re-resolves the monitoring dependency after a supervised jobmon
  /// restart (the old instance is gone; the supervisor hands over the
  /// recovered one, the way a re-discovery through the registry would).
  void rebind_jobmon(jobmon::JobMonitoringService* jm) { deps_.jobmon = jm; }

 private:
  struct Watch {
    std::string job_id;
    std::string owner;
    exec::TaskSpec spec;
    double last_cpu_seconds = 0.0;
    SimTime last_checked = kSimTimeNever;
    SimTime first_running_seen = kSimTimeNever;
    int moves = 0;
    int resubmits = 0;    // automatic task-level resubmissions so far
    bool done = false;    // terminal and reported; no further steering
    bool failed = false;  // awaiting Backup & Recovery's verdict
  };

  /// Session Manager: resolves the token and checks job ownership.
  Status authorize(const std::string& token, const std::string& owner) const;

  /// The move machinery shared by manual and automatic paths.
  Result<sphinx::SitePlacement> do_move(Watch& watch, const std::string& task_id,
                                        const std::string& to_site, bool automatic);

  /// Picks a target site per optimize_for; "" when nothing qualifies.
  std::string pick_target_site(const Watch& watch, const std::string& current_site,
                               double remaining_at_current_seconds) const;

  void on_task_event(const std::string& site, const exec::TaskEvent& ev);
  void notify(Notification n);

  /// Appends one record to the recovery journal (no-op without a sink).
  void journal_append(JournalRecord rec);
  /// Pushes the current counters into the MonALISA repository (no-op without
  /// one) so operators see steering health next to site load.
  void publish_stats();

  /// True while any watched task still needs attention. The periodic
  /// optimizer/recovery events only stay armed while this holds, so a
  /// simulation with no outstanding work drains its event queue (sim.run()
  /// terminates once the watched jobs finish).
  bool has_active_watches() const;
  void arm_optimizer();
  void arm_recovery();

  Deps deps_;
  SteeringOptions options_;
  std::map<std::string, Watch> watches_;  // task_id -> watch state
  std::map<std::string, bool> service_was_up_;
  std::vector<std::pair<exec::ExecutionService*, int>> exec_subscriptions_;
  int plan_subscription_ = 0;
  sim::EventId optimizer_event_ = sim::kInvalidEvent;
  sim::EventId recovery_event_ = sim::kInvalidEvent;
  bool stopped_ = false;

  std::map<int, NotificationCallback> subscribers_;
  int next_token_ = 1;
  std::vector<Notification> log_;
  SteeringStats stats_;
};

}  // namespace gae::steering
