#include "steering/service.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"

namespace gae::steering {

namespace {

std::string format_double(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += ',';
    out += p;
  }
  return out;
}

std::vector<std::string> split_commas(const std::string& in) {
  std::vector<std::string> out;
  std::string current;
  for (char c : in) {
    if (c == ',') {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

}  // namespace

SteeringService::SteeringService(Deps deps, SteeringOptions options)
    : deps_(std::move(deps)), options_(std::move(options)) {
  // Subscriber: concrete job plans flow in from the scheduler (§4.2.1).
  if (deps_.scheduler) {
    plan_subscription_ = deps_.scheduler->subscribe_plans(
        [this](const sphinx::JobDescription& job, const sphinx::ConcreteJobPlan& plan) {
          watch_plan(job, plan);
        });
  }
  for (auto& [site, service] : deps_.services) {
    service_was_up_[site] = service->is_up();
    const int token = service->subscribe(
        [this, site = site](const exec::TaskEvent& ev) { on_task_event(site, ev); });
    exec_subscriptions_.emplace_back(service, token);
  }
  if (deps_.sim) {
    if (options_.auto_steer) arm_optimizer();
    arm_recovery();
  }
}

SteeringService::~SteeringService() {
  stopped_ = true;
  if (deps_.sim) {
    if (optimizer_event_ != sim::kInvalidEvent) deps_.sim->cancel(optimizer_event_);
    if (recovery_event_ != sim::kInvalidEvent) deps_.sim->cancel(recovery_event_);
  }
  for (auto& [service, token] : exec_subscriptions_) service->unsubscribe(token);
  if (deps_.scheduler && plan_subscription_ != 0) {
    deps_.scheduler->unsubscribe_plans(plan_subscription_);
  }
}

// ---------------------------------------------------------------------------
// Subscriber
// ---------------------------------------------------------------------------

void SteeringService::watch_plan(const sphinx::JobDescription& job,
                                 const sphinx::ConcreteJobPlan& plan) {
  std::map<std::string, std::string> placed_at;
  for (const auto& p : plan.placements) placed_at[p.task_id] = p.site;

  for (const auto& dag_task : job.tasks) {
    Watch watch;
    watch.job_id = plan.job_id;
    watch.owner = job.owner.empty() ? dag_task.spec.owner : job.owner;
    watch.spec = dag_task.spec;
    watch.spec.job_id = plan.job_id;

    JournalRecord rec;
    rec.kind = "watch";
    rec.fields["task"] = dag_task.spec.id;
    rec.fields["job"] = plan.job_id;
    rec.fields["owner"] = watch.owner;
    rec.fields["site"] = placed_at.count(dag_task.spec.id)
                             ? placed_at[dag_task.spec.id]
                             : std::string();
    rec.fields["executable"] = dag_task.spec.executable;
    rec.fields["work"] = format_double(dag_task.spec.work_seconds);
    rec.fields["priority"] = std::to_string(dag_task.spec.priority);
    rec.fields["checkpointable"] = dag_task.spec.checkpointable ? "1" : "0";
    rec.fields["output_bytes"] = std::to_string(dag_task.spec.output_bytes);
    if (!dag_task.spec.input_files.empty()) {
      rec.fields["inputs"] = join(dag_task.spec.input_files);
    }
    for (const auto& [key, value] : dag_task.spec.attributes) {
      rec.fields["attr." + key] = value;
    }
    journal_append(std::move(rec));

    watches_[dag_task.spec.id] = std::move(watch);
  }
  GAE_LOG(Debug) << "steering now watching job " << plan.job_id << " ("
                 << job.tasks.size() << " tasks)";
  // (Re)arm the periodic passes now that there is work to watch.
  if (optimizer_event_ == sim::kInvalidEvent) arm_optimizer();
  if (recovery_event_ == sim::kInvalidEvent) arm_recovery();
}

// ---------------------------------------------------------------------------
// Session Manager
// ---------------------------------------------------------------------------

Status SteeringService::authorize(const std::string& token,
                                  const std::string& owner) const {
  if (!deps_.auth) return Status::ok();  // trusted in-process deployment
  auto user = deps_.auth->authenticate(token);
  if (!user.is_ok()) return user.status();
  if (user.value() != owner && user.value() != "admin") {
    return permission_denied_error("user " + user.value() + " may not steer jobs of " +
                                   owner);
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Command Processor
// ---------------------------------------------------------------------------

namespace {
/// Looks up the execution service currently hosting a task.
template <typename Map>
Result<typename Map::mapped_type> service_for(
    const Map& services, const sphinx::SphinxScheduler* scheduler,
    const std::string& task_id) {
  if (!scheduler) return gae::failed_precondition_error("no scheduler configured");
  auto site = scheduler->task_site(task_id);
  if (!site.is_ok()) return site.status();
  auto it = services.find(site.value());
  if (it == services.end()) {
    return gae::not_found_error("no execution service for site " + site.value());
  }
  return it->second;
}
}  // namespace

Status SteeringService::kill(const std::string& token, const std::string& task_id) {
  auto watch = watches_.find(task_id);
  if (watch == watches_.end()) return not_found_error("task not steered: " + task_id);
  const Status auth = authorize(token, watch->second.owner);
  if (!auth.is_ok()) return auth;
  auto service = service_for(deps_.services, deps_.scheduler, task_id);
  if (!service.is_ok()) return service.status();
  const Status s = service.value()->kill(task_id, "killed via steering service");
  if (s.is_ok()) {
    watch->second.done = true;
    JournalRecord rec;
    rec.kind = "done";
    rec.fields["task"] = task_id;
    rec.fields["outcome"] = "killed";
    journal_append(std::move(rec));
  }
  return s;
}

Status SteeringService::pause(const std::string& token, const std::string& task_id) {
  auto watch = watches_.find(task_id);
  if (watch == watches_.end()) return not_found_error("task not steered: " + task_id);
  const Status auth = authorize(token, watch->second.owner);
  if (!auth.is_ok()) return auth;
  auto service = service_for(deps_.services, deps_.scheduler, task_id);
  if (!service.is_ok()) return service.status();
  return service.value()->suspend(task_id);
}

Status SteeringService::resume(const std::string& token, const std::string& task_id) {
  auto watch = watches_.find(task_id);
  if (watch == watches_.end()) return not_found_error("task not steered: " + task_id);
  const Status auth = authorize(token, watch->second.owner);
  if (!auth.is_ok()) return auth;
  auto service = service_for(deps_.services, deps_.scheduler, task_id);
  if (!service.is_ok()) return service.status();
  return service.value()->resume(task_id);
}

Status SteeringService::change_priority(const std::string& token,
                                        const std::string& task_id, int priority) {
  auto watch = watches_.find(task_id);
  if (watch == watches_.end()) return not_found_error("task not steered: " + task_id);
  const Status auth = authorize(token, watch->second.owner);
  if (!auth.is_ok()) return auth;
  auto service = service_for(deps_.services, deps_.scheduler, task_id);
  if (!service.is_ok()) return service.status();
  return service.value()->set_priority(task_id, priority);
}

Result<sphinx::SitePlacement> SteeringService::move(const std::string& token,
                                                    const std::string& task_id,
                                                    const std::string& to_site) {
  auto watch = watches_.find(task_id);
  if (watch == watches_.end()) return not_found_error("task not steered: " + task_id);
  const Status auth = authorize(token, watch->second.owner);
  if (!auth.is_ok()) return auth;
  return do_move(watch->second, task_id, to_site, /*automatic=*/false);
}

Result<sphinx::SitePlacement> SteeringService::restart(const std::string& token,
                                                       const std::string& task_id) {
  auto watch = watches_.find(task_id);
  if (watch == watches_.end()) return not_found_error("task not steered: " + task_id);
  const Status auth = authorize(token, watch->second.owner);
  if (!auth.is_ok()) return auth;
  if (!deps_.scheduler) return failed_precondition_error("no scheduler configured");

  // Only terminal tasks can be restarted; check the last known state.
  if (deps_.jobmon) {
    auto report = deps_.jobmon->info(task_id);
    if (report.is_ok() && !exec::is_terminal(report.value().info.state)) {
      return failed_precondition_error("task is still active: " + task_id);
    }
  }
  Watch& w = watch->second;
  const double carried = w.spec.checkpointable ? w.last_cpu_seconds : 0.0;
  auto placement = deps_.scheduler->reallocate(task_id, {}, carried);
  if (!placement.is_ok()) return placement;
  w.done = false;
  w.failed = false;
  w.first_running_seen = kSimTimeNever;
  w.last_checked = kSimTimeNever;
  w.last_cpu_seconds = carried;
  // Re-arm the periodic passes: the watch is active again.
  if (optimizer_event_ == sim::kInvalidEvent) arm_optimizer();
  if (recovery_event_ == sim::kInvalidEvent) arm_recovery();

  JournalRecord rec;
  rec.kind = "restart";
  rec.fields["task"] = task_id;
  rec.fields["site"] = placement.value().site;
  rec.fields["carried"] = format_double(carried);
  journal_append(std::move(rec));

  Notification n;
  n.time = deps_.sim ? deps_.sim->now() : 0;
  n.kind = "restarted";
  n.job_id = w.job_id;
  n.task_id = task_id;
  n.detail = "resubmitted to " + placement.value().site;
  notify(std::move(n));
  return placement;
}

Result<jobmon::JobMonitorReport> SteeringService::job_info(
    const std::string& token, const std::string& task_id) const {
  auto watch = watches_.find(task_id);
  if (watch == watches_.end()) return not_found_error("task not steered: " + task_id);
  const Status auth = authorize(token, watch->second.owner);
  if (!auth.is_ok()) return auth;
  if (!deps_.jobmon) return failed_precondition_error("no job monitoring service");
  return deps_.jobmon->info(task_id);
}

Result<std::vector<sphinx::SiteScore>> SteeringService::advise(
    const std::string& token, const std::string& task_id) const {
  auto watch = watches_.find(task_id);
  if (watch == watches_.end()) return not_found_error("task not steered: " + task_id);
  const Status auth = authorize(token, watch->second.owner);
  if (!auth.is_ok()) return auth;
  if (!deps_.scheduler) return failed_precondition_error("no scheduler configured");
  return deps_.scheduler->rank_sites(watch->second.spec);
}

// ---------------------------------------------------------------------------
// Move machinery
// ---------------------------------------------------------------------------

Result<sphinx::SitePlacement> SteeringService::do_move(Watch& watch,
                                                       const std::string& task_id,
                                                       const std::string& to_site,
                                                       bool automatic) {
  if (!deps_.scheduler) return failed_precondition_error("no scheduler configured");
  auto current = deps_.scheduler->task_site(task_id);
  if (!current.is_ok()) return current.status();
  if (to_site == current.value()) {
    return invalid_argument_error("task already at site " + to_site);
  }

  // Carry checkpointed progress when possible.
  double carried = 0.0;
  auto svc_it = deps_.services.find(current.value());
  exec::ExecutionService* origin =
      svc_it == deps_.services.end() ? nullptr : svc_it->second;
  if (watch.spec.checkpointable) {
    if (origin && origin->is_up()) {
      carried = origin->checkpoint(task_id).value_or(0.0);
    } else {
      carried = watch.last_cpu_seconds;  // last progress known to monitoring
    }
  }

  // Stop the original unless running it out is wanted (fig. 7 testing mode).
  if (!options_.keep_original_on_move && origin && origin->is_up()) {
    origin->kill(task_id, "moved to another site by steering service");
  }

  auto placement = to_site.empty()
                       ? deps_.scheduler->reallocate(task_id, {current.value()}, carried)
                       : deps_.scheduler->place(task_id, to_site, carried);
  if (!placement.is_ok()) return placement;

  ++watch.moves;
  watch.done = false;
  watch.failed = false;
  watch.last_cpu_seconds = carried;
  watch.last_checked = kSimTimeNever;
  watch.first_running_seen = kSimTimeNever;
  if (automatic) {
    ++stats_.auto_moves;
  } else {
    ++stats_.manual_moves;
  }

  JournalRecord rec;
  rec.kind = "move";
  rec.fields["task"] = task_id;
  rec.fields["from"] = current.value();
  rec.fields["to"] = placement.value().site;
  rec.fields["carried"] = format_double(carried);
  rec.fields["automatic"] = automatic ? "1" : "0";
  journal_append(std::move(rec));

  Notification n;
  n.time = deps_.sim ? deps_.sim->now() : 0;
  n.kind = "moved";
  n.job_id = watch.job_id;
  n.task_id = task_id;
  n.detail = current.value() + " -> " + placement.value().site +
             (automatic ? " (optimizer)" : " (user)") +
             (carried > 0 ? ", checkpointed" : "");
  notify(std::move(n));
  return placement;
}

std::string SteeringService::pick_target_site(const Watch& watch,
                                              const std::string& current_site,
                                              double remaining_at_current_seconds) const {
  if (options_.optimize_for == "cheap" && deps_.quota) {
    std::vector<std::string> candidates;
    for (const auto& [site, service] : deps_.services) {
      if (site != current_site && service->is_up()) candidates.push_back(site);
    }
    auto cheapest = deps_.quota->cheapest_site(candidates);
    if (!cheapest.is_ok()) return "";
    const double current_rate = deps_.quota->site_rate(current_site).value_or(1e18);
    const double target_rate = deps_.quota->site_rate(cheapest.value()).value_or(1e18);
    return target_rate < current_rate ? cheapest.value() : "";
  }

  // "fast": expected completion at the best alternative site, including the
  // restart penalty for non-checkpointable tasks.
  auto ranked = deps_.scheduler->rank_sites(watch.spec, {current_site});
  if (!ranked.is_ok() || ranked.value().empty()) return "";
  const sphinx::SiteScore& best = ranked.value().front();
  double runtime_there = best.est_runtime_seconds;
  if (watch.spec.checkpointable) {
    runtime_there = std::max(0.0, runtime_there - watch.last_cpu_seconds);
  }
  const double cost_there =
      runtime_there + best.est_queue_seconds + best.est_transfer_seconds;
  if (cost_there + options_.min_benefit_seconds < remaining_at_current_seconds) {
    return best.site;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

void SteeringService::optimizer_tick() {
  if (!deps_.jobmon || !deps_.scheduler || !deps_.sim) return;
  const SimTime now = deps_.sim->now();

  for (auto& [task_id, watch] : watches_) {
    if (watch.done || watch.failed) continue;
    auto report = deps_.jobmon->info(task_id);
    if (!report.is_ok()) continue;
    const jobmon::JobMonitorReport& r = report.value();
    if (r.info.state != exec::TaskState::kRunning) {
      // Not accruing progress; reset the rate window.
      watch.last_cpu_seconds = r.info.cpu_seconds_used;
      watch.last_checked = kSimTimeNever;
      continue;
    }
    if (watch.first_running_seen == kSimTimeNever) watch.first_running_seen = now;
    if (watch.last_checked == kSimTimeNever) {
      watch.last_checked = now;
      watch.last_cpu_seconds = r.info.cpu_seconds_used;
      continue;
    }
    const double dt = to_seconds(now - watch.last_checked);
    if (dt <= 0) continue;
    const double rate = (r.info.cpu_seconds_used - watch.last_cpu_seconds) / dt;
    watch.last_cpu_seconds = r.info.cpu_seconds_used;
    watch.last_checked = now;

    if (to_seconds(now - watch.first_running_seen) < options_.min_observation_seconds) {
      continue;
    }
    if (rate >= options_.slow_rate_threshold) continue;
    if (watch.moves >= options_.max_moves_per_task) continue;

    auto current = deps_.scheduler->task_site(task_id);
    if (!current.is_ok()) continue;

    // Expected time to finish if the task stays put, from the monitoring
    // view (estimate-based remaining work over the observed rate).
    double remaining_est = r.remaining_seconds;
    if (remaining_est <= 0) remaining_est = r.estimated_runtime_seconds;
    const double remaining_at_current = remaining_est / std::max(rate, 0.05);

    const std::string target =
        pick_target_site(watch, current.value(), remaining_at_current);
    if (target.empty()) continue;

    GAE_LOG(Info) << "steering optimizer: " << task_id << " slow at " << current.value()
                  << " (rate " << rate << "), moving to " << target;
    do_move(watch, task_id, target, /*automatic=*/true);
  }
}

// ---------------------------------------------------------------------------
// Backup & Recovery
// ---------------------------------------------------------------------------

void SteeringService::recovery_tick() {
  // Detect execution-service transitions.
  for (const auto& [site, service] : deps_.services) {
    const bool up = service->is_up();
    bool& was_up = service_was_up_[site];
    if (was_up && !up) {
      Notification n;
      n.time = deps_.sim ? deps_.sim->now() : 0;
      n.kind = "service_failure";
      n.detail = site;
      notify(std::move(n));
    }
    was_up = up;
  }

  if (!deps_.scheduler) return;
  for (auto& [task_id, watch] : watches_) {
    if (watch.done || !watch.failed) continue;
    auto site = deps_.scheduler->task_site(task_id);
    if (!site.is_ok()) {
      watch.done = true;
      continue;
    }
    auto svc_it = deps_.services.find(site.value());
    exec::ExecutionService* service =
        svc_it == deps_.services.end() ? nullptr : svc_it->second;

    if (service && !service->is_up()) {
      // Execution service failed: ask Sphinx for a new site and resubmit
      // (paper §4.2.4).
      const double carried = watch.spec.checkpointable ? watch.last_cpu_seconds : 0.0;
      auto placement = deps_.scheduler->reallocate(task_id, {site.value()}, carried);
      if (placement.is_ok()) {
        watch.failed = false;
        watch.first_running_seen = kSimTimeNever;
        watch.last_checked = kSimTimeNever;
        watch.last_cpu_seconds = carried;
        ++stats_.recoveries;

        JournalRecord rec;
        rec.kind = "recover";
        rec.fields["task"] = task_id;
        rec.fields["from"] = site.value();
        rec.fields["to"] = placement.value().site;
        rec.fields["carried"] = format_double(carried);
        rec.fields["reason"] = "service_failure";
        journal_append(std::move(rec));

        Notification n;
        n.time = deps_.sim ? deps_.sim->now() : 0;
        n.kind = "recovered";
        n.job_id = watch.job_id;
        n.task_id = task_id;
        n.detail = site.value() + " -> " + placement.value().site;
        notify(std::move(n));
      }
    } else if (watch.resubmits < options_.max_auto_resubmits) {
      // Task-level failure with a live service (e.g. staging aborted by a
      // link failure). When allowed, resubmit through Sphinx — no site is
      // excluded, the same site may win again once the fault clears.
      const double carried = watch.spec.checkpointable ? watch.last_cpu_seconds : 0.0;
      auto placement = deps_.scheduler->reallocate(task_id, {}, carried);
      if (placement.is_ok()) {
        ++watch.resubmits;
        watch.failed = false;
        watch.first_running_seen = kSimTimeNever;
        watch.last_checked = kSimTimeNever;
        watch.last_cpu_seconds = carried;
        ++stats_.resubmits;

        JournalRecord rec;
        rec.kind = "recover";
        rec.fields["task"] = task_id;
        rec.fields["from"] = site.value();
        rec.fields["to"] = placement.value().site;
        rec.fields["carried"] = format_double(carried);
        rec.fields["reason"] = "task_failure";
        journal_append(std::move(rec));

        Notification n;
        n.time = deps_.sim ? deps_.sim->now() : 0;
        n.kind = "recovered";
        n.job_id = watch.job_id;
        n.task_id = task_id;
        n.detail = "resubmitted (" + std::to_string(watch.resubmits) + "/" +
                   std::to_string(options_.max_auto_resubmits) + ") to " +
                   placement.value().site;
        notify(std::move(n));
      }
    } else {
      // Task-level failure with a live service: already reported; the user
      // (or a manual resubmission) decides what happens next.
      watch.done = true;
      JournalRecord rec;
      rec.kind = "done";
      rec.fields["task"] = task_id;
      rec.fields["outcome"] = "failed";
      journal_append(std::move(rec));
    }
  }
}

// ---------------------------------------------------------------------------
// Events & notifications
// ---------------------------------------------------------------------------

void SteeringService::on_task_event(const std::string& site, const exec::TaskEvent& ev) {
  auto it = watches_.find(ev.task_id);
  if (it == watches_.end()) return;
  Watch& watch = it->second;

  // Ignore stale instances left running at a previous site after a move.
  if (deps_.scheduler) {
    auto registered = deps_.scheduler->task_site(ev.task_id);
    if (registered.is_ok() && registered.value() != site) return;
  }

  if (ev.new_state == exec::TaskState::kCompleted) {
    watch.done = true;
    ++stats_.completions;
    JournalRecord rec;
    rec.kind = "done";
    rec.fields["task"] = ev.task_id;
    rec.fields["outcome"] = "completed";
    journal_append(std::move(rec));
    Notification n;
    n.time = ev.time;
    n.kind = "completed";
    n.job_id = watch.job_id;
    n.task_id = ev.task_id;
    n.detail = "completed at " + site;
    // "For completed jobs ... gets the execution state from the execution
    // service. This execution state is made available for download" (§4.2.4).
    auto svc_it = deps_.services.find(site);
    if (svc_it != deps_.services.end()) {
      n.output_files = svc_it->second->local_output_files(ev.task_id);
    }
    notify(std::move(n));
  } else if (ev.new_state == exec::TaskState::kFailed) {
    watch.failed = true;
    ++stats_.failures;
    Notification n;
    n.time = ev.time;
    n.kind = "failed";
    n.job_id = watch.job_id;
    n.task_id = ev.task_id;
    n.detail = ev.detail;
    // "It then contacts the execution service to get all the local files
    // that were produced by the failed job" (§4.2.4).
    auto svc_it = deps_.services.find(site);
    if (svc_it != deps_.services.end()) {
      n.output_files = svc_it->second->local_output_files(ev.task_id);
    }
    notify(std::move(n));
  }
}

void SteeringService::notify(Notification n) {
  log_.push_back(n);
  publish_stats();
  for (const auto& [_, cb] : subscribers_) cb(n);
}

void SteeringService::journal_append(JournalRecord rec) {
  if (!deps_.journal) return;
  rec.fields["t"] = std::to_string(deps_.sim ? deps_.sim->now() : 0);
  const Status s = deps_.journal->append(rec.to_line());
  if (s.is_ok()) {
    ++stats_.journal_appends;
  } else {
    // A journal outage must not take steering down with it; recovery after a
    // crash just gets older state.
    GAE_LOG(Warn) << "recovery journal append failed: " << s.message();
  }
}

void SteeringService::publish_stats() {
  if (!deps_.monitoring) return;
  const SimTime now = deps_.sim ? deps_.sim->now() : 0;
  deps_.monitoring->publish("steering", "auto_moves", now,
                            static_cast<double>(stats_.auto_moves));
  deps_.monitoring->publish("steering", "manual_moves", now,
                            static_cast<double>(stats_.manual_moves));
  deps_.monitoring->publish("steering", "recoveries", now,
                            static_cast<double>(stats_.recoveries));
  deps_.monitoring->publish("steering", "resubmits", now,
                            static_cast<double>(stats_.resubmits));
  deps_.monitoring->publish("steering", "completions", now,
                            static_cast<double>(stats_.completions));
  deps_.monitoring->publish("steering", "failures", now,
                            static_cast<double>(stats_.failures));
  deps_.monitoring->publish("steering", "journal_appends", now,
                            static_cast<double>(stats_.journal_appends));
}

// ---------------------------------------------------------------------------
// Journal replay
// ---------------------------------------------------------------------------

Status SteeringService::restore_from_journal(const std::vector<JournalRecord>& records) {
  struct Replayed {
    Watch watch;
    bool done = false;
  };
  std::map<std::string, Replayed> replayed;

  for (const JournalRecord& rec : records) {
    ++stats_.journal_replayed;
    const std::string task = rec.field("task");
    if (task.empty()) continue;

    if (rec.kind == "watch") {
      Replayed r;
      r.watch.job_id = rec.field("job");
      r.watch.owner = rec.field("owner");
      exec::TaskSpec& spec = r.watch.spec;
      spec.id = task;
      spec.job_id = r.watch.job_id;
      spec.owner = r.watch.owner;
      spec.executable = rec.field("executable");
      spec.work_seconds = rec.field_double("work");
      spec.priority = static_cast<int>(rec.field_double("priority"));
      spec.checkpointable = rec.field("checkpointable") == "1";
      spec.output_bytes =
          static_cast<std::uint64_t>(rec.field_double("output_bytes"));
      spec.input_files = split_commas(rec.field("inputs"));
      for (const auto& [key, value] : rec.fields) {
        if (key.rfind("attr.", 0) == 0) spec.attributes[key.substr(5)] = value;
      }
      replayed[task] = std::move(r);
    } else if (rec.kind == "move" || rec.kind == "recover" || rec.kind == "restart") {
      auto it = replayed.find(task);
      if (it == replayed.end()) continue;  // watch record lost; skip
      it->second.done = false;
      it->second.watch.failed = false;
      it->second.watch.last_cpu_seconds = rec.field_double("carried");
      if (rec.kind == "move") ++it->second.watch.moves;
      if (rec.kind == "recover" && rec.field("reason") == "task_failure") {
        ++it->second.watch.resubmits;
      }
    } else if (rec.kind == "done") {
      auto it = replayed.find(task);
      if (it != replayed.end()) it->second.done = true;
    }
    // Unknown kinds from a newer writer are skipped, not fatal.
  }

  for (auto& [task_id, r] : replayed) {
    if (r.done) continue;
    if (watches_.count(task_id)) continue;  // already watching; replay is idempotent
    // Timers restart from scratch — the optimizer re-observes before judging.
    r.watch.first_running_seen = kSimTimeNever;
    r.watch.last_checked = kSimTimeNever;
    watches_[task_id] = std::move(r.watch);
    ++stats_.journal_adopted;
  }

  if (optimizer_event_ == sim::kInvalidEvent) arm_optimizer();
  if (recovery_event_ == sim::kInvalidEvent) arm_recovery();
  publish_stats();
  return Status::ok();
}

Status SteeringService::restore_from_journal(const std::vector<std::string>& lines) {
  auto records = parse_journal(lines, /*tolerate_trailing_garbage=*/true);
  if (!records.is_ok()) return records.status();
  return restore_from_journal(records.value());
}

std::vector<Notification> SteeringService::notifications_since(std::size_t after,
                                                               std::size_t max) const {
  std::vector<Notification> out;
  for (std::size_t i = after; i < log_.size() && out.size() < max; ++i) {
    out.push_back(log_[i]);
  }
  return out;
}

int SteeringService::subscribe(NotificationCallback cb) {
  const int token = next_token_++;
  subscribers_[token] = std::move(cb);
  return token;
}

void SteeringService::unsubscribe(int token) { subscribers_.erase(token); }

bool SteeringService::has_active_watches() const {
  for (const auto& [_, watch] : watches_) {
    if (!watch.done) return true;
  }
  return false;
}

void SteeringService::arm_optimizer() {
  if (!deps_.sim || !options_.auto_steer || !has_active_watches()) {
    optimizer_event_ = sim::kInvalidEvent;
    return;
  }
  optimizer_event_ = deps_.sim->schedule_after(
      from_seconds(options_.optimizer_interval_seconds), [this] {
        if (stopped_) return;
        optimizer_tick();
        arm_optimizer();
      });
}

void SteeringService::arm_recovery() {
  if (!deps_.sim || !has_active_watches()) {
    recovery_event_ = sim::kInvalidEvent;
    return;
  }
  recovery_event_ = deps_.sim->schedule_after(
      from_seconds(options_.recovery_interval_seconds), [this] {
        if (stopped_) return;
        recovery_tick();
        arm_recovery();
      });
}

}  // namespace gae::steering
