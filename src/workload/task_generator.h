// Grid task workload generator: turns the application population into
// executable TaskSpecs for the simulated execution services, with the
// attribute set the runtime estimator matches on.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/job.h"
#include "sphinx/scheduler.h"
#include "workload/paragon_trace.h"

namespace gae::workload {

struct TaskGenOptions {
  std::string owner_prefix = "user";
  std::string job_id = "job-gen";
  int priority_min = 0;
  int priority_max = 5;
  double checkpointable_rate = 0.3;
  /// Probability a task carries an input file dependency.
  double input_file_rate = 0.4;
  /// Input/output sizes (bytes), lognormal around these medians.
  double median_input_bytes = 200e6;
  double median_output_bytes = 50e6;
};

/// Builds one TaskSpec from an application draw. The estimator-visible
/// attributes are {login, executable, queue, partition, nodes, jobtype};
/// ground-truth work_seconds comes from the population model.
exec::TaskSpec make_task(const ApplicationPopulation& population, Rng& rng,
                         const TaskGenOptions& options, const std::string& task_id);

/// Batch convenience: n tasks with ids "<prefix>-0" .. "<prefix>-(n-1)".
std::vector<exec::TaskSpec> make_tasks(const ApplicationPopulation& population, Rng& rng,
                                       const TaskGenOptions& options,
                                       const std::string& id_prefix, std::size_t n);

/// The attribute map the estimators see for an accounting record (used when
/// loading history from a Paragon-style trace).
std::map<std::string, std::string> record_attributes(const AccountingRecord& rec);

struct DagGenOptions {
  /// Levels in the DAG (>= 1). Level 0 is the root stage.
  int levels = 3;
  /// Tasks per level, min/max (uniform).
  int min_width = 1;
  int max_width = 4;
  /// Probability that a task depends on any given task one level up
  /// (at least one dependency per non-root task is guaranteed).
  double dep_rate = 0.5;
  TaskGenOptions task_options;
};

/// Builds a random layered DAG job: tasks in level k depend only on tasks in
/// level k-1, so the result is always acyclic.
sphinx::JobDescription make_dag_job(const ApplicationPopulation& population, Rng& rng,
                                    const DagGenOptions& options, const std::string& job_id);

}  // namespace gae::workload
