#include "workload/paragon_trace.h"

#include <algorithm>
#include <cmath>

namespace gae::workload {

namespace {

const char* kPartitions[] = {"compute", "io", "service"};
const char* kQueues[] = {"q16s", "q64l", "standard", "low", "express"};

}  // namespace

ApplicationPopulation ApplicationPopulation::make(Rng& rng,
                                                  const PopulationOptions& options) {
  ApplicationPopulation pop;
  pop.apps_.reserve(static_cast<std::size_t>(options.num_applications));
  for (int i = 0; i < options.num_applications; ++i) {
    Application app;
    const int login_idx = static_cast<int>(rng.uniform_int(0, options.num_logins - 1));
    app.login = "user" + std::to_string(login_idx);
    app.account = "acct" + std::to_string(login_idx % std::max(1, options.num_accounts));
    app.executable = "app" + std::to_string(i);
    app.partition = kPartitions[rng.uniform_int(0, 2)];
    app.queue = kQueues[rng.uniform_int(0, 4)];
    app.ref_nodes = static_cast<int>(std::max<std::int64_t>(1, 1 << rng.uniform_int(0, 6)));
    app.interactive = rng.bernoulli(0.2);
    app.base_runtime = rng.lognormal(options.base_mu, options.base_sigma);
    // Interactive jobs in the Paragon log were short; clamp them.
    if (app.interactive) app.base_runtime = std::min(app.base_runtime, 900.0);
    app.sigma_within = options.sigma_within * rng.uniform(0.6, 1.4);
    app.nodes_alpha = rng.uniform(0.5, 0.95);
    app.overrequest = rng.uniform(1.2, 4.0);
    pop.apps_.push_back(std::move(app));
  }
  return pop;
}

const Application& ApplicationPopulation::pick(Rng& rng) const {
  return rng.pick(apps_);
}

double ApplicationPopulation::sample_runtime(const Application& app, int nodes,
                                             Rng& rng) const {
  const double scale =
      std::pow(static_cast<double>(app.ref_nodes) / std::max(1, nodes), app.nodes_alpha);
  const double jitter = rng.lognormal(0.0, app.sigma_within);
  return std::max(1.0, app.base_runtime * scale * jitter);
}

int ApplicationPopulation::sample_nodes(const Application& app, Rng& rng) const {
  // Most runs reuse the typical node count; some scale up/down by 2x.
  const double u = rng.uniform(0.0, 1.0);
  int nodes = app.ref_nodes;
  if (u < 0.15) nodes = std::max(1, app.ref_nodes / 2);
  else if (u > 0.85) nodes = app.ref_nodes * 2;
  return nodes;
}

std::vector<AccountingRecord> generate_trace(const ApplicationPopulation& population,
                                             Rng& rng, const TraceOptions& options) {
  std::vector<AccountingRecord> trace;
  trace.reserve(options.num_records);
  SimTime submit = 0;
  for (std::size_t i = 0; i < options.num_records; ++i) {
    const Application& app = population.pick(rng);
    AccountingRecord rec;
    rec.account = app.account;
    rec.login = app.login;
    rec.executable = app.executable;
    rec.partition = app.partition;
    rec.queue = app.queue;
    rec.nodes = population.sample_nodes(app, rng);
    rec.interactive = app.interactive;
    rec.successful = !rng.bernoulli(options.failure_rate);

    submit += from_seconds(rng.exponential(options.mean_interarrival));
    rec.submit_time = submit;
    rec.start_time = submit + from_seconds(rng.exponential(options.mean_queue_wait));

    double runtime = population.sample_runtime(app, rec.nodes, rng);
    // Unsuccessful jobs die partway through.
    if (!rec.successful) runtime *= rng.uniform(0.05, 0.8);
    rec.complete_time = rec.start_time + from_seconds(runtime);

    rec.requested_cpu_hours =
        runtime / 3600.0 * rec.nodes * app.overrequest * rng.uniform(0.8, 1.2);
    rec.cpu_charge_rate = app.interactive ? 2.0 : 1.0;
    rec.idle_charge_rate = 0.1;
    trace.push_back(std::move(rec));
  }
  return trace;
}

}  // namespace gae::workload
