#include "workload/task_generator.h"

#include <cmath>

namespace gae::workload {

exec::TaskSpec make_task(const ApplicationPopulation& population, Rng& rng,
                         const TaskGenOptions& options, const std::string& task_id) {
  const Application& app = population.pick(rng);
  const int nodes = population.sample_nodes(app, rng);

  exec::TaskSpec spec;
  spec.id = task_id;
  spec.job_id = options.job_id;
  spec.owner = app.login;
  spec.executable = app.executable;
  spec.work_seconds = population.sample_runtime(app, nodes, rng);
  spec.priority = static_cast<int>(rng.uniform_int(options.priority_min, options.priority_max));
  spec.checkpointable = rng.bernoulli(options.checkpointable_rate);
  if (rng.bernoulli(options.input_file_rate)) {
    spec.input_files.push_back("dataset-" + app.executable + ".root");
  }
  spec.output_bytes = static_cast<std::uint64_t>(
      rng.lognormal(std::log(options.median_output_bytes), 0.8));

  spec.attributes["login"] = app.login;
  spec.attributes["executable"] = app.executable;
  spec.attributes["queue"] = app.queue;
  spec.attributes["partition"] = app.partition;
  spec.attributes["nodes"] = std::to_string(nodes);
  spec.attributes["jobtype"] = app.interactive ? "interactive" : "batch";
  spec.environment["GAE_USER"] = app.login;
  spec.environment["GAE_APP"] = app.executable;
  return spec;
}

std::vector<exec::TaskSpec> make_tasks(const ApplicationPopulation& population, Rng& rng,
                                       const TaskGenOptions& options,
                                       const std::string& id_prefix, std::size_t n) {
  std::vector<exec::TaskSpec> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(make_task(population, rng, options, id_prefix + "-" + std::to_string(i)));
  }
  return out;
}

sphinx::JobDescription make_dag_job(const ApplicationPopulation& population, Rng& rng,
                                    const DagGenOptions& options,
                                    const std::string& job_id) {
  sphinx::JobDescription job;
  job.id = job_id;
  job.owner = options.task_options.owner_prefix;

  TaskGenOptions topts = options.task_options;
  topts.job_id = job_id;

  std::vector<std::vector<std::string>> levels;
  int counter = 0;
  for (int level = 0; level < std::max(1, options.levels); ++level) {
    const auto width = static_cast<int>(
        rng.uniform_int(options.min_width, std::max(options.min_width, options.max_width)));
    std::vector<std::string> ids;
    for (int i = 0; i < width; ++i) {
      const std::string id = job_id + "-t" + std::to_string(counter++);
      sphinx::DagTask task;
      task.spec = make_task(population, rng, topts, id);
      if (level > 0) {
        for (const auto& parent : levels.back()) {
          if (rng.bernoulli(options.dep_rate)) task.depends_on.push_back(parent);
        }
        if (task.depends_on.empty()) {
          task.depends_on.push_back(rng.pick(levels.back()));
        }
      }
      job.tasks.push_back(std::move(task));
      ids.push_back(id);
    }
    levels.push_back(std::move(ids));
  }
  return job;
}

std::map<std::string, std::string> record_attributes(const AccountingRecord& rec) {
  return {
      {"login", rec.login},
      {"executable", rec.executable},
      {"queue", rec.queue},
      {"partition", rec.partition},
      {"nodes", std::to_string(rec.nodes)},
      {"jobtype", rec.interactive ? "interactive" : "batch"},
  };
}

}  // namespace gae::workload
