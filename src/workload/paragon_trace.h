// Synthetic SDSC-Paragon-style accounting trace.
//
// The paper's fig. 5 evaluates the runtime estimator on Allen Downey's 1995
// Paragon accounting data (account, login, partition, nodes, batch vs
// interactive, status, requested CPU hours, queue, charge rates,
// submit/start/complete times). That data is not available here, so this
// module synthesises a trace with the statistical property the estimator
// depends on — *tasks with similar characteristics have similar runtimes* —
// by drawing jobs from a population of recurring applications. Each
// application (a login + executable pairing bound to a queue/partition) has
// a heavy-tailed base runtime; individual runs jitter around it and scale
// with the node count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time_types.h"

namespace gae::workload {

/// One line of the accounting log (the fields the paper lists in §7).
struct AccountingRecord {
  std::string account;
  std::string login;
  std::string executable;   // application identity (not in the 1995 log, but
                            // implied by "similar tasks"; estimators may use it)
  std::string partition;
  std::string queue;
  int nodes = 1;
  bool interactive = false;
  bool successful = true;
  double requested_cpu_hours = 0.0;
  double cpu_charge_rate = 1.0;
  double idle_charge_rate = 0.1;
  SimTime submit_time = 0;
  SimTime start_time = 0;
  SimTime complete_time = 0;

  /// Actual wall runtime in seconds.
  double runtime_seconds() const { return to_seconds(complete_time - start_time); }
};

/// A recurring application in the population; ground truth for generators.
struct Application {
  std::string account;
  std::string login;
  std::string executable;
  std::string partition;
  std::string queue;
  int ref_nodes = 8;          // typical node count
  bool interactive = false;
  double base_runtime = 600;  // seconds at ref_nodes
  double sigma_within = 0.25; // lognormal jitter between runs of this app
  double nodes_alpha = 0.7;   // runtime ~ base * (ref_nodes/nodes)^alpha
  double overrequest = 2.0;   // requested cpu-hours inflation factor
};

struct PopulationOptions {
  int num_applications = 24;
  int num_logins = 12;
  int num_accounts = 6;
  /// Lognormal parameters of base runtimes across applications (seconds).
  double base_mu = 6.3;      // exp(6.3) ~ 545 s median
  double base_sigma = 1.1;   // heavy spread across applications
  /// Within-application run-to-run jitter (lognormal sigma).
  double sigma_within = 0.25;
};

/// The set of applications a site's users keep re-running.
class ApplicationPopulation {
 public:
  static ApplicationPopulation make(Rng& rng, const PopulationOptions& options);

  const std::vector<Application>& applications() const { return apps_; }
  const Application& pick(Rng& rng) const;

  /// Ground-truth runtime (seconds) of one run of `app` on `nodes` nodes.
  double sample_runtime(const Application& app, int nodes, Rng& rng) const;

  /// Node count for one run: ref_nodes +- small variation, >= 1.
  int sample_nodes(const Application& app, Rng& rng) const;

 private:
  std::vector<Application> apps_;
};

struct TraceOptions {
  std::size_t num_records = 120;
  /// Mean virtual seconds between submissions (Poisson arrivals).
  double mean_interarrival = 180.0;
  /// Mean queue wait in seconds (exponential).
  double mean_queue_wait = 120.0;
  /// Probability a job fails (status unsuccessful in the accounting log).
  double failure_rate = 0.05;
};

/// Generates an accounting trace from a population, submit-time ordered.
std::vector<AccountingRecord> generate_trace(const ApplicationPopulation& population,
                                             Rng& rng, const TraceOptions& options);

}  // namespace gae::workload
