#include "workload/trace_io.h"

#include <fstream>
#include <sstream>

namespace gae::workload {

namespace {

constexpr const char* kHeader =
    "account,login,executable,partition,queue,nodes,interactive,successful,"
    "requested_cpu_hours,cpu_charge_rate,idle_charge_rate,submit_s,start_s,complete_s";

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) out.push_back(field);
  // A trailing comma means one more empty field.
  if (!line.empty() && line.back() == ',') out.emplace_back();
  return out;
}

}  // namespace

std::string trace_to_csv(const std::vector<AccountingRecord>& trace) {
  std::ostringstream out;
  out << kHeader << '\n';
  out.precision(15);
  for (const auto& r : trace) {
    out << r.account << ',' << r.login << ',' << r.executable << ',' << r.partition
        << ',' << r.queue << ',' << r.nodes << ',' << (r.interactive ? 1 : 0) << ','
        << (r.successful ? 1 : 0) << ',' << r.requested_cpu_hours << ','
        << r.cpu_charge_rate << ',' << r.idle_charge_rate << ','
        << to_seconds(r.submit_time) << ',' << to_seconds(r.start_time) << ','
        << to_seconds(r.complete_time) << '\n';
  }
  return out.str();
}

Result<std::vector<AccountingRecord>> trace_from_csv(const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) return invalid_argument_error("empty trace file");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kHeader) return invalid_argument_error("unexpected trace header: " + line);

  std::vector<AccountingRecord> trace;
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    if (fields.size() != 14) {
      return invalid_argument_error("trace line " + std::to_string(lineno) + ": expected 14 fields, got " +
                                    std::to_string(fields.size()));
    }
    try {
      AccountingRecord r;
      r.account = fields[0];
      r.login = fields[1];
      r.executable = fields[2];
      r.partition = fields[3];
      r.queue = fields[4];
      r.nodes = std::stoi(fields[5]);
      r.interactive = fields[6] == "1";
      r.successful = fields[7] == "1";
      r.requested_cpu_hours = std::stod(fields[8]);
      r.cpu_charge_rate = std::stod(fields[9]);
      r.idle_charge_rate = std::stod(fields[10]);
      r.submit_time = from_seconds(std::stod(fields[11]));
      r.start_time = from_seconds(std::stod(fields[12]));
      r.complete_time = from_seconds(std::stod(fields[13]));
      trace.push_back(std::move(r));
    } catch (const std::exception& e) {
      return invalid_argument_error("trace line " + std::to_string(lineno) + ": " + e.what());
    }
  }
  return trace;
}

Status save_trace(const std::vector<AccountingRecord>& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return unavailable_error("cannot write trace file: " + path);
  out << trace_to_csv(trace);
  return out ? Status::ok() : unavailable_error("write failed: " + path);
}

Result<std::vector<AccountingRecord>> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return not_found_error("cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return trace_from_csv(buffer.str());
}

}  // namespace gae::workload
