// Accounting-trace serialisation: CSV in the spirit of the original SDSC
// accounting logs, so synthetic traces can be exported for inspection and a
// real trace (when someone has one) can be imported unchanged.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "workload/paragon_trace.h"

namespace gae::workload {

/// Header + one line per record. Times serialise as fractional seconds.
std::string trace_to_csv(const std::vector<AccountingRecord>& trace);

/// Parses CSV produced by trace_to_csv (header required, column order
/// fixed). INVALID_ARGUMENT on malformed input.
Result<std::vector<AccountingRecord>> trace_from_csv(const std::string& csv);

/// Convenience: writes/reads a trace file on disk.
Status save_trace(const std::vector<AccountingRecord>& trace, const std::string& path);
Result<std::vector<AccountingRecord>> load_trace(const std::string& path);

}  // namespace gae::workload
