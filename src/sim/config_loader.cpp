#include "sim/config_loader.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/rng.h"

namespace gae::sim {

namespace {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, delim)) out.push_back(item);
  return out;
}

Result<std::vector<double>> parse_numbers(const std::string& csv, std::size_t expected) {
  const auto parts = split(csv, ',');
  if (parts.size() != expected) {
    return invalid_argument_error("expected " + std::to_string(expected) +
                                  " comma-separated numbers, got '" + csv + "'");
  }
  std::vector<double> out;
  for (const auto& p : parts) {
    try {
      out.push_back(std::stod(p));
    } catch (...) {
      return invalid_argument_error("bad number '" + p + "' in '" + csv + "'");
    }
  }
  return out;
}

}  // namespace

Result<std::shared_ptr<LoadProfile>> load_profile_from_spec(const std::string& spec) {
  if (spec.empty() || spec == "none") {
    return std::shared_ptr<LoadProfile>(std::make_shared<ConstantLoad>(0.0));
  }
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string args = colon == std::string::npos ? "" : spec.substr(colon + 1);

  if (kind == "constant") {
    auto nums = parse_numbers(args, 1);
    if (!nums.is_ok()) return nums.status();
    return std::shared_ptr<LoadProfile>(std::make_shared<ConstantLoad>(nums.value()[0]));
  }
  if (kind == "periodic") {
    auto nums = parse_numbers(args, 4);
    if (!nums.is_ok()) return nums.status();
    const auto& v = nums.value();
    if (v[2] <= 0 || v[3] <= 0) {
      return invalid_argument_error("periodic load durations must be positive: " + spec);
    }
    return std::shared_ptr<LoadProfile>(std::make_shared<PeriodicLoad>(
        v[0], v[1], from_seconds(v[2]), from_seconds(v[3])));
  }
  if (kind == "walk") {
    auto nums = parse_numbers(args, 5);
    if (!nums.is_ok()) return nums.status();
    const auto& v = nums.value();
    if (v[2] <= 0 || v[3] <= 0) {
      return invalid_argument_error("walk segment/horizon must be positive: " + spec);
    }
    return std::shared_ptr<LoadProfile>(
        make_random_walk_load(Rng(static_cast<std::uint64_t>(v[4])), v[0], v[1],
                              from_seconds(v[2]), from_seconds(v[3])));
  }
  return invalid_argument_error("unknown load profile kind: " + spec);
}

Status grid_from_config(const Config& config, Grid& grid) {
  Link default_link;
  if (config.has("defaults.bandwidth_mbps")) {
    default_link.bandwidth_bytes_per_sec =
        config.get_double("defaults.bandwidth_mbps", 100) * 1e6 / 8.0;
  }
  if (config.has("defaults.latency_ms")) {
    default_link.latency = from_millis(config.get_double("defaults.latency_ms", 0));
  }
  grid.set_default_link(default_link);

  for (const auto& [key, value] : config.values()) {
    // --- Sites: "site:NAME.node.K" and "site:NAME.storage.FILE".
    if (key.rfind("site:", 0) == 0) {
      const auto dot = key.find('.');
      if (dot == std::string::npos) {
        return invalid_argument_error("malformed site key: " + key);
      }
      const std::string site_name = key.substr(5, dot - 5);
      const std::string attr = key.substr(dot + 1);
      Site& site = grid.add_site(site_name);

      if (attr.rfind("node.", 0) == 0) {
        double speed = 1.0;
        std::string load_spec;
        std::istringstream tokens(value);
        std::string token;
        while (tokens >> token) {
          const auto eq = token.find('=');
          if (eq == std::string::npos) {
            return invalid_argument_error("node attribute needs key=value: " + value);
          }
          const std::string k = token.substr(0, eq);
          const std::string v = token.substr(eq + 1);
          if (k == "speed") {
            try {
              speed = std::stod(v);
            } catch (...) {
              return invalid_argument_error("bad speed '" + v + "' in " + key);
            }
          } else if (k == "load") {
            load_spec = v;
          } else {
            return invalid_argument_error("unknown node attribute '" + k + "' in " + key);
          }
        }
        auto profile = load_profile_from_spec(load_spec);
        if (!profile.is_ok()) return profile.status();
        if (speed <= 0) return invalid_argument_error("node speed must be > 0 in " + key);
        site.add_node(site_name + "-" + attr.substr(5), speed, profile.value());
      } else if (attr.rfind("storage.", 0) == 0) {
        const std::string file = attr.substr(8);
        try {
          site.store_file(file, static_cast<std::uint64_t>(std::stoull(value)));
        } catch (...) {
          return invalid_argument_error("bad storage size '" + value + "' for " + key);
        }
      } else {
        return invalid_argument_error("unknown site attribute: " + key);
      }
      continue;
    }

    // --- Links: "link:A->B.bandwidth_mbps" / ".latency_ms".
    if (key.rfind("link:", 0) == 0) {
      const auto dot = key.find('.');
      if (dot == std::string::npos) return invalid_argument_error("malformed link key: " + key);
      const std::string pair = key.substr(5, dot - 5);
      const std::string attr = key.substr(dot + 1);
      const auto arrow = pair.find("->");
      if (arrow == std::string::npos) {
        return invalid_argument_error("link name must be A->B: " + key);
      }
      const std::string a = pair.substr(0, arrow);
      const std::string b = pair.substr(arrow + 2);
      // Ensure both endpoints exist even if declared storage/node-less.
      grid.add_site(a);
      grid.add_site(b);
      Link link = grid.link(a, b);
      try {
        if (attr == "bandwidth_mbps") {
          link.bandwidth_bytes_per_sec = std::stod(value) * 1e6 / 8.0;
        } else if (attr == "latency_ms") {
          link.latency = from_millis(std::stod(value));
        } else {
          return invalid_argument_error("unknown link attribute: " + key);
        }
      } catch (...) {
        return invalid_argument_error("bad link value '" + value + "' for " + key);
      }
      grid.set_link(a, b, link);
      continue;
    }
  }
  return Status::ok();
}

}  // namespace gae::sim
