// Builds a grid topology from a Config, so examples, benches and deployments
// can describe sites/nodes/links in a text file instead of code.
//
//   [defaults]
//   bandwidth_mbps = 100
//   latency_ms = 20
//
//   [site:cern]
//   node.0 = speed=1.0 load=constant:0.5
//   node.1 = speed=1.2 load=periodic:0.1,0.8,600,600
//   node.2 = speed=0.9 load=walk:0.0,0.9,120,86400,7
//   storage.run2026.root = 20000000000
//
//   [link:cern->fnal]        ; directed ("<->" in the name is not supported;
//   bandwidth_mbps = 200     ;  declare both directions)
//   latency_ms = 15
//
// Load specs: constant:L | periodic:LO,HI,ON_S,OFF_S | walk:LO,HI,SEG_S,HORIZON_S,SEED
// | none.
#pragma once

#include "common/config.h"
#include "common/status.h"
#include "sim/grid.h"

namespace gae::sim {

/// Parses a load-profile spec string (see header comment). Empty or "none"
/// yields an idle profile.
Result<std::shared_ptr<LoadProfile>> load_profile_from_spec(const std::string& spec);

/// Populates `grid` from the config. INVALID_ARGUMENT on malformed entries.
Status grid_from_config(const Config& config, Grid& grid);

}  // namespace gae::sim
