// Link bandwidth contention.
//
// Grid::transfer_time() prices a transfer as if it owned the link. The
// NetworkManager models what actually happens when several transfers share
// a link: each directed link processor-shares its bandwidth equally among
// its active transfers, and completion events are re-planned whenever a
// transfer starts or finishes (piecewise-constant rates, integrated exactly
// — the same analytic technique the execution service uses for CPU).
//
// Components that need contention (staging under heavy replication, WAN
// storms) take a NetworkManager; the static estimate remains the *estimator's*
// view, which is exactly the fidelity gap the paper's transfer estimator has.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "sim/engine.h"
#include "sim/grid.h"

namespace gae::sim {

using TransferId = std::uint64_t;
inline constexpr TransferId kInvalidTransfer = 0;

class NetworkManager {
 public:
  NetworkManager(Simulation& sim, Grid& grid);

  NetworkManager(const NetworkManager&) = delete;
  NetworkManager& operator=(const NetworkManager&) = delete;

  using AbortCallback = std::function<void(const Status&)>;

  /// Starts a transfer of `bytes` from `src` to `dst`; `on_complete` fires
  /// (in virtual time) when the last byte lands. Same-site transfers
  /// complete after the link latency only. Returns an id for cancel().
  /// `on_abort` fires instead (with UNAVAILABLE) when the link fails
  /// mid-transfer; without one the transfer dies silently.
  Result<TransferId> start_transfer(const std::string& src, const std::string& dst,
                                    std::uint64_t bytes,
                                    std::function<void()> on_complete,
                                    AbortCallback on_abort = nullptr);

  /// Cancels an in-flight transfer (its callback never fires). False when
  /// the transfer already completed or never existed.
  bool cancel(TransferId id);

  /// Fails the directed link src->dst for `window` of virtual time: every
  /// in-flight transfer on it aborts (on_abort gets UNAVAILABLE) and new
  /// transfers are refused with UNAVAILABLE until the window closes. The
  /// chaos tests use this to knock out a site's WAN mid-staging.
  void fail_link(const std::string& src, const std::string& dst, SimDuration window);

  /// True while the directed link is inside a failure window.
  bool link_failed(const std::string& src, const std::string& dst) const;

  std::uint64_t aborted_transfers() const { return aborted_; }

  /// Active transfers on the directed link src->dst.
  std::size_t active_on_link(const std::string& src, const std::string& dst) const;

  std::size_t active_transfers() const { return transfers_.size(); }
  std::uint64_t completed_transfers() const { return completed_; }

 private:
  using LinkKey = std::pair<std::string, std::string>;

  struct Transfer {
    TransferId id;
    LinkKey link;
    double remaining_bytes;
    SimTime segment_start;
    double rate;  // bytes/s this segment
    sim::EventId event = sim::kInvalidEvent;
    std::function<void()> on_complete;
    AbortCallback on_abort;
  };

  /// Folds elapsed time into remaining_bytes for every transfer on `link`,
  /// then recomputes rates and reschedules completion events.
  void replan_link(const LinkKey& link);

  void on_transfer_done(TransferId id);

  Simulation& sim_;
  Grid& grid_;
  std::map<TransferId, Transfer> transfers_;
  std::map<LinkKey, std::size_t> link_counts_;
  std::map<LinkKey, SimTime> link_failed_until_;
  TransferId next_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t aborted_ = 0;
};

}  // namespace gae::sim
