#include "sim/engine.h"

#include <utility>

namespace gae::sim {

EventId Simulation::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now()) t = now();
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  return id;
}

bool Simulation::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  // Lazy deletion: remember the id; skip it when popped.
  return cancelled_.insert(id).second;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    // priority_queue has no non-const top-move; copy of the function is the
    // cost of lazy deletion, acceptable at this scale.
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    clock_.advance_to(ev.time);
    ++fired_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  clock_.advance_to(t);
}

std::uint64_t Simulation::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace gae::sim
