// Discrete-event simulation engine.
//
// Single-threaded and deterministic: events at equal timestamps fire in
// scheduling order. The grid experiments (fig. 7, steering ablations) run
// entirely in virtual time, so a 20-minute grid scenario executes in
// milliseconds and reproduces bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/time_types.h"

namespace gae::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return clock_.now(); }

  /// The clock services should read; advances as events fire.
  const Clock& clock() const { return clock_; }

  /// Schedules `fn` at absolute virtual time `t` (clamped to now).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `d` microseconds of virtual time.
  EventId schedule_after(SimDuration d, std::function<void()> fn) {
    return schedule_at(now() + (d > 0 ? d : 0), std::move(fn));
  }

  /// Cancels a pending event; false if it already fired or never existed.
  bool cancel(EventId id);

  /// Fires the next event; false when the queue is empty.
  bool step();

  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(SimTime t);

  /// Runs until no events remain (or max_events fired, as a runaway guard).
  /// Returns the number of events fired.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  bool empty() const { return queue_.size() == cancelled_.size(); }

  std::uint64_t events_fired() const { return fired_; }

 private:
  struct Event {
    SimTime time;
    EventId id;  // also the tie-break: lower id fires first
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  ManualClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
};

}  // namespace gae::sim
