// Passive grid topology model: sites containing worker nodes and storage
// elements, connected by point-to-point network links. The execution service
// and transfer-time estimator consume this; the model itself holds no
// simulation state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_types.h"
#include "sim/load.h"

namespace gae::sim {

/// One worker node (one Condor slot in the paper's terms).
class Node {
 public:
  Node(std::string name, double speed_factor, std::shared_ptr<LoadProfile> load);

  const std::string& name() const { return name_; }

  /// Relative CPU speed (1.0 = reference machine).
  double speed_factor() const { return speed_factor_; }

  double background_load(SimTime t) const { return load_->load_at(t); }
  SimTime next_load_change(SimTime t) const { return load_->next_change(t); }

  /// CPU-seconds of job work completed per second of wall time at t:
  /// speed_factor * (1 - background_load).
  double effective_rate(SimTime t) const {
    return speed_factor_ * (1.0 - load_->load_at(t));
  }

 private:
  std::string name_;
  double speed_factor_;
  std::shared_ptr<LoadProfile> load_;
};

/// A grid site: worker nodes plus a storage element holding named files.
class Site {
 public:
  explicit Site(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Node& add_node(const std::string& node_name, double speed_factor,
                 std::shared_ptr<LoadProfile> load);

  std::size_t node_count() const { return nodes_.size(); }
  Node& node(std::size_t i) { return *nodes_[i]; }
  const Node& node(std::size_t i) const { return *nodes_[i]; }

  /// Registers (or resizes) a file on this site's storage element.
  void store_file(const std::string& file, std::uint64_t bytes) { files_[file] = bytes; }
  bool has_file(const std::string& file) const { return files_.count(file) != 0; }
  /// NOT_FOUND if the file is not stored here.
  Result<std::uint64_t> file_size(const std::string& file) const;
  const std::map<std::string, std::uint64_t>& files() const { return files_; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Node>> nodes_;  // stable addresses
  std::map<std::string, std::uint64_t> files_;
};

/// Directed link capacity between two sites.
struct Link {
  double bandwidth_bytes_per_sec = 125e6;  // ~1 Gbit/s
  SimDuration latency = 0;
};

class Grid {
 public:
  Grid();

  Site& add_site(const std::string& name);
  bool has_site(const std::string& name) const { return sites_.count(name) != 0; }
  /// Throws std::out_of_range for unknown sites (programming error).
  Site& site(const std::string& name);
  const Site& site(const std::string& name) const;
  std::vector<std::string> site_names() const;

  /// Default link used for site pairs without an explicit entry.
  void set_default_link(Link link) { default_link_ = link; }
  /// Sets the directed link a -> b.
  void set_link(const std::string& a, const std::string& b, Link link);
  /// Sets both directions.
  void set_symmetric_link(const std::string& a, const std::string& b, Link link);
  Link link(const std::string& a, const std::string& b) const;

  /// Virtual time to move `bytes` from site a to site b. Zero for a == b.
  SimDuration transfer_time(const std::string& a, const std::string& b,
                            std::uint64_t bytes) const;

  /// Site (other than `except`) holding `file` with the fastest transfer to
  /// `dst`; NOT_FOUND when nobody has it.
  Result<std::string> closest_replica(const std::string& file, const std::string& dst,
                                      const std::string& except = "") const;

 private:
  std::map<std::string, std::unique_ptr<Site>> sites_;
  std::map<std::pair<std::string, std::string>, Link> links_;
  Link default_link_;
};

}  // namespace gae::sim
