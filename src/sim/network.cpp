#include "sim/network.h"

#include <cmath>

namespace gae::sim {

NetworkManager::NetworkManager(Simulation& sim, Grid& grid) : sim_(sim), grid_(grid) {}

Result<TransferId> NetworkManager::start_transfer(const std::string& src,
                                                  const std::string& dst,
                                                  std::uint64_t bytes,
                                                  std::function<void()> on_complete,
                                                  AbortCallback on_abort) {
  if (!grid_.has_site(src)) return not_found_error("unknown site: " + src);
  if (!grid_.has_site(dst)) return not_found_error("unknown site: " + dst);
  if (src != dst && link_failed(src, dst)) {
    return unavailable_error("link " + src + "->" + dst + " is down");
  }

  const TransferId id = next_id_++;
  if (src == dst || bytes == 0) {
    // Local copy: latency only (zero for same-site per Grid::transfer_time).
    const SimDuration latency = src == dst ? 0 : grid_.link(src, dst).latency;
    Transfer t;
    t.id = id;
    t.link = {src, dst};
    t.remaining_bytes = 0;
    t.segment_start = sim_.now();
    t.rate = 0;
    t.on_complete = std::move(on_complete);
    t.on_abort = std::move(on_abort);
    t.event = sim_.schedule_after(latency, [this, id] { on_transfer_done(id); });
    transfers_.emplace(id, std::move(t));
    return id;
  }

  const Link link = grid_.link(src, dst);
  if (link.bandwidth_bytes_per_sec <= 0) {
    return failed_precondition_error("no bandwidth " + src + "->" + dst);
  }

  Transfer t;
  t.id = id;
  t.link = {src, dst};
  t.remaining_bytes = static_cast<double>(bytes);
  t.segment_start = sim_.now();
  t.rate = 0;  // set by replan_link
  t.on_complete = std::move(on_complete);
  t.on_abort = std::move(on_abort);
  transfers_.emplace(id, std::move(t));
  ++link_counts_[{src, dst}];
  replan_link({src, dst});
  return id;
}

bool NetworkManager::cancel(TransferId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return false;
  if (it->second.event != sim::kInvalidEvent) sim_.cancel(it->second.event);
  const LinkKey link = it->second.link;
  const bool shared = it->second.rate > 0 || it->second.remaining_bytes > 0;
  transfers_.erase(it);
  if (shared) {
    auto count = link_counts_.find(link);
    if (count != link_counts_.end() && --count->second == 0) link_counts_.erase(count);
    replan_link(link);
  }
  return true;
}

void NetworkManager::fail_link(const std::string& src, const std::string& dst,
                               SimDuration window) {
  const LinkKey link{src, dst};
  link_failed_until_[link] = sim_.now() + (window > 0 ? window : 0);

  // Abort every in-flight transfer on the link; callbacks fire after the
  // bookkeeping settles so they observe a consistent manager.
  std::vector<AbortCallback> aborts;
  for (auto it = transfers_.begin(); it != transfers_.end();) {
    Transfer& t = it->second;
    if (t.link != link) {
      ++it;
      continue;
    }
    if (t.event != sim::kInvalidEvent) sim_.cancel(t.event);
    const bool shared = t.rate > 0 || t.remaining_bytes > 0;
    if (shared) {
      auto count = link_counts_.find(link);
      if (count != link_counts_.end() && --count->second == 0) link_counts_.erase(count);
    }
    if (t.on_abort) aborts.push_back(std::move(t.on_abort));
    it = transfers_.erase(it);
    ++aborted_;
  }
  const Status cause = unavailable_error("link " + src + "->" + dst + " failed");
  for (auto& abort : aborts) abort(cause);
}

bool NetworkManager::link_failed(const std::string& src, const std::string& dst) const {
  auto it = link_failed_until_.find({src, dst});
  return it != link_failed_until_.end() && sim_.now() < it->second;
}

std::size_t NetworkManager::active_on_link(const std::string& src,
                                           const std::string& dst) const {
  auto it = link_counts_.find({src, dst});
  return it == link_counts_.end() ? 0 : it->second;
}

void NetworkManager::replan_link(const LinkKey& link) {
  const SimTime now = sim_.now();
  auto count_it = link_counts_.find(link);
  const std::size_t sharers = count_it == link_counts_.end() ? 0 : count_it->second;
  if (sharers == 0) return;

  const double bandwidth = grid_.link(link.first, link.second).bandwidth_bytes_per_sec;
  const double share = bandwidth / static_cast<double>(sharers);

  for (auto& [id, t] : transfers_) {
    if (t.link != link || t.remaining_bytes <= 0) continue;
    // Fold the finished segment into remaining bytes.
    const double elapsed = to_seconds(now - t.segment_start);
    t.remaining_bytes = std::max(0.0, t.remaining_bytes - elapsed * t.rate);
    t.segment_start = now;
    t.rate = share;
    if (t.event != sim::kInvalidEvent) sim_.cancel(t.event);
    const double seconds = t.remaining_bytes / share;
    const TransferId tid = id;
    t.event = sim_.schedule_after(
        static_cast<SimDuration>(std::ceil(seconds * 1e6)),
        [this, tid] { on_transfer_done(tid); });
  }
}

void NetworkManager::on_transfer_done(TransferId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  const LinkKey link = it->second.link;
  const bool shared = it->second.rate > 0;
  auto on_complete = std::move(it->second.on_complete);
  transfers_.erase(it);
  ++completed_;
  if (shared) {
    auto count = link_counts_.find(link);
    if (count != link_counts_.end() && --count->second == 0) link_counts_.erase(count);
    // Survivors speed up now that a sharer left.
    replan_link(link);
  }
  // The link latency front-loads poorly into processor sharing; transfers
  // here pay bandwidth time only, which matches Grid::transfer_time within
  // one latency. Fire the completion last so callbacks see consistent state.
  if (on_complete) on_complete();
}

}  // namespace gae::sim
