// Background CPU-load profiles for simulated worker nodes.
//
// A profile maps virtual time to the fraction of the CPU consumed by other
// (non-grid) users, as a piecewise-constant function. The execution service
// integrates job progress exactly between change points, so job completion
// events are scheduled analytically rather than polled.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/time_types.h"

namespace gae::sim {

/// Piecewise-constant background load in [0, 1).
class LoadProfile {
 public:
  virtual ~LoadProfile() = default;

  /// Load at time t, in [0, 1). 0 = idle node, 0.9 = heavily loaded.
  virtual double load_at(SimTime t) const = 0;

  /// First instant strictly after t where load_at changes, or kSimTimeNever
  /// for constant profiles.
  virtual SimTime next_change(SimTime t) const = 0;
};

/// Always the same load.
class ConstantLoad final : public LoadProfile {
 public:
  explicit ConstantLoad(double load);
  double load_at(SimTime) const override { return load_; }
  SimTime next_change(SimTime) const override { return kSimTimeNever; }

 private:
  double load_;
};

/// Explicit schedule: load becomes steps[i].load at steps[i].at, holding the
/// last value forever. Before the first step the load is `initial`.
class StepLoad final : public LoadProfile {
 public:
  struct Step {
    SimTime at;
    double load;
  };
  StepLoad(double initial, std::vector<Step> steps);

  double load_at(SimTime t) const override;
  SimTime next_change(SimTime t) const override;

 private:
  double initial_;
  std::vector<Step> steps_;  // sorted by .at
};

/// Square wave: `high` for on_duration, `low` for off_duration, repeating.
class PeriodicLoad final : public LoadProfile {
 public:
  PeriodicLoad(double low, double high, SimDuration on_duration, SimDuration off_duration);

  double load_at(SimTime t) const override;
  SimTime next_change(SimTime t) const override;

 private:
  double low_, high_;
  SimDuration on_, off_;
};

/// Pre-generated random walk: segments of `segment` duration with load
/// drifting within [lo, hi]; deterministic for a given seed, out to
/// `horizon`. After the horizon the last value holds.
std::unique_ptr<LoadProfile> make_random_walk_load(Rng rng, double lo, double hi,
                                                   SimDuration segment, SimTime horizon);

/// Day/night cycle: a raised cosine between `night` (trough) and `peak`,
/// sampled into piecewise-constant steps of `step` out to `horizon`.
/// `phase_fraction` in [0,1) shifts where in the cycle t=0 falls (0 = trough).
std::unique_ptr<LoadProfile> make_diurnal_load(double night, double peak,
                                               SimDuration period, SimDuration step,
                                               SimTime horizon,
                                               double phase_fraction = 0.0);

}  // namespace gae::sim
