#include "sim/load.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gae::sim {

namespace {
double clamp_load(double x) { return std::clamp(x, 0.0, 0.999); }
}  // namespace

ConstantLoad::ConstantLoad(double load) : load_(clamp_load(load)) {}

StepLoad::StepLoad(double initial, std::vector<Step> steps)
    : initial_(clamp_load(initial)), steps_(std::move(steps)) {
  std::sort(steps_.begin(), steps_.end(),
            [](const Step& a, const Step& b) { return a.at < b.at; });
  for (auto& s : steps_) s.load = clamp_load(s.load);
}

double StepLoad::load_at(SimTime t) const {
  double load = initial_;
  for (const auto& s : steps_) {
    if (s.at > t) break;
    load = s.load;
  }
  return load;
}

SimTime StepLoad::next_change(SimTime t) const {
  for (const auto& s : steps_) {
    if (s.at > t) return s.at;
  }
  return kSimTimeNever;
}

PeriodicLoad::PeriodicLoad(double low, double high, SimDuration on_duration,
                           SimDuration off_duration)
    : low_(clamp_load(low)), high_(clamp_load(high)), on_(on_duration), off_(off_duration) {
  if (on_ <= 0 || off_ <= 0) {
    throw std::invalid_argument("PeriodicLoad durations must be positive");
  }
}

double PeriodicLoad::load_at(SimTime t) const {
  if (t < 0) return low_;
  const SimDuration period = on_ + off_;
  const SimDuration phase = t % period;
  return phase < on_ ? high_ : low_;
}

SimTime PeriodicLoad::next_change(SimTime t) const {
  if (t < 0) return 0;
  const SimDuration period = on_ + off_;
  const SimTime cycle_start = (t / period) * period;
  const SimDuration phase = t - cycle_start;
  return phase < on_ ? cycle_start + on_ : cycle_start + period;
}

std::unique_ptr<LoadProfile> make_random_walk_load(Rng rng, double lo, double hi,
                                                   SimDuration segment, SimTime horizon) {
  if (segment <= 0) throw std::invalid_argument("random walk segment must be positive");
  lo = clamp_load(lo);
  hi = clamp_load(hi);
  if (hi < lo) std::swap(lo, hi);
  std::vector<StepLoad::Step> steps;
  double level = rng.uniform(lo, hi);
  const double initial = level;
  const double max_drift = (hi - lo) * 0.25;
  for (SimTime t = segment; t <= horizon; t += segment) {
    level = std::clamp(level + rng.uniform(-max_drift, max_drift), lo, hi);
    steps.push_back({t, level});
  }
  return std::make_unique<StepLoad>(initial, std::move(steps));
}

std::unique_ptr<LoadProfile> make_diurnal_load(double night, double peak,
                                               SimDuration period, SimDuration step,
                                               SimTime horizon, double phase_fraction) {
  if (period <= 0 || step <= 0) {
    throw std::invalid_argument("diurnal period/step must be positive");
  }
  night = clamp_load(night);
  peak = clamp_load(peak);
  const double two_pi = 6.283185307179586;
  auto level_at = [&](SimTime t) {
    const double phase =
        static_cast<double>(t) / static_cast<double>(period) + phase_fraction;
    return night + (peak - night) * 0.5 * (1.0 - std::cos(two_pi * phase));
  };
  std::vector<StepLoad::Step> steps;
  for (SimTime t = step; t <= horizon; t += step) {
    steps.push_back({t, level_at(t)});
  }
  return std::make_unique<StepLoad>(level_at(0), std::move(steps));
}

}  // namespace gae::sim
