#include "sim/grid.h"

#include <limits>
#include <stdexcept>

namespace gae::sim {

Node::Node(std::string name, double speed_factor, std::shared_ptr<LoadProfile> load)
    : name_(std::move(name)), speed_factor_(speed_factor), load_(std::move(load)) {
  if (speed_factor_ <= 0) throw std::invalid_argument("node speed_factor must be > 0");
  if (!load_) load_ = std::make_shared<ConstantLoad>(0.0);
}

Node& Site::add_node(const std::string& node_name, double speed_factor,
                     std::shared_ptr<LoadProfile> load) {
  nodes_.push_back(std::make_unique<Node>(node_name, speed_factor, std::move(load)));
  return *nodes_.back();
}

Result<std::uint64_t> Site::file_size(const std::string& file) const {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return not_found_error("file " + file + " not stored at site " + name_);
  }
  return it->second;
}

Grid::Grid() = default;

Site& Grid::add_site(const std::string& name) {
  auto [it, inserted] = sites_.emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Site>(name);
  return *it->second;
}

Site& Grid::site(const std::string& name) {
  auto it = sites_.find(name);
  if (it == sites_.end()) throw std::out_of_range("unknown site: " + name);
  return *it->second;
}

const Site& Grid::site(const std::string& name) const {
  auto it = sites_.find(name);
  if (it == sites_.end()) throw std::out_of_range("unknown site: " + name);
  return *it->second;
}

std::vector<std::string> Grid::site_names() const {
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, _] : sites_) names.push_back(name);
  return names;
}

void Grid::set_link(const std::string& a, const std::string& b, Link link) {
  links_[{a, b}] = link;
}

void Grid::set_symmetric_link(const std::string& a, const std::string& b, Link link) {
  set_link(a, b, link);
  set_link(b, a, link);
}

Link Grid::link(const std::string& a, const std::string& b) const {
  auto it = links_.find({a, b});
  return it == links_.end() ? default_link_ : it->second;
}

SimDuration Grid::transfer_time(const std::string& a, const std::string& b,
                                std::uint64_t bytes) const {
  if (a == b) return 0;
  const Link l = link(a, b);
  if (l.bandwidth_bytes_per_sec <= 0) return kSimTimeNever;
  const double seconds = static_cast<double>(bytes) / l.bandwidth_bytes_per_sec;
  return l.latency + from_seconds(seconds);
}

Result<std::string> Grid::closest_replica(const std::string& file, const std::string& dst,
                                          const std::string& except) const {
  std::string best;
  SimDuration best_time = std::numeric_limits<SimDuration>::max();
  for (const auto& [name, site] : sites_) {
    if (name == except || !site->has_file(file)) continue;
    const SimDuration t = transfer_time(name, dst, site->file_size(file).value());
    if (t != kSimTimeNever && t < best_time) {
      best_time = t;
      best = name;
    }
  }
  if (best.empty()) return not_found_error("no replica of " + file);
  return best;
}

}  // namespace gae::sim
