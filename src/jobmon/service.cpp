#include "jobmon/service.h"

#include <algorithm>
#include <set>

namespace gae::jobmon {

JobMonitoringService::JobMonitoringService(
    const Clock& clock, monalisa::Repository* monitoring,
    std::shared_ptr<const estimators::EstimateDatabase> estimates, Wal* wal)
    : clock_(clock), estimates_(std::move(estimates)) {
  if (!estimates_) estimates_ = std::make_shared<estimators::EstimateDatabase>();
  db_ = std::make_unique<DBManager>(monitoring, wal);
  collector_ = std::make_unique<JobInformationCollector>(
      [this](const std::string& task_id, const exec::TaskInfo& info,
             const std::string& site, SimTime now) {
        // The collector pushes every state change into the repository, so
        // completed/failed tasks stay queryable after services forget them.
        db_->update(task_id, info, site, now);
        events_.push_back({next_seq_++, now, task_id, site, info.state});
        while (events_.size() > kMaxEvents) events_.pop_front();
        for (const auto& listener : update_listeners_) listener(task_id, info.state);
      });
}

void JobMonitoringService::add_update_listener(UpdateListener listener) {
  update_listeners_.push_back(std::move(listener));
}

void JobMonitoringService::attach_site(const std::string& site,
                                       exec::ExecutionService* service) {
  collector_->attach(site, service);
}

JobMonitorReport JobMonitoringService::make_report(const exec::TaskInfo& info,
                                                   const std::string& site,
                                                   bool from_db) const {
  JobMonitorReport report;
  report.info = info;
  report.site = site;
  report.from_database = from_db;
  report.estimated_runtime_seconds = estimates_->get(info.spec.id).value_or(0.0);

  if (info.start_time != kSimTimeNever) {
    const SimTime end =
        info.completion_time != kSimTimeNever ? info.completion_time : clock_.now();
    report.elapsed_seconds = to_seconds(end - info.start_time);
  }
  if (exec::is_terminal(info.state)) {
    report.remaining_seconds = 0.0;
  } else if (report.estimated_runtime_seconds > 0) {
    report.remaining_seconds =
        std::max(0.0, report.estimated_runtime_seconds - info.cpu_seconds_used);
  }
  return report;
}

Result<JobMonitorReport> JobMonitoringService::info(const std::string& task_id) const {
  // DBManager first (authoritative for terminal tasks) ...
  auto rec = db_->get(task_id);
  if (rec.is_ok() && exec::is_terminal(rec.value().info.state)) {
    return make_report(rec.value().info, rec.value().site, true);
  }
  // ... then the live collector.
  auto live = collector_->collect(task_id);
  if (live.is_ok()) {
    const auto site = collector_->site_of(task_id);
    return make_report(live.value(), site.is_ok() ? site.value() : "", false);
  }
  // Last known record beats nothing (e.g. the hosting service just died).
  if (rec.is_ok()) return make_report(rec.value().info, rec.value().site, true);
  return live.status();
}

Result<std::string> JobMonitoringService::status(const std::string& task_id) const {
  auto r = info(task_id);
  if (!r.is_ok()) return r.status();
  return std::string(exec::task_state_name(r.value().info.state));
}

Result<double> JobMonitoringService::remaining_time(const std::string& task_id) const {
  auto r = info(task_id);
  if (!r.is_ok()) return r.status();
  return r.value().remaining_seconds;
}

Result<double> JobMonitoringService::elapsed_time(const std::string& task_id) const {
  auto r = info(task_id);
  if (!r.is_ok()) return r.status();
  return r.value().elapsed_seconds;
}

Result<int> JobMonitoringService::queue_position(const std::string& task_id) const {
  auto r = info(task_id);
  if (!r.is_ok()) return r.status();
  return r.value().info.queue_position;
}

Result<double> JobMonitoringService::progress(const std::string& task_id) const {
  auto r = info(task_id);
  if (!r.is_ok()) return r.status();
  return r.value().info.progress;
}

Result<JobMonitoringService::JobSummary> JobMonitoringService::job_summary(
    const std::string& job_id) const {
  JobSummary summary;
  summary.job_id = job_id;
  double progress_sum = 0;
  for (const auto& report : list_all()) {
    if (report.info.spec.job_id != job_id) continue;
    ++summary.tasks_total;
    switch (report.info.state) {
      case exec::TaskState::kRunning:
      case exec::TaskState::kStaging:
        ++summary.running;
        break;
      case exec::TaskState::kQueued:
      case exec::TaskState::kSuspended:
        ++summary.queued;
        break;
      case exec::TaskState::kCompleted:
        ++summary.completed;
        break;
      case exec::TaskState::kFailed:
      case exec::TaskState::kKilled:
        ++summary.failed;
        break;
    }
    summary.total_cpu_seconds += report.info.cpu_seconds_used;
    progress_sum += report.info.progress;
  }
  if (summary.tasks_total == 0) return not_found_error("no tasks for job " + job_id);
  summary.mean_progress = progress_sum / static_cast<double>(summary.tasks_total);
  return summary;
}

std::vector<MonitorEvent> JobMonitoringService::events_since(std::uint64_t after,
                                                             std::size_t max) const {
  std::vector<MonitorEvent> out;
  for (const auto& ev : events_) {
    if (ev.seq <= after) continue;
    out.push_back(ev);
    if (out.size() >= max) break;
  }
  return out;
}

std::vector<JobMonitorReport> JobMonitoringService::list_all() const {
  std::vector<JobMonitorReport> out;
  std::set<std::string> seen;
  for (const auto& [site, info] : collector_->collect_all()) {
    seen.insert(info.spec.id);
    out.push_back(make_report(info, site, false));
  }
  for (const auto& rec : db_->all()) {
    if (seen.insert(rec.info.spec.id).second) {
      out.push_back(make_report(rec.info, rec.site, true));
    }
  }
  return out;
}

}  // namespace gae::jobmon
