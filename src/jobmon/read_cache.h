// Always-on sharded TTL read cache for the jobmon read path (info / status
// / list). Promotes what used to be a brownout-only snapshot into the
// normal serving plane: monitoring reads are the paper's highest-volume
// traffic, dominated by dashboards polling the same handful of keys, and a
// short freshness bound turns that fan-out into one map lookup.
//
// Staleness is bounded three ways:
//   - every entry expires after ttl_ms (brownout_ttl_ms while the host is
//     browned out — load shedding tolerates older answers);
//   - the Job Information Collector invalidates a task's entries (and the
//     list) explicitly on every job-state transition, so transitions are
//     visible immediately, not after TTL;
//   - failover drops the whole cache (PromotionOptions::drop_caches) — a
//     newly promoted primary must not serve reads recorded under the old
//     primary's epoch.
//
// Thread-safe; keys hash across `shards` independent mutex+map shards so
// concurrent RPC workers do not serialise on one cache lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rpc/value.h"
#include "telemetry/instrument.h"
#include "telemetry/metrics.h"

namespace gae::jobmon {

struct ReadCacheOptions {
  /// Freshness bound for normal serving; entries older than this miss.
  int ttl_ms = 250;
  /// Extended acceptance while the host is browned out: shedding load is
  /// worth serving older (still explicitly-invalidated) data.
  int brownout_ttl_ms = 2000;
  /// Independent mutex+map shards; keys hash across them.
  std::size_t shards = 8;
  /// Entry cap per shard; a full shard is swept of expired entries and, if
  /// still full, flushed (it is a cache — dropping is always correct).
  std::size_t max_entries_per_shard = 1024;
  /// Monotonic time source in µs; null = rpc::steady_now_us. Tests inject
  /// a manual one to step TTLs deterministically.
  std::function<std::int64_t()> now_us;
  /// When set, the cache keeps jobmon.cache.{hits,misses,invalidations}
  /// counters and a jobmon.cache.entries gauge. Must outlive the cache.
  telemetry::MetricsRegistry* metrics = nullptr;
};

class ReadCache {
 public:
  explicit ReadCache(ReadCacheOptions options = {});

  /// The cached value for `key` if it is younger than the applicable TTL
  /// (brownout selects the extended bound). Expired entries are erased on
  /// the way out.
  std::optional<rpc::Value> get(const std::string& key, bool brownout = false);

  /// Inserts or refreshes `key`.
  void put(const std::string& key, rpc::Value value);

  void invalidate(const std::string& key);
  /// Drops every entry derived from one task: info/<id>, status/<id>, and
  /// the list (whose membership the transition may have changed).
  void invalidate_task(const std::string& task_id);
  /// Drops everything (failover: the epoch advanced under this cache).
  void invalidate_all();

  /// Key conventions shared with the RPC binding.
  static std::string info_key(const std::string& task_id) { return "info/" + task_id; }
  static std::string status_key(const std::string& task_id) {
    return "status/" + task_id;
  }
  static constexpr const char* kListKey = "list";

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;  // entries actually dropped
  };
  Stats stats() const;
  std::size_t size() const;

 private:
  struct Entry {
    rpc::Value value;
    std::int64_t inserted_at_us = 0;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::string, Entry> entries;
  };

  Shard& shard_for(const std::string& key);

  ReadCacheOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};

  telemetry::CacheCounters counters_;  // jobmon.cache.*
};

}  // namespace gae::jobmon
