// Job Monitoring Service (paper §5).
//
// Composition mirrors fig. 3: a Job Information Collector watches the
// execution services; a DBManager owns the monitoring repository and
// publishes to MonALISA; the JMManager answers queries by consulting the
// DBManager first and falling back to the collector for live tasks; the
// JMExecutable (rpc_binding.h) exposes it all as Clarens web-service
// methods for the steering service and end-user clients.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "estimators/estimate_db.h"
#include "exec/execution_service.h"
#include "jobmon/collector.h"
#include "jobmon/db_manager.h"
#include "monalisa/repository.h"

namespace gae::jobmon {

/// One monitoring event, as exposed to polling clients (jobmon.eventsSince).
struct MonitorEvent {
  std::uint64_t seq = 0;  // monotonically increasing, starts at 1
  SimTime time = 0;
  std::string task_id;
  std::string site;
  exec::TaskState state = exec::TaskState::kQueued;
};

/// Everything the paper's §5 API exposes for one task, in one struct:
/// status, remaining/elapsed time, estimated runtime, queue position,
/// priority, submission/execution/completion times, CPU time, I/O, owner
/// and environment are all reachable from here.
struct JobMonitorReport {
  exec::TaskInfo info;
  std::string site;
  /// Submit-time runtime estimate (0 when none was recorded).
  double estimated_runtime_seconds = 0.0;
  /// Wall time since the task first started executing (0 while queued).
  double elapsed_seconds = 0.0;
  /// Estimated CPU-seconds still to do: max(0, estimate - cpu_used).
  double remaining_seconds = 0.0;
  /// True when served from the DB repository rather than a live service.
  bool from_database = false;
};

class JobMonitoringService {
 public:
  /// `monitoring` (MonALISA) and `estimates` may be shared with other
  /// services; `estimates` supplies the §5 "estimated run time" field.
  /// `wal` (optional) makes the DBManager's repository crash-consistent;
  /// pass the same log to a restarted instance and call recover().
  JobMonitoringService(const Clock& clock, monalisa::Repository* monitoring,
                       std::shared_ptr<const estimators::EstimateDatabase> estimates,
                       Wal* wal = nullptr);

  /// Attaches a site's execution service for live collection.
  void attach_site(const std::string& site, exec::ExecutionService* service);

  // -- JMManager query flow --------------------------------------------------

  /// Full report. Terminal tasks come from the DB repository; live tasks
  /// from the collector (paper: DBManager first, then collector).
  Result<JobMonitorReport> info(const std::string& task_id) const;

  // Convenience accessors used by thin clients.
  Result<std::string> status(const std::string& task_id) const;
  Result<double> remaining_time(const std::string& task_id) const;
  Result<double> elapsed_time(const std::string& task_id) const;
  Result<int> queue_position(const std::string& task_id) const;
  Result<double> progress(const std::string& task_id) const;

  /// Reports for every known task (live + archived), deduplicated by id.
  std::vector<JobMonitorReport> list_all() const;

  /// Aggregate view of one job (all tasks sharing job_id).
  struct JobSummary {
    std::string job_id;
    std::size_t tasks_total = 0;
    std::size_t running = 0;
    std::size_t queued = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;
    double total_cpu_seconds = 0.0;
    double mean_progress = 0.0;  // across non-terminal + terminal tasks
  };

  /// NOT_FOUND when no task of the job is known anywhere.
  Result<JobSummary> job_summary(const std::string& job_id) const;

  /// Events with seq > `after`, oldest first, at most `max`. Clients poll
  /// with their last seen sequence number to tail the job-state stream.
  std::vector<MonitorEvent> events_since(std::uint64_t after, std::size_t max = 100) const;
  std::uint64_t last_event_seq() const { return next_seq_ - 1; }

  /// Observes every job-state change the collector pushes, after the
  /// repository write — the invalidation feed for read caches layered over
  /// this service (jobmon/read_cache.h). Listeners run on the collector's
  /// thread; keep them cheap. Register before traffic starts — not
  /// synchronised with in-flight collection.
  using UpdateListener =
      std::function<void(const std::string& task_id, exec::TaskState state)>;
  void add_update_listener(UpdateListener listener);

  const DBManager& db() const { return *db_; }
  /// Mutable repository access for snapshot/recover orchestration (the
  /// Supervisor drives these around a restart).
  DBManager& mutable_db() { return *db_; }
  JobInformationCollector& collector() { return *collector_; }

 private:
  JobMonitorReport make_report(const exec::TaskInfo& info, const std::string& site,
                               bool from_db) const;

  const Clock& clock_;
  std::shared_ptr<const estimators::EstimateDatabase> estimates_;
  std::unique_ptr<DBManager> db_;
  std::unique_ptr<JobInformationCollector> collector_;
  std::deque<MonitorEvent> events_;
  std::vector<UpdateListener> update_listeners_;
  std::uint64_t next_seq_ = 1;
  static constexpr std::size_t kMaxEvents = 4096;
};

}  // namespace gae::jobmon
