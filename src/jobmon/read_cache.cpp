#include "jobmon/read_cache.h"

#include "rpc/deadline.h"

namespace gae::jobmon {

ReadCache::ReadCache(ReadCacheOptions options) : options_(std::move(options)) {
  if (options_.shards == 0) options_.shards = 1;
  if (!options_.now_us) options_.now_us = [] { return rpc::steady_now_us(); };
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  counters_ = telemetry::CacheCounters(options_.metrics, "jobmon.cache");
}

ReadCache::Shard& ReadCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::optional<rpc::Value> ReadCache::get(const std::string& key, bool brownout) {
  const std::int64_t ttl_us =
      static_cast<std::int64_t>(brownout ? options_.brownout_ttl_ms : options_.ttl_ms) *
      1000;
  const std::int64_t now = options_.now_us();
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      if (now - it->second.inserted_at_us <= ttl_us) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        counters_.hit();
        return it->second.value;
      }
      // Expired under the applicable bound; erase so the shard never fills
      // with dead entries between sweeps.
      shard.entries.erase(it);
      counters_.resized(-1);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  counters_.miss();
  return std::nullopt;
}

void ReadCache::put(const std::string& key, rpc::Value value) {
  const std::int64_t now = options_.now_us();
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    it->second = {std::move(value), now};
    return;
  }
  if (shard.entries.size() >= options_.max_entries_per_shard) {
    // Sweep expired entries first; if the shard is full of live ones, flush
    // it — a cache may always forget, and a full flush is cheaper than
    // tracking recency on the hot path.
    const std::int64_t ttl_us = static_cast<std::int64_t>(options_.ttl_ms) * 1000;
    std::size_t dropped = 0;
    for (auto e = shard.entries.begin(); e != shard.entries.end();) {
      if (now - e->second.inserted_at_us > ttl_us) {
        e = shard.entries.erase(e);
        ++dropped;
      } else {
        ++e;
      }
    }
    if (shard.entries.size() >= options_.max_entries_per_shard) {
      dropped += shard.entries.size();
      shard.entries.clear();
    }
    counters_.resized(-static_cast<std::int64_t>(dropped));
  }
  shard.entries.emplace(key, Entry{std::move(value), now});
  counters_.resized(1);
}

void ReadCache::invalidate(const std::string& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.entries.erase(key) > 0) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    counters_.invalidated();
    counters_.resized(-1);
  }
}

void ReadCache::invalidate_task(const std::string& task_id) {
  invalidate(info_key(task_id));
  invalidate(status_key(task_id));
  invalidate(kListKey);
}

void ReadCache::invalidate_all() {
  std::size_t dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    dropped += shard->entries.size();
    shard->entries.clear();
  }
  if (dropped > 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    counters_.invalidated(dropped);
    counters_.resized(-static_cast<std::int64_t>(dropped));
  }
}

ReadCache::Stats ReadCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ReadCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

}  // namespace gae::jobmon
