#include "jobmon/collector.h"

namespace gae::jobmon {

JobInformationCollector::JobInformationCollector(UpdateCallback on_update)
    : on_update_(std::move(on_update)) {}

JobInformationCollector::~JobInformationCollector() {
  for (auto& [service, token] : subscriptions_) service->unsubscribe(token);
}

void JobInformationCollector::attach(const std::string& site,
                                     exec::ExecutionService* service) {
  services_[site] = service;
  const int token = service->subscribe([this, site, service](const exec::TaskEvent& ev) {
    if (!on_update_) return;
    auto info = service->query(ev.task_id);
    if (info.is_ok()) {
      on_update_(ev.task_id, info.value(), site, ev.time);
    } else if (exec::is_terminal(ev.new_state)) {
      // The service may already be unreachable (whole-service failure);
      // synthesise a terminal record from the event so the DB still learns.
      exec::TaskInfo stub;
      stub.spec.id = ev.task_id;
      stub.spec.job_id = ev.job_id;
      stub.state = ev.new_state;
      stub.completion_time = ev.time;
      stub.detail = ev.detail;
      on_update_(ev.task_id, stub, site, ev.time);
    }
  });
  subscriptions_.emplace_back(service, token);
}

Result<exec::TaskInfo> JobInformationCollector::collect(const std::string& task_id) const {
  bool saw_down_service = false;
  for (const auto& [site, service] : services_) {
    if (!service->is_up()) {
      saw_down_service = true;
      continue;
    }
    auto info = service->query(task_id);
    if (info.is_ok()) return info;
  }
  if (saw_down_service) {
    return unavailable_error("task " + task_id + " not found; some services are down");
  }
  return not_found_error("no execution service knows task " + task_id);
}

Result<std::string> JobInformationCollector::site_of(const std::string& task_id) const {
  for (const auto& [site, service] : services_) {
    if (!service->is_up()) continue;
    if (service->query(task_id).is_ok()) return site;
  }
  return not_found_error("no execution service knows task " + task_id);
}

std::vector<std::pair<std::string, exec::TaskInfo>>
JobInformationCollector::collect_all() const {
  std::vector<std::pair<std::string, exec::TaskInfo>> out;
  for (const auto& [site, service] : services_) {
    if (!service->is_up()) continue;
    for (auto& info : service->list_tasks()) out.emplace_back(site, std::move(info));
  }
  return out;
}

std::vector<std::string> JobInformationCollector::sites() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [site, _] : services_) out.push_back(site);
  return out;
}

}  // namespace gae::jobmon
