// DBManager (paper §5.4): each Job Monitoring Service instance owns a
// database repository of job monitoring records. The DBManager controls all
// access to it and publishes job monitoring updates to MonALISA.
//
// With a Wal attached the repository is crash-consistent, BOSS-style: every
// update is appended to the log before it lands in memory, save_snapshot()
// compacts the log, and recover() rebuilds the exact pre-crash view
// (snapshot fold + tail replay) on a restarted instance.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/wal.h"
#include "exec/job.h"
#include "monalisa/repository.h"
#include "storage/health.h"

namespace gae::jobmon {

/// A stored monitoring record: the task view plus where it ran.
struct JobRecord {
  exec::TaskInfo info;
  std::string site;
  SimTime updated_at = 0;
};

/// Canonical one-line serialisation of a record (the WAL payload; tests
/// byte-compare recovered state through it).
std::string encode_job_record(const std::string& task_id, const JobRecord& record);
Result<std::pair<std::string, JobRecord>> decode_job_record(const std::string& line);

class DBManager {
 public:
  /// `monitoring` may be null (no MonALISA publishing); `wal` may be null
  /// (in-memory only, the historical behaviour).
  explicit DBManager(monalisa::Repository* monitoring, Wal* wal = nullptr)
      : monitoring_(monitoring), wal_(wal) {}

  /// Degraded-mode gate (optional; must outlive this). When attached,
  /// mutations are refused while the store is read-only or quarantined,
  /// get() is refused while quarantined (the in-memory view may be
  /// poisoned), a failed WAL append latches the store read-only, and
  /// recover() reports what it dropped through StoreHealth::note_recover.
  void attach_health(storage::StoreHealth* health) { health_ = health; }

  /// Inserts or refreshes a record, journals the update, and publishes the
  /// state to MonALISA. Dropped (with a log line) while the store is not
  /// writable — an un-journalable update must not fork memory from disk.
  void update(const std::string& task_id, const exec::TaskInfo& info,
              const std::string& site, SimTime now);

  /// NOT_FOUND when the repository has no record of the task; UNAVAILABLE
  /// while the store is quarantined (integrity damage: the view cannot be
  /// trusted until repair).
  Result<JobRecord> get(const std::string& task_id) const;

  std::vector<JobRecord> all() const;
  std::size_t size() const { return records_.size(); }

  /// Compacts the WAL to one snapshot of the current repository.
  Status save_snapshot();

  /// Rebuilds the repository from the WAL (last snapshot + record tail).
  /// Replaces in-memory state entirely, publishes nothing, and is
  /// idempotent: recover(); recover() leaves the same repository. A torn
  /// final record is dropped silently (crash artifact); OK with an empty
  /// or missing log (empty repository).
  Status recover();

  /// Canonical serialisation of the whole repository, one record per line
  /// in task-id order — what save_snapshot writes, and what tests
  /// byte-compare across a crash.
  std::string export_state() const;

 private:
  monalisa::Repository* monitoring_;
  Wal* wal_;
  storage::StoreHealth* health_ = nullptr;
  std::map<std::string, JobRecord> records_;
};

}  // namespace gae::jobmon
