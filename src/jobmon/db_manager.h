// DBManager (paper §5.4): each Job Monitoring Service instance owns a
// database repository of job monitoring records. The DBManager controls all
// access to it and publishes job monitoring updates to MonALISA.
//
// With a Wal attached the repository is crash-consistent, BOSS-style: every
// update is appended to the log before it lands in memory, save_snapshot()
// compacts the log, and recover() rebuilds the exact pre-crash view
// (snapshot fold + tail replay) on a restarted instance.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/wal.h"
#include "exec/job.h"
#include "monalisa/repository.h"

namespace gae::jobmon {

/// A stored monitoring record: the task view plus where it ran.
struct JobRecord {
  exec::TaskInfo info;
  std::string site;
  SimTime updated_at = 0;
};

/// Canonical one-line serialisation of a record (the WAL payload; tests
/// byte-compare recovered state through it).
std::string encode_job_record(const std::string& task_id, const JobRecord& record);
Result<std::pair<std::string, JobRecord>> decode_job_record(const std::string& line);

class DBManager {
 public:
  /// `monitoring` may be null (no MonALISA publishing); `wal` may be null
  /// (in-memory only, the historical behaviour).
  explicit DBManager(monalisa::Repository* monitoring, Wal* wal = nullptr)
      : monitoring_(monitoring), wal_(wal) {}

  /// Inserts or refreshes a record, journals the update, and publishes the
  /// state to MonALISA.
  void update(const std::string& task_id, const exec::TaskInfo& info,
              const std::string& site, SimTime now);

  /// NOT_FOUND when the repository has no record of the task.
  Result<JobRecord> get(const std::string& task_id) const;

  std::vector<JobRecord> all() const;
  std::size_t size() const { return records_.size(); }

  /// Compacts the WAL to one snapshot of the current repository.
  Status save_snapshot();

  /// Rebuilds the repository from the WAL (last snapshot + record tail).
  /// Replaces in-memory state entirely, publishes nothing, and is
  /// idempotent: recover(); recover() leaves the same repository. A torn
  /// final record is dropped silently (crash artifact); OK with an empty
  /// or missing log (empty repository).
  Status recover();

  /// Canonical serialisation of the whole repository, one record per line
  /// in task-id order — what save_snapshot writes, and what tests
  /// byte-compare across a crash.
  std::string export_state() const;

 private:
  monalisa::Repository* monitoring_;
  Wal* wal_;
  std::map<std::string, JobRecord> records_;
};

}  // namespace gae::jobmon
