// DBManager (paper §5.4): each Job Monitoring Service instance owns a
// database repository of job monitoring records. The DBManager controls all
// access to it and publishes job monitoring updates to MonALISA.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/job.h"
#include "monalisa/repository.h"

namespace gae::jobmon {

/// A stored monitoring record: the task view plus where it ran.
struct JobRecord {
  exec::TaskInfo info;
  std::string site;
  SimTime updated_at = 0;
};

class DBManager {
 public:
  /// `monitoring` may be null (no MonALISA publishing).
  explicit DBManager(monalisa::Repository* monitoring) : monitoring_(monitoring) {}

  /// Inserts or refreshes a record and publishes the state to MonALISA.
  void update(const std::string& task_id, const exec::TaskInfo& info,
              const std::string& site, SimTime now);

  /// NOT_FOUND when the repository has no record of the task.
  Result<JobRecord> get(const std::string& task_id) const;

  std::vector<JobRecord> all() const;
  std::size_t size() const { return records_.size(); }

 private:
  monalisa::Repository* monitoring_;
  std::map<std::string, JobRecord> records_;
};

}  // namespace gae::jobmon
