#include "jobmon/db_manager.h"

namespace gae::jobmon {

void DBManager::update(const std::string& task_id, const exec::TaskInfo& info,
                       const std::string& site, SimTime now) {
  JobRecord& rec = records_[task_id];
  const bool state_changed = rec.updated_at == 0 || rec.info.state != info.state;
  rec.info = info;
  rec.site = site;
  rec.updated_at = now;

  // "The Job Monitoring Service ... sends an update to MonALISA whenever the
  // state of a job changes" (§5). State transitions go to the event log;
  // progress goes to a numeric series so dashboards can plot it.
  if (monitoring_) {
    if (state_changed) {
      monitoring_->publish_event({now, site, "job_state",
                                  task_id + ":" + exec::task_state_name(info.state)});
    }
    monitoring_->publish(task_id, "progress", now, info.progress);
  }
}

Result<JobRecord> DBManager::get(const std::string& task_id) const {
  auto it = records_.find(task_id);
  if (it == records_.end()) return not_found_error("no record for task " + task_id);
  return it->second;
}

std::vector<JobRecord> DBManager::all() const {
  std::vector<JobRecord> out;
  out.reserve(records_.size());
  for (const auto& [_, rec] : records_) out.push_back(rec);
  return out;
}

}  // namespace gae::jobmon
