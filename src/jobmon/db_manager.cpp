#include "jobmon/db_manager.h"

#include <cstdlib>
#include <sstream>

#include "common/kvcodec.h"
#include "common/log.h"

namespace gae::jobmon {

namespace {

// Composite fields (input files, attributes) pack parts with ';' and ':';
// those delimiters are percent-escaped inside each part so arbitrary
// strings survive (kv::unescape undoes any %XX on the way back).
std::string esc_part(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '%') out += "%25";
    else if (c == ';') out += "%3B";
    else if (c == ':') out += "%3A";
    else out += c;
  }
  return out;
}

std::string unesc_part(const std::string& in) {
  auto r = kv::unescape(in);
  return r.is_ok() ? r.value() : in;
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += ';';
    out += esc_part(parts[i]);
  }
  return out;
}

std::vector<std::string> split(const std::string& s) {
  std::vector<std::string> out;
  if (s.empty()) return out;
  std::istringstream in(s);
  std::string part;
  while (std::getline(in, part, ';')) out.push_back(unesc_part(part));
  return out;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string encode_job_record(const std::string& task_id, const JobRecord& record) {
  const exec::TaskInfo& info = record.info;
  const exec::TaskSpec& spec = info.spec;
  std::map<std::string, std::string> f;
  f["task"] = task_id;
  f["site"] = record.site;
  f["at"] = std::to_string(record.updated_at);
  f["job"] = spec.job_id;
  f["owner"] = spec.owner;
  f["exe"] = spec.executable;
  f["work"] = fmt_double(spec.work_seconds);
  f["prio"] = std::to_string(spec.priority);
  f["ckpt"] = spec.checkpointable ? "1" : "0";
  f["outbytes"] = std::to_string(spec.output_bytes);
  if (!spec.input_files.empty()) f["inputs"] = join(spec.input_files);
  {
    std::string attrs;
    for (const auto& [k, v] : spec.attributes) {
      if (!attrs.empty()) attrs += ';';
      attrs += esc_part(k) + ":" + esc_part(v);
    }
    if (!attrs.empty()) f["attrs"] = attrs;
  }
  f["state"] = std::to_string(static_cast<int>(info.state));
  f["submit"] = std::to_string(info.submit_time);
  f["start"] = std::to_string(info.start_time);
  f["done"] = std::to_string(info.completion_time);
  f["cpu"] = fmt_double(info.cpu_seconds_used);
  f["prog"] = fmt_double(info.progress);
  f["qpos"] = std::to_string(info.queue_position);
  f["node"] = info.node;
  f["inb"] = std::to_string(info.input_bytes_transferred);
  f["outb"] = std::to_string(info.output_bytes_written);
  if (!info.detail.empty()) f["detail"] = info.detail;
  return kv::encode(f);
}

Result<std::pair<std::string, JobRecord>> decode_job_record(const std::string& line) {
  auto fields = kv::decode(line);
  if (!fields.is_ok()) return fields.status();
  const auto& f = fields.value();
  auto field = [&f](const std::string& key) -> std::string {
    auto it = f.find(key);
    return it == f.end() ? std::string() : it->second;
  };
  const std::string task_id = field("task");
  if (task_id.empty()) return invalid_argument_error("job record without task id");

  JobRecord rec;
  rec.site = field("site");
  rec.updated_at = std::strtoll(field("at").c_str(), nullptr, 10);
  exec::TaskSpec& spec = rec.info.spec;
  spec.id = task_id;
  spec.job_id = field("job");
  spec.owner = field("owner");
  spec.executable = field("exe");
  spec.work_seconds = std::strtod(field("work").c_str(), nullptr);
  spec.priority = static_cast<int>(std::strtol(field("prio").c_str(), nullptr, 10));
  spec.checkpointable = field("ckpt") == "1";
  spec.output_bytes = std::strtoull(field("outbytes").c_str(), nullptr, 10);
  spec.input_files = split(field("inputs"));
  {
    // Split raw on ';' and ':' first; each component unescapes separately.
    std::istringstream pairs(field("attrs"));
    std::string pair;
    while (std::getline(pairs, pair, ';')) {
      const std::size_t colon = pair.find(':');
      if (colon != std::string::npos) {
        spec.attributes[unesc_part(pair.substr(0, colon))] =
            unesc_part(pair.substr(colon + 1));
      }
    }
  }
  exec::TaskInfo& info = rec.info;
  info.state = static_cast<exec::TaskState>(std::strtol(field("state").c_str(), nullptr, 10));
  info.submit_time = std::strtoll(field("submit").c_str(), nullptr, 10);
  info.start_time = std::strtoll(field("start").c_str(), nullptr, 10);
  info.completion_time = std::strtoll(field("done").c_str(), nullptr, 10);
  info.cpu_seconds_used = std::strtod(field("cpu").c_str(), nullptr);
  info.progress = std::strtod(field("prog").c_str(), nullptr);
  info.queue_position = static_cast<int>(std::strtol(field("qpos").c_str(), nullptr, 10));
  info.node = field("node");
  info.input_bytes_transferred = std::strtoull(field("inb").c_str(), nullptr, 10);
  info.output_bytes_written = std::strtoull(field("outb").c_str(), nullptr, 10);
  info.detail = field("detail");
  return std::make_pair(task_id, std::move(rec));
}

void DBManager::update(const std::string& task_id, const exec::TaskInfo& info,
                       const std::string& site, SimTime now) {
  if (health_ && !health_->writable()) {
    // Applying in memory what cannot be journaled forks memory from disk;
    // the record stays at its last durable state until repair.
    GAE_LOG_WARN << "jobmon: dropping update for " << task_id << " ("
                 << storage::store_state_name(health_->state())
                 << "): " << health_->reason();
    return;
  }
  JobRecord& rec = records_[task_id];
  const bool state_changed = rec.updated_at == 0 || rec.info.state != info.state;
  rec.info = info;
  rec.site = site;
  rec.updated_at = now;

  if (wal_) {
    const Status s = wal_->append(encode_job_record(task_id, rec));
    if (!s.is_ok()) {
      GAE_LOG_WARN << "jobmon wal append failed for " << task_id << ": " << s.message();
      if (health_) health_->mark_read_only("wal append failed: " + s.message());
    }
  }

  // "The Job Monitoring Service ... sends an update to MonALISA whenever the
  // state of a job changes" (§5). State transitions go to the event log;
  // progress goes to a numeric series so dashboards can plot it.
  if (monitoring_) {
    if (state_changed) {
      monitoring_->publish_event({now, site, "job_state",
                                  task_id + ":" + exec::task_state_name(info.state)});
    }
    monitoring_->publish(task_id, "progress", now, info.progress);
  }
}

Result<JobRecord> DBManager::get(const std::string& task_id) const {
  if (health_ && !health_->readable()) {
    return unavailable_error("jobmon store quarantined: " + health_->reason());
  }
  auto it = records_.find(task_id);
  if (it == records_.end()) return not_found_error("no record for task " + task_id);
  return it->second;
}

std::vector<JobRecord> DBManager::all() const {
  std::vector<JobRecord> out;
  out.reserve(records_.size());
  for (const auto& [_, rec] : records_) out.push_back(rec);
  return out;
}

std::string DBManager::export_state() const {
  std::string out;
  for (const auto& [task_id, rec] : records_) {
    out += encode_job_record(task_id, rec);
    out += '\n';
  }
  return out;
}

Status DBManager::save_snapshot() {
  if (!wal_) return failed_precondition_error("jobmon db has no wal");
  return wal_->write_snapshot(export_state());
}

Status DBManager::recover() {
  if (!wal_) return failed_precondition_error("jobmon db has no wal");
  RecoverStats stats;
  auto read = wal_->recover(&stats);
  if (!read.is_ok()) return read.status();
  if (health_) health_->note_recover(stats);
  const WalReadResult& log = read.value();

  std::map<std::string, JobRecord> recovered;
  std::size_t at = log.replay_start();
  if (at < log.records.size() &&
      log.records[at].type == WalRecord::Type::kSnapshot) {
    // The snapshot is export_state(): one encoded record per line.
    std::istringstream lines(log.records[at].payload);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      auto rec = decode_job_record(line);
      if (!rec.is_ok()) return rec.status();
      recovered[rec.value().first] = std::move(rec).value().second;
    }
    ++at;
  }
  for (; at < log.records.size(); ++at) {
    auto rec = decode_job_record(log.records[at].payload);
    if (!rec.is_ok()) return rec.status();
    recovered[rec.value().first] = std::move(rec).value().second;
  }
  if (log.corrupt) {
    GAE_LOG_WARN << "jobmon wal: corruption mid-log; recovered valid prefix ("
                 << recovered.size() << " records)";
  }
  records_ = std::move(recovered);
  return Status::ok();
}

}  // namespace gae::jobmon
