#include "jobmon/rpc_binding.h"

#include <memory>
#include <mutex>

#include "rpc/deadline.h"
#include "telemetry/instrument.h"

namespace gae::jobmon {

using rpc::Array;
using rpc::CallContext;
using rpc::Struct;
using rpc::Value;

Value report_to_value(const JobMonitorReport& report) {
  Struct out;
  const exec::TaskInfo& info = report.info;
  out["task_id"] = Value(info.spec.id);
  out["job_id"] = Value(info.spec.job_id);
  out["owner"] = Value(info.spec.owner);
  out["status"] = Value(std::string(exec::task_state_name(info.state)));
  out["site"] = Value(report.site);
  out["node"] = Value(info.node);
  out["priority"] = Value(static_cast<std::int64_t>(info.spec.priority));
  out["queue_position"] = Value(static_cast<std::int64_t>(info.queue_position));
  out["progress"] = Value(info.progress);
  out["cpu_seconds_used"] = Value(info.cpu_seconds_used);
  out["elapsed_seconds"] = Value(report.elapsed_seconds);
  out["remaining_seconds"] = Value(report.remaining_seconds);
  out["estimated_runtime_seconds"] = Value(report.estimated_runtime_seconds);
  out["submit_time"] = Value(to_seconds(info.submit_time));
  out["execution_time"] =
      Value(info.start_time == kSimTimeNever ? -1.0 : to_seconds(info.start_time));
  out["completion_time"] =
      Value(info.completion_time == kSimTimeNever ? -1.0 : to_seconds(info.completion_time));
  out["input_bytes"] = Value(static_cast<std::int64_t>(info.input_bytes_transferred));
  out["output_bytes"] = Value(static_cast<std::int64_t>(info.output_bytes_written));
  out["detail"] = Value(info.detail);
  Struct env;
  for (const auto& [k, v] : info.spec.environment) env[k] = Value(v);
  out["environment"] = Value(std::move(env));
  return Value(std::move(out));
}

namespace {

/// All jobmon methods take exactly one string parameter: the task id.
Result<std::string> task_id_param(const Array& params, const char* method) {
  if (params.size() != 1 || !params[0].is_string()) {
    return invalid_argument_error(std::string(method) + "(task_id)");
  }
  return params[0].as_string();
}

/// Bounded-staleness snapshot of every report, rebuilt at most once per
/// staleness window while the host is browned out. Monitoring reads served
/// from it cost one map lookup instead of a fan-out over the execution
/// services — stale data is tolerable for jobmon tiers, absence is not.
struct SnapshotCache {
  std::mutex mutex;
  std::map<std::string, JobMonitorReport> reports;  // by task id
  std::int64_t refreshed_at_us = 0;
  bool valid = false;
};

}  // namespace

void register_jobmon_methods(clarens::ClarensHost& host, JobMonitoringService& service,
                             telemetry::Tracer* tracer,
                             telemetry::MetricsRegistry* metrics,
                             AdmissionController* admission, int staleness_ms,
                             ReadCache* cache) {
  const telemetry::TracedRegistrar d(host.dispatcher(), tracer, metrics);

  // The collector's update feed is the cache's invalidation source: every
  // job-state transition drops that task's entries and the list, so cached
  // reads are stale by at most one TTL *and* never miss a transition.
  if (cache) {
    service.add_update_listener([cache](const std::string& task_id, exec::TaskState) {
      cache->invalidate_task(task_id);
    });
  }

  auto snapshot_cache = std::make_shared<SnapshotCache>();
  const std::int64_t staleness_us = static_cast<std::int64_t>(staleness_ms) * 1000;
  telemetry::Counter* cached_counter =
      metrics ? &metrics->counter("jobmon.brownout_cached") : nullptr;
  // Refreshes the snapshot if it has gone stale and returns a copy of it
  // (copied under the lock; only the brownout path pays this).
  auto snapshot = [snapshot_cache, &service, staleness_us,
                   cached_counter]() -> std::map<std::string, JobMonitorReport> {
    std::lock_guard<std::mutex> lock(snapshot_cache->mutex);
    const std::int64_t now = rpc::steady_now_us();
    if (!snapshot_cache->valid || now - snapshot_cache->refreshed_at_us > staleness_us) {
      snapshot_cache->reports.clear();
      for (auto& report : service.list_all()) {
        std::string id = report.info.spec.id;
        snapshot_cache->reports[std::move(id)] = std::move(report);
      }
      snapshot_cache->refreshed_at_us = now;
      snapshot_cache->valid = true;
    }
    if (cached_counter) cached_counter->inc();
    return snapshot_cache->reports;
  };

  d.register_method(
      "jobmon.info",
      [&service, admission, snapshot, cache](const Array& params,
                                             const CallContext&) -> Result<Value> {
        auto id = task_id_param(params, "jobmon.info");
        if (!id.is_ok()) return id.status();
        const bool browned = admission && admission->browned_out();
        const std::string key = ReadCache::info_key(id.value());
        if (cache) {
          if (auto hit = cache->get(key, browned)) return std::move(*hit);
        }
        if (browned) {
          auto reports = snapshot();
          auto it = reports.find(id.value());
          if (it == reports.end()) {
            return not_found_error("no such task in snapshot: " + id.value());
          }
          Struct out = report_to_value(it->second).as_struct();
          out["stale"] = Value(true);
          Value v(std::move(out));
          if (cache) cache->put(key, v);
          return v;
        }
        auto report = service.info(id.value());
        if (!report.is_ok()) return report.status();
        Struct out = report_to_value(report.value()).as_struct();
        if (cache) {
          // The cached copy is flagged stale up front: by the time it is
          // served again it is, by definition, at least one read old.
          Struct flagged = out;
          flagged["stale"] = Value(true);
          cache->put(key, Value(std::move(flagged)));
        }
        out["stale"] = Value(false);
        return Value(std::move(out));
      });

  d.register_method(
      "jobmon.status",
      [&service, admission, snapshot, cache](const Array& params,
                                             const CallContext&) -> Result<Value> {
        auto id = task_id_param(params, "jobmon.status");
        if (!id.is_ok()) return id.status();
        const bool browned = admission && admission->browned_out();
        const std::string key = ReadCache::status_key(id.value());
        if (cache) {
          if (auto hit = cache->get(key, browned)) return std::move(*hit);
        }
        if (browned) {
          auto reports = snapshot();
          auto it = reports.find(id.value());
          if (it == reports.end()) {
            return not_found_error("no such task in snapshot: " + id.value());
          }
          Value v(std::string(exec::task_state_name(it->second.info.state)));
          if (cache) cache->put(key, v);
          return v;
        }
        auto s = service.status(id.value());
        if (!s.is_ok()) return s.status();
        Value v(std::move(s).value());
        if (cache) cache->put(key, v);
        return v;
      });

  d.register_method("jobmon.remainingTime",
                    [&service](const Array& params, const CallContext&) -> Result<Value> {
                      auto id = task_id_param(params, "jobmon.remainingTime");
                      if (!id.is_ok()) return id.status();
                      auto v = service.remaining_time(id.value());
                      if (!v.is_ok()) return v.status();
                      return Value(v.value());
                    });

  d.register_method("jobmon.elapsedTime",
                    [&service](const Array& params, const CallContext&) -> Result<Value> {
                      auto id = task_id_param(params, "jobmon.elapsedTime");
                      if (!id.is_ok()) return id.status();
                      auto v = service.elapsed_time(id.value());
                      if (!v.is_ok()) return v.status();
                      return Value(v.value());
                    });

  d.register_method("jobmon.queuePosition",
                    [&service](const Array& params, const CallContext&) -> Result<Value> {
                      auto id = task_id_param(params, "jobmon.queuePosition");
                      if (!id.is_ok()) return id.status();
                      auto v = service.queue_position(id.value());
                      if (!v.is_ok()) return v.status();
                      return Value(static_cast<std::int64_t>(v.value()));
                    });

  d.register_method("jobmon.progress",
                    [&service](const Array& params, const CallContext&) -> Result<Value> {
                      auto id = task_id_param(params, "jobmon.progress");
                      if (!id.is_ok()) return id.status();
                      auto v = service.progress(id.value());
                      if (!v.is_ok()) return v.status();
                      return Value(v.value());
                    });

  d.register_method("jobmon.jobSummary",
                    [&service](const Array& params, const CallContext&) -> Result<Value> {
                      auto id = task_id_param(params, "jobmon.jobSummary(job_id)");
                      if (!id.is_ok()) return id.status();
                      auto s = service.job_summary(id.value());
                      if (!s.is_ok()) return s.status();
                      Struct out;
                      out["job_id"] = Value(s.value().job_id);
                      out["tasks_total"] = Value(static_cast<std::int64_t>(s.value().tasks_total));
                      out["running"] = Value(static_cast<std::int64_t>(s.value().running));
                      out["queued"] = Value(static_cast<std::int64_t>(s.value().queued));
                      out["completed"] = Value(static_cast<std::int64_t>(s.value().completed));
                      out["failed"] = Value(static_cast<std::int64_t>(s.value().failed));
                      out["total_cpu_seconds"] = Value(s.value().total_cpu_seconds);
                      out["mean_progress"] = Value(s.value().mean_progress);
                      return Value(std::move(out));
                    });

  d.register_method(
      "jobmon.eventsSince",
      [&service](const Array& params, const CallContext&) -> Result<Value> {
        if (params.empty() || !params[0].is_int()) {
          return invalid_argument_error("jobmon.eventsSince(seq[, max])");
        }
        const auto after = static_cast<std::uint64_t>(params[0].as_int());
        const std::size_t max =
            params.size() > 1 ? static_cast<std::size_t>(params[1].as_int()) : 100;
        Array out;
        for (const auto& ev : service.events_since(after, max)) {
          Struct s;
          s["seq"] = Value(static_cast<std::int64_t>(ev.seq));
          s["time"] = Value(to_seconds(ev.time));
          s["task_id"] = Value(ev.task_id);
          s["site"] = Value(ev.site);
          s["state"] = Value(std::string(exec::task_state_name(ev.state)));
          out.emplace_back(std::move(s));
        }
        return Value(std::move(out));
      });

  d.register_method(
      "jobmon.list",
      [&service, admission, snapshot, cache](const Array&,
                                             const CallContext&) -> Result<Value> {
        const bool browned = admission && admission->browned_out();
        if (cache) {
          if (auto hit = cache->get(ReadCache::kListKey, browned)) return std::move(*hit);
        }
        Array out;
        if (browned) {
          for (const auto& [id, report] : snapshot()) {
            Struct s = report_to_value(report).as_struct();
            s["stale"] = Value(true);
            out.emplace_back(std::move(s));
          }
          Value v(std::move(out));
          if (cache) cache->put(ReadCache::kListKey, v);
          return v;
        }
        for (const auto& report : service.list_all()) {
          out.push_back(report_to_value(report));
        }
        if (cache) {
          Array flagged = out;
          for (auto& item : flagged) item.as_struct()["stale"] = Value(true);
          cache->put(ReadCache::kListKey, Value(std::move(flagged)));
        }
        return Value(std::move(out));
      });

  host.registry().register_service(
      {"jobmon@" + host.name(), host.name(), host.port(), "xmlrpc", {}, 0});
}

}  // namespace gae::jobmon
