// JMExecutable (paper §5.3): the web-service face of the Job Monitoring
// Service. Registers "jobmon.*" methods on a Clarens host and forwards them
// to the JMManager.
#pragma once

#include "clarens/host.h"
#include "jobmon/read_cache.h"
#include "jobmon/service.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gae::jobmon {

/// Serialises a report as an RPC struct (the §5 field list on the wire).
rpc::Value report_to_value(const JobMonitorReport& report);

/// Registers jobmon.info / status / remainingTime / elapsedTime /
/// queuePosition / progress / list on the host. The service must outlive
/// the host. With a tracer/metrics each handler also records an "internal"
/// span under service "jobmon" and jobmon.<method>.{calls,errors} counters.
///
/// With `admission` set, jobmon.info / status / list degrade under
/// brownout: they serve from a bounded-staleness snapshot of every report
/// (rebuilt at most once per staleness_ms), so monitoring reads stop
/// fanning out to the execution services while the host sheds load. info
/// responses carry stale=true/false; snapshot hits count
/// jobmon.brownout_cached.
///
/// With `cache` set, jobmon.info / status / list additionally serve through
/// an always-on TTL read cache: a fresh hit skips the service fan-out
/// entirely (not just under brownout; under brownout the cache accepts
/// older entries per its brownout_ttl_ms). The registration wires the
/// cache's invalidation to the service's update feed — every job-state
/// transition the Job Information Collector observes drops that task's
/// entries and the list — so transitions are visible immediately, not
/// after TTL. Cached info/list payloads carry stale=true (they are, by
/// definition, at least one read old). The cache must outlive the host;
/// on failover, hand ha::PromotionOptions::drop_caches a callback that
/// calls cache->invalidate_all().
void register_jobmon_methods(clarens::ClarensHost& host, JobMonitoringService& service,
                             telemetry::Tracer* tracer = nullptr,
                             telemetry::MetricsRegistry* metrics = nullptr,
                             AdmissionController* admission = nullptr,
                             int staleness_ms = 2000, ReadCache* cache = nullptr);

}  // namespace gae::jobmon
