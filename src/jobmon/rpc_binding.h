// JMExecutable (paper §5.3): the web-service face of the Job Monitoring
// Service. Registers "jobmon.*" methods on a Clarens host and forwards them
// to the JMManager.
#pragma once

#include "clarens/host.h"
#include "jobmon/service.h"

namespace gae::jobmon {

/// Serialises a report as an RPC struct (the §5 field list on the wire).
rpc::Value report_to_value(const JobMonitorReport& report);

/// Registers jobmon.info / status / remainingTime / elapsedTime /
/// queuePosition / progress / list on the host. The service must outlive
/// the host.
void register_jobmon_methods(clarens::ClarensHost& host, JobMonitoringService& service);

}  // namespace gae::jobmon
