// Job Information Collector (paper §5.2): monitors scheduled jobs by
// querying the execution services directly, and pushes an update to the
// DBManager whenever a job completes or terminates with an error.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/execution_service.h"

namespace gae::jobmon {

class JobInformationCollector {
 public:
  /// Called on every state change of any attached service's tasks.
  using UpdateCallback = std::function<void(const std::string& task_id,
                                            const exec::TaskInfo& info,
                                            const std::string& site, SimTime now)>;

  explicit JobInformationCollector(UpdateCallback on_update);
  ~JobInformationCollector();

  JobInformationCollector(const JobInformationCollector&) = delete;
  JobInformationCollector& operator=(const JobInformationCollector&) = delete;

  /// Attaches the collector to a site's execution service.
  void attach(const std::string& site, exec::ExecutionService* service);

  /// Live task info, searched across attached services. NOT_FOUND when no
  /// reachable service knows the task; UNAVAILABLE when the only service
  /// that could know it is down.
  Result<exec::TaskInfo> collect(const std::string& task_id) const;

  /// Site currently hosting the task (live search).
  Result<std::string> site_of(const std::string& task_id) const;

  /// All live tasks as (site, info) pairs.
  std::vector<std::pair<std::string, exec::TaskInfo>> collect_all() const;

  std::vector<std::string> sites() const;

 private:
  UpdateCallback on_update_;
  std::map<std::string, exec::ExecutionService*> services_;
  std::vector<std::pair<exec::ExecutionService*, int>> subscriptions_;
};

}  // namespace gae::jobmon
