#include "common/status.h"

namespace gae {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnauthenticated: return "UNAUTHENTICATED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kNotPrimary: return "NOT_PRIMARY";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status not_found_error(std::string msg) { return {StatusCode::kNotFound, std::move(msg)}; }
Status already_exists_error(std::string msg) { return {StatusCode::kAlreadyExists, std::move(msg)}; }
Status invalid_argument_error(std::string msg) { return {StatusCode::kInvalidArgument, std::move(msg)}; }
Status permission_denied_error(std::string msg) { return {StatusCode::kPermissionDenied, std::move(msg)}; }
Status unauthenticated_error(std::string msg) { return {StatusCode::kUnauthenticated, std::move(msg)}; }
Status failed_precondition_error(std::string msg) { return {StatusCode::kFailedPrecondition, std::move(msg)}; }
Status unavailable_error(std::string msg) { return {StatusCode::kUnavailable, std::move(msg)}; }
Status deadline_exceeded_error(std::string msg) { return {StatusCode::kDeadlineExceeded, std::move(msg)}; }
Status resource_exhausted_error(std::string msg) { return {StatusCode::kResourceExhausted, std::move(msg)}; }
Status internal_error(std::string msg) { return {StatusCode::kInternal, std::move(msg)}; }
Status not_primary_error(std::string msg) { return {StatusCode::kNotPrimary, std::move(msg)}; }

}  // namespace gae
