// Thread-safe leveled logging.
//
// GAE_LOG(info) << "job " << id << " moved to " << site;
//
// The default sink writes to stderr; tests can install a capturing sink.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace gae {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

const char* log_level_name(LogLevel level);

/// Receives every formatted log record. Must be callable from any thread.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Minimum level that is emitted. Default kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replaces the global sink; pass nullptr to restore the stderr sink.
void set_log_sink(LogSink sink);

/// True when `level` would be emitted (used by the macro to skip formatting).
bool log_enabled(LogLevel level);

void log_write(LogLevel level, const std::string& message);

namespace internal {

/// Accumulates one log statement and flushes on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_write(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gae

#define GAE_LOG(severity)                                   \
  if (!::gae::log_enabled(::gae::LogLevel::k##severity)) {  \
  } else                                                    \
    ::gae::internal::LogMessage(::gae::LogLevel::k##severity)

#define GAE_LOG_DEBUG GAE_LOG(Debug)
#define GAE_LOG_INFO GAE_LOG(Info)
#define GAE_LOG_WARN GAE_LOG(Warn)
#define GAE_LOG_ERROR GAE_LOG(Error)
