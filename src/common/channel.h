// Bounded multi-producer multi-consumer blocking channel, used to hand
// monitoring updates between service threads without sharing state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace gae {

template <typename T>
class Channel {
 public:
  /// capacity == 0 means unbounded.
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the channel was closed.
  bool send(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return closed_ || capacity_ == 0 || queue_.size() < capacity_;
    });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking send; false when full or closed.
  bool try_send(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      if (capacity_ != 0 && queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a value arrives or the channel closes empty.
  std::optional<T> receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Wakes all waiters; sends fail afterwards, receives drain the residue.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace gae
