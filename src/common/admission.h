// Overload protection primitives for the service fabric (paper fig. 6: what
// should happen when concurrent clients exceed capacity).
//
// Three cooperating pieces, all clock-injected and telemetry-free so they
// live in gae_common and virtual-time tests are exact:
//
//   AdmissionController — an adaptive concurrency limiter. The static
//     max-in-flight cap the RPC server shipped with degrades every service
//     equally under a client storm; this one adjusts the limit from measured
//     request latency (AIMD driven by the latency gradient: additive raise
//     while the smoothed latency stays near the no-load floor, multiplicative
//     clamp when it drifts past the tolerance), bounds time spent in the
//     acceptor queue CoDel-style, and sheds by criticality tier — bulk
//     estimator queries first, steering control last.
//
//   RetryBudget — a token bucket that caps retries at a fraction of fresh
//     traffic, so client retry policies cannot amplify an overload into a
//     retry storm (each fresh call deposits `ratio` tokens; a retry spends
//     one whole token).
//
//   Criticality — the request tier that rides the x-gae-tier header.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/clock.h"
#include "common/time_types.h"

namespace gae {

/// Request criticality, most critical first. The numeric value is the wire
/// encoding (x-gae-tier header) and the shed order is descending: when the
/// limiter clamps, kBulk is refused first and kControl last.
enum class Criticality : int {
  kControl = 0,  // steering commands: losing one strands a misplaced job
  kStatus = 1,   // job-status reads: stale data is tolerable, absence is not
  kBulk = 2,     // estimator queries: callers have cheap local fallbacks
};

inline constexpr int kCriticalityTiers = 3;

const char* criticality_name(Criticality tier);

/// Clamps an arbitrary wire integer to a valid tier (out-of-range -> kStatus,
/// the default for peers that do not set the header).
Criticality criticality_from_wire(int value);

/// The more critical of two tiers (numerically smaller). A batched request
/// rides the wire at the criticality of its most critical item.
inline constexpr Criticality more_critical(Criticality a, Criticality b) {
  return static_cast<int>(a) <= static_cast<int>(b) ? a : b;
}

struct AdmissionOptions {
  /// Concurrency limit bounds. The limiter never clamps below min_limit
  /// (tier-0 traffic must always have a path in) nor raises above max_limit.
  std::size_t min_limit = 4;
  std::size_t initial_limit = 32;
  std::size_t max_limit = 256;

  /// EWMA factor for the smoothed latency (higher = reacts faster).
  double ewma_alpha = 0.2;
  /// Clamp when smoothed latency exceeds tolerance * the no-load floor.
  double latency_tolerance = 2.0;
  /// Multiplicative decrease applied on clamp.
  double decrease_factor = 0.8;
  /// Additive increase applied while latency stays inside the tolerance.
  std::size_t increase_step = 1;
  /// Limit is reconsidered every this many samples.
  std::size_t samples_per_update = 16;
  /// The latency floor is the min over this window (rotated two-bucket min,
  /// so a slow regime change eventually re-anchors the floor).
  int floor_window_ms = 10'000;

  /// Fraction of the current limit each tier may occupy; must be
  /// non-increasing. Tier 0 may use the whole limit; lower tiers are refused
  /// once in-flight crosses their smaller ceiling, which is what makes shed
  /// order follow criticality.
  std::array<double, kCriticalityTiers> tier_fraction{1.0, 0.9, 0.75};

  /// CoDel-style acceptor-queue bound: shed when the queue delay has stayed
  /// above target for a full interval.
  int queue_target_ms = 5;
  int queue_interval_ms = 100;

  /// Brownout: degraded modes engage while load >= brownout_load or within
  /// brownout_hold_ms of the last clamp.
  double brownout_load = 0.75;
  int brownout_hold_ms = 1'000;
};

/// Thread-safe. try_admit/release/browned_out are lock-free (the request hot
/// path); on_sample and queue_overloaded take one mutex and are called once
/// per request / per connection pickup.
class AdmissionController {
 public:
  explicit AdmissionController(const Clock& clock, AdmissionOptions options = {});

  /// Admit one request of the given tier. A true return must be paired with
  /// release(); false means the request should be shed (the per-tier shed
  /// counter is bumped).
  bool try_admit(Criticality tier);
  void release();

  /// Feed one completed request: handler latency and whether it errored.
  /// Drives the AIMD limit update.
  void on_sample(std::uint64_t latency_us, bool error);

  /// CoDel check on one acceptor-queue delay observation. True = the queue
  /// has been persistently above target; shed this connection.
  bool queue_overloaded(std::uint64_t queue_delay_us);

  std::size_t limit() const { return limit_.load(std::memory_order_relaxed); }
  std::size_t in_flight() const { return in_flight_.load(std::memory_order_relaxed); }
  /// in_flight / limit, the load factor brownout decisions key off.
  double load() const;
  /// True while degraded modes (cheap estimates, cached snapshots) should
  /// serve instead of the full path.
  bool browned_out() const;

  struct Snapshot {
    std::size_t limit = 0;
    std::size_t in_flight = 0;
    std::uint64_t admitted = 0;
    std::array<std::uint64_t, kCriticalityTiers> shed{};
    std::uint64_t queue_shed = 0;
    std::uint64_t clamps = 0;  // multiplicative decreases
    std::uint64_t raises = 0;  // additive increases
    double latency_floor_us = 0.0;
    double latency_ewma_us = 0.0;
    bool browned_out = false;
  };
  Snapshot snapshot() const;

 private:
  const Clock& clock_;
  AdmissionOptions options_;

  std::atomic<std::size_t> limit_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::array<std::atomic<std::uint64_t>, kCriticalityTiers> shed_{};
  std::atomic<std::uint64_t> queue_shed_{0};
  std::atomic<std::uint64_t> clamps_{0};
  std::atomic<std::uint64_t> raises_{0};
  /// Clock instant until which brownout holds after a clamp (µs).
  std::atomic<SimTime> brownout_until_{0};

  // Sample path (one caller at a time is fine; workers serialise briefly).
  mutable std::mutex mutex_;
  double ewma_us_ = 0.0;
  bool ewma_primed_ = false;
  /// Two-bucket rotating min for the latency floor.
  double floor_current_ = 0.0;   // min of the open window (0 = empty)
  double floor_previous_ = 0.0;  // min of the closed window (0 = empty)
  SimTime floor_window_start_ = 0;
  std::size_t samples_since_update_ = 0;
  // CoDel state.
  SimTime queue_above_since_ = 0;  // 0 = below target

  double latency_floor_locked() const;
};

struct RetryBudgetOptions {
  /// Tokens deposited per fresh request; 0.1 caps retries at ~10% of fresh
  /// traffic once the initial bucket drains.
  double ratio = 0.1;
  /// Bucket capacity (also the starting balance, so a cold client can retry
  /// through a brief blip immediately).
  double max_tokens = 10.0;
};

/// Token-bucket retry budget, shared by however many RpcClients serve one
/// logical client. Thread-safe.
class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetOptions options = {});

  /// A fresh (non-retry) request: deposits ratio tokens, capped.
  void on_request();
  /// Spend one token for a retry; false = budget exhausted, do not retry.
  bool try_retry();

  double tokens() const;
  std::uint64_t exhausted() const { return exhausted_.load(std::memory_order_relaxed); }

 private:
  RetryBudgetOptions options_;
  mutable std::mutex mutex_;
  double tokens_;
  std::atomic<std::uint64_t> exhausted_{0};
};

}  // namespace gae
