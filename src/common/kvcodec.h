// Flat key=value line codec shared by the WAL adopters (jobmon records,
// estimator samples): space-separated `key=value` tokens with the
// delimiter characters percent-escaped, so arbitrary strings round-trip
// through one human-greppable line.
#pragma once

#include <map>
#include <string>

#include "common/status.h"

namespace gae::kv {

/// Percent-escapes ' ', '=', '%', '\n', '\r'.
std::string escape(const std::string& in);

/// Reverses escape(); INVALID_ARGUMENT on malformed %XX sequences.
Result<std::string> unescape(const std::string& in);

/// Encodes a map as "k1=v1 k2=v2 ..." (keys in map order, both escaped).
std::string encode(const std::map<std::string, std::string>& fields);

/// Parses a line written by encode(). INVALID_ARGUMENT on malformed tokens.
Result<std::map<std::string, std::string>> decode(const std::string& line);

}  // namespace gae::kv
