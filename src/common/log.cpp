#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace gae {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_sink_mutex;
LogSink g_sink;  // empty => stderr

void stderr_sink(LogLevel level, const std::string& message) {
  // One fprintf call so concurrent records do not interleave mid-line.
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void log_write(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
  } else {
    stderr_sink(level, message);
  }
}

}  // namespace gae
