// Deterministic random number generation for workload synthesis.
//
// Every generator is seeded explicitly; experiments record their seeds so
// figures are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace gae {

/// Seeded PRNG with the distribution helpers the workload generators need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Lognormal parameterised by the *underlying* normal's mu / sigma.
  /// Job runtimes in accounting traces are famously heavy-tailed; lognormal
  /// is the standard model (Downey '97).
  double lognormal(double mu, double sigma);

  /// Exponential with the given mean (not rate).
  double exponential(double mean);

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy tail).
  double pareto(double xm, double alpha);

  /// Index in [0, weights.size()) drawn proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Derives an independent child generator (stable given the same label).
  Rng fork(const std::string& label) const;

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_mix_ = 0;
};

}  // namespace gae
