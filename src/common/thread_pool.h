// Fixed-size worker pool used by the RPC server to execute handlers off the
// accept loop. Tasks are opaque callables; shutdown drains or abandons the
// queue depending on the stop mode.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gae {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false after shutdown began.
  bool submit(std::function<void()> task);

  /// Stops accepting work. With drain=true outstanding tasks finish first;
  /// with drain=false queued-but-unstarted tasks are dropped.
  void shutdown(bool drain = true);

  std::size_t size() const { return workers_.size(); }

  /// Tasks waiting in the queue right now (diagnostics only).
  std::size_t queued() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  /// Serialises joining: concurrent shutdown calls (explicit shutdown racing
  /// the destructor) must not both join the same std::thread objects.
  std::mutex join_mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  bool drain_ = true;
};

}  // namespace gae
