#include "common/thread_pool.h"

#include <algorithm>

namespace gae {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(true); }

bool ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // A concurrent shutdown(false) must win over shutdown(true): once any
    // caller asked to abandon the queue, draining it anyway would run tasks
    // the caller believed cancelled.
    if (!drain) {
      drain_ = false;
      queue_.clear();
    }
  }
  cv_.notify_all();
  // Exactly one caller joins the workers. Without this, an explicit shutdown
  // racing the destructor has both threads pass the "already stopped" guard
  // and both call join() on the same std::thread — undefined behaviour. The
  // join mutex serialises them; the loser arrives after workers_ is cleared
  // and joins nothing.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      if (stopping_ && !drain_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions from handlers are the handler's bug; let them terminate loudly
  }
}

}  // namespace gae
