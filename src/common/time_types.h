// Time representation shared by the simulator and the live services.
//
// All simulated time is kept in integral microseconds (SimTime) so that
// discrete-event runs are bit-for-bit deterministic across platforms; double
// seconds are only used at API edges where humans read them.
#pragma once

#include <cstdint>

namespace gae {

/// Simulated (or wall) time in microseconds since an arbitrary epoch.
using SimTime = std::int64_t;

/// A span of time in microseconds.
using SimDuration = std::int64_t;

inline constexpr SimTime kSimTimeNever = -1;

/// Converts whole/fractional seconds to microseconds, rounding to nearest.
constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * 1e6 + (s >= 0 ? 0.5 : -0.5));
}

/// Converts microseconds to fractional seconds.
constexpr double to_seconds(SimDuration t) { return static_cast<double>(t) / 1e6; }

constexpr SimDuration from_millis(double ms) { return from_seconds(ms / 1e3); }
constexpr double to_millis(SimDuration t) { return static_cast<double>(t) / 1e3; }

}  // namespace gae
