// Minimal key=value configuration, INI-ish ("# comment", "key = value",
// optional "[section]" prefixes flattened to "section.key"). Used by the
// examples so scenarios can be tweaked without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace gae {

class Config {
 public:
  Config() = default;

  /// Parses config text; returns INVALID_ARGUMENT on malformed lines.
  static Result<Config> parse(const std::string& text);

  /// Reads and parses a file; NOT_FOUND when the file cannot be opened.
  static Result<Config> load_file(const std::string& path);

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get_string(const std::string& key, const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback = 0) const;
  double get_double(const std::string& key, double fallback = 0.0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  void set(const std::string& key, const std::string& value) { values_[key] = value; }

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace gae
