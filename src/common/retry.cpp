#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace gae {

namespace {

/// splitmix64: a tiny, well-mixed hash; the standard choice for turning a
/// (seed, counter) pair into an independent deterministic draw.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int RetryPolicy::backoff_ms(int attempt) const {
  if (attempt < 1 || initial_backoff_ms <= 0) return 0;
  double interval = static_cast<double>(initial_backoff_ms) *
                    std::pow(std::max(1.0, backoff_multiplier), attempt - 1);
  interval = std::min(interval, static_cast<double>(max_backoff_ms));
  if (jitter_fraction > 0.0) {
    // Uniform in [-1, 1), derived only from (seed, attempt).
    const std::uint64_t draw = mix64(jitter_seed ^ static_cast<std::uint64_t>(attempt));
    const double unit = static_cast<double>(draw >> 11) / 9007199254740992.0;  // [0,1)
    interval *= 1.0 + jitter_fraction * (2.0 * unit - 1.0);
  }
  return std::max(0, static_cast<int>(interval));
}

bool RetryPolicy::is_retryable(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

CircuitBreaker::CircuitBreaker(const Clock& clock, CircuitBreakerOptions options)
    : clock_(clock), options_(options) {}

bool CircuitBreaker::allow() {
  const SimTime now = clock_.now();
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ < static_cast<SimTime>(options_.open_cooldown_ms) * 1000) {
        ++rejections_;
        return false;
      }
      transition(State::kHalfOpen, now);
      half_open_in_flight_ = 0;
      half_open_successes_ = 0;
      [[fallthrough]];
    case State::kHalfOpen:
      if (half_open_in_flight_ >= options_.half_open_probes) {
        ++rejections_;
        return false;
      }
      ++half_open_in_flight_;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  const SimTime now = clock_.now();
  if (state_ == State::kHalfOpen) {
    ++half_open_successes_;
    if (half_open_successes_ >= options_.half_open_probes) {
      // Recovered: forget the failure history that tripped the breaker.
      transition(State::kClosed, now);
      window_.clear();
      window_failures_ = 0;
    }
    return;
  }
  drop_stale(now);
  window_.push_back({now, true});
  if (window_.size() > options_.window_size) {
    if (!window_.front().ok) --window_failures_;
    window_.pop_front();
  }
}

void CircuitBreaker::record_failure() {
  const SimTime now = clock_.now();
  if (state_ == State::kHalfOpen) {
    trip(now);
    return;
  }
  if (state_ == State::kOpen) return;  // outcome of a straggler; already open
  drop_stale(now);
  window_.push_back({now, false});
  ++window_failures_;
  if (window_.size() > options_.window_size) {
    if (!window_.front().ok) --window_failures_;
    window_.pop_front();
  }
  if (window_.size() >= options_.min_samples &&
      failure_rate() >= options_.failure_rate_threshold) {
    trip(now);
  }
}

double CircuitBreaker::failure_rate() const {
  if (window_.empty()) return 0.0;
  return static_cast<double>(window_failures_) / static_cast<double>(window_.size());
}

void CircuitBreaker::drop_stale(SimTime now) {
  const SimTime horizon = static_cast<SimTime>(options_.window_ms) * 1000;
  while (!window_.empty() && now - window_.front().time > horizon) {
    if (!window_.front().ok) --window_failures_;
    window_.pop_front();
  }
}

void CircuitBreaker::trip(SimTime now) {
  transition(State::kOpen, now);
  opened_at_ = now;
  ++opens_;
  window_.clear();
  window_failures_ = 0;
}

void CircuitBreaker::transition(State to, SimTime now) {
  const State from = state_;
  state_ = to;
  if (from != to && on_transition_) on_transition_(from, to, now);
}

CircuitBreaker::Snapshot CircuitBreaker::snapshot() const {
  Snapshot s;
  s.state = state_;
  s.opens = opens_;
  s.rejections = rejections_;
  s.window_samples = window_.size();
  s.failure_rate = failure_rate();
  return s;
}

const char* circuit_state_name(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace gae
