#include "common/kvcodec.h"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <vector>

namespace gae::kv {

namespace {
bool needs_escape(char c) {
  return c == ' ' || c == '=' || c == '%' || c == '\n' || c == '\r';
}
}  // namespace

std::string escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (needs_escape(c)) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

Result<std::string> unescape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      out += in[i];
      continue;
    }
    if (i + 2 >= in.size() || !std::isxdigit(static_cast<unsigned char>(in[i + 1])) ||
        !std::isxdigit(static_cast<unsigned char>(in[i + 2]))) {
      return invalid_argument_error("bad escape in kv token: " + in);
    }
    out += static_cast<char>(std::stoi(in.substr(i + 1, 2), nullptr, 16));
    i += 2;
  }
  return out;
}

std::string encode(const std::map<std::string, std::string>& fields) {
  std::string line;
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) line += ' ';
    first = false;
    line += escape(key) + "=" + escape(value);
  }
  return line;
}

Result<std::map<std::string, std::string>> decode(const std::string& line) {
  std::map<std::string, std::string> fields;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return invalid_argument_error("kv token missing '=': " + token);
    }
    auto key = unescape(token.substr(0, eq));
    if (!key.is_ok()) return key.status();
    auto value = unescape(token.substr(eq + 1));
    if (!value.is_ok()) return value.status();
    fields[key.value()] = value.value();
  }
  return fields;
}

}  // namespace gae::kv
