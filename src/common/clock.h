// Clock abstraction: services take a Clock& so the same code runs against
// wall time (live deployments, RPC benchmarks) and against the discrete-event
// simulator's virtual time (grid experiments).
#pragma once

#include <atomic>

#include "common/time_types.h"

namespace gae {

/// Source of "now". Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since this clock's epoch.
  virtual SimTime now() const = 0;
};

/// Real time, anchored at construction so tests see small positive values.
class WallClock final : public Clock {
 public:
  WallClock();
  SimTime now() const override;

 private:
  SimTime epoch_;
};

/// A manually advanced clock. The simulator owns one and advances it as
/// events fire; tests use it to script time directly.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(SimTime start = 0) : now_(start) {}

  SimTime now() const override { return now_.load(std::memory_order_acquire); }

  /// Moves time forward (or jumps to an absolute instant). Never goes back.
  void advance_to(SimTime t);
  void advance_by(SimDuration d) { advance_to(now() + d); }

 private:
  std::atomic<SimTime> now_;
};

}  // namespace gae
