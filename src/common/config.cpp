#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace gae {

namespace {

std::string trim(const std::string& s) {
  auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  auto b = std::find_if_not(s.begin(), s.end(), is_space);
  auto e = std::find_if_not(s.rbegin(), s.rend(), is_space).base();
  return b < e ? std::string(b, e) : std::string();
}

}  // namespace

Result<Config> Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == ';') continue;
    if (t.front() == '[') {
      if (t.back() != ']') {
        return invalid_argument_error("config line " + std::to_string(lineno) +
                                      ": unterminated section header");
      }
      section = trim(t.substr(1, t.size() - 2));
      continue;
    }
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      return invalid_argument_error("config line " + std::to_string(lineno) +
                                    ": expected key=value");
    }
    std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty()) {
      return invalid_argument_error("config line " + std::to_string(lineno) +
                                    ": empty key");
    }
    if (!section.empty()) key = section + "." + key;
    cfg.values_[key] = value;
  }
  return cfg;
}

Result<Config> Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return not_found_error("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (...) {
    return fallback;
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return fallback;
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

}  // namespace gae
