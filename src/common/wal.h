// Reusable write-ahead log: the crash-consistency primitive behind the
// Backup & Recovery component (paper §4) generalised for any service state.
//
// A Wal frames opaque payloads as length + CRC32 records over a pluggable
// byte store (memory for tests/simulation, a file for a real deployment —
// the same split as steering's JournalSink). Reads are torn-tail tolerant:
// an incomplete final frame (the normal crash artifact) is dropped silently,
// while a CRC mismatch mid-log stops replay at the corruption point and
// keeps the valid prefix. write_snapshot() atomically replaces the log with
// one snapshot record — periodic snapshot + log truncation in one step —
// and replay folds from the last snapshot forward.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace gae {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the framing checksum.
std::uint32_t crc32(const void* data, std::size_t size);
inline std::uint32_t crc32(const std::string& s) { return crc32(s.data(), s.size()); }

/// Byte-level storage a Wal frames records into. Implementations must make
/// append() durable enough for their deployment and replace() atomic (a
/// crash during replace leaves either the old or the new contents).
class WalStorage {
 public:
  virtual ~WalStorage() = default;

  virtual Status append(const std::string& bytes) = 0;
  virtual Result<std::string> read_all() const = 0;
  /// Atomically replaces the whole log (snapshot + truncation). A crash at
  /// any instant during replace() must leave either the complete old
  /// contents or the complete new contents — never a torn mix; replay of a
  /// torn snapshot would silently drop the entire history behind it.
  /// Because it rewrites the whole medium, a successful replace() clears any
  /// read-only latch (see writable()) — it is the repair path.
  virtual Status replace(const std::string& bytes) = 0;
  /// Flushes buffered writes to stable storage (fsync-equivalent). No-op for
  /// storages with nothing to flush.
  virtual Status sync() { return Status::ok(); }

  /// False once the storage has latched itself read-only after a write
  /// fault (short write, failed flush/fsync). Following fsyncgate
  /// semantics, a failed fsync leaves the on-media tail unknowable, so
  /// appends are refused until replace() rewrites the log wholesale (or
  /// make_writable() is called after out-of-band repair).
  virtual bool writable() const { return true; }
  /// Clears the read-only latch. Only legitimate after the contents have
  /// been re-established out of band; prefer replace(), which does both.
  virtual void make_writable() {}
};

/// In-memory storage for tests and simulation runs.
class MemoryWalStorage final : public WalStorage {
 public:
  Status append(const std::string& bytes) override;
  Result<std::string> read_all() const override;
  Status replace(const std::string& bytes) override;

  const std::string& bytes() const { return bytes_; }
  std::string& mutable_bytes() { return bytes_; }  // tests corrupt this

 private:
  std::string bytes_;
};

/// File-backed storage; appends are flushed so a crash loses at most the
/// record being written, and replace() writes a temp file, fsyncs it, and
/// rename()s it over the log — a crash anywhere in that sequence leaves the
/// complete old log (rename never ran) or the complete new one (rename is
/// atomic), closing the snapshot-then-truncate crash window. read_all()
/// streams through a fixed buffer, so records larger than the buffer still
/// round-trip.
///
/// A short write (ENOSPC mid-frame) or failed flush/fsync latches the
/// storage read-only: the tail on media is torn or unknowable, and blindly
/// appending past it would bury the damage mid-log where recovery drops
/// everything after it. A successful replace() re-establishes the whole
/// file and clears the latch.
class FileWalStorage final : public WalStorage {
 public:
  explicit FileWalStorage(std::string path) : path_(std::move(path)) {}

  Status append(const std::string& bytes) override;
  Result<std::string> read_all() const override;
  Status replace(const std::string& bytes) override;
  Status sync() override;
  bool writable() const override { return writable_.load(std::memory_order_acquire); }
  void make_writable() override { writable_.store(true, std::memory_order_release); }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::atomic<bool> writable_{true};
};

/// One decoded frame.
struct WalRecord {
  enum class Type : std::uint8_t { kRecord = 0, kSnapshot = 1 };
  Type type = Type::kRecord;
  std::string payload;
};

/// Result of decoding a log: the valid prefix plus how the tail ended.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Incomplete final frame dropped (normal after a crash mid-append).
  bool torn_tail = false;
  /// CRC mismatch stopped replay early (everything before it is kept).
  bool corrupt = false;
  /// Bytes consumed by the valid prefix.
  std::size_t valid_bytes = 0;

  /// Index of the first record replay should fold from: just after the last
  /// snapshot, or 0 when the log holds none. The snapshot itself (when
  /// present) is records[snapshot_index()].
  std::size_t replay_start() const;
  /// Index of the last snapshot record, or npos when there is none.
  std::size_t snapshot_index() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// What recovery dropped, so callers can report damage instead of silently
/// keeping the valid prefix (storage::StoreHealth::note_recover publishes
/// these as wal.<stream>.recover.* metrics).
struct RecoverStats {
  /// Frames in the valid prefix replay folds over.
  std::size_t frames_kept = 0;
  /// Damaged frames detected. Decoding stops at the first CRC mismatch, so
  /// this is 0 or 1; anything behind the damage is unframeable and counts
  /// toward bytes_truncated instead.
  std::size_t corrupt_frames = 0;
  /// Bytes past the valid prefix that replay dropped (torn tail and/or
  /// everything from the first corrupt frame on).
  std::size_t bytes_truncated = 0;
  /// Incomplete final frame dropped (the normal crash artifact).
  bool torn_tail = false;
  /// A CRC mismatch stopped replay early.
  bool corrupt = false;

  bool clean() const { return !torn_tail && !corrupt; }
};

/// Append-only log of framed records over a WalStorage.
class Wal {
 public:
  explicit Wal(WalStorage* storage) : storage_(storage) {}

  /// Appends one framed record. INTERNAL/UNAVAILABLE on storage failure.
  Status append(const std::string& payload);

  /// Replaces the log with a single snapshot record (truncates history).
  Status write_snapshot(const std::string& payload);

  /// Decodes the whole log, torn-tail tolerant (see WalReadResult).
  Result<WalReadResult> read() const;

  /// read() plus an accounting of what was dropped: fills `stats` (when
  /// non-null) with the kept/truncated breakdown so recovery paths can
  /// surface damage instead of swallowing it.
  Result<WalReadResult> recover(RecoverStats* stats) const;

  /// Frames a record the way append() does (exposed for tests).
  static std::string encode_frame(WalRecord::Type type, const std::string& payload);
  /// Decodes a byte string of frames (pure; read() uses this).
  static WalReadResult decode(const std::string& bytes);

  std::uint64_t appends() const { return appends_; }
  std::uint64_t snapshots() const { return snapshots_; }

 private:
  WalStorage* storage_;
  std::uint64_t appends_ = 0;
  std::uint64_t snapshots_ = 0;
};

}  // namespace gae
