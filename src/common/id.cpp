#include "common/id.h"

#include <atomic>
#include <chrono>
#include <random>

namespace gae {

std::uint64_t next_sequence() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string make_id(const std::string& prefix) {
  return prefix + "-" + std::to_string(next_sequence());
}

std::string make_token() {
  static std::atomic<std::uint64_t> salt{0};
  const auto t = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  std::mt19937_64 eng(t ^ (salt.fetch_add(1) * 0x9E3779B97F4A7C15ULL));
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (int word = 0; word < 2; ++word) {
    std::uint64_t v = eng();
    for (int i = 0; i < 16; ++i) {
      out.push_back(hex[v & 0xF]);
      v >>= 4;
    }
  }
  return out;
}

}  // namespace gae
