// Error handling for the service APIs.
//
// Services report recoverable failures (unknown job, unauthorized session,
// unreachable site) through Status / Result<T> return values; exceptions are
// reserved for programming errors and transport-level faults.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace gae {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kPermissionDenied,
  kUnauthenticated,
  kFailedPrecondition,
  kUnavailable,
  kDeadlineExceeded,
  kResourceExhausted,
  kInternal,
  /// The callee is a replica that no longer (or does not yet) hold the
  /// primary lease for the state it guards. The message carries a
  /// "leader=host:port" hint when the callee knows who does; clients follow
  /// the hint instead of charging the endpoint's circuit breaker.
  kNotPrimary,
};

/// Human-readable name of a status code ("NOT_FOUND" etc.).
const char* status_code_name(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "NOT_FOUND: no such job".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

Status not_found_error(std::string msg);
Status already_exists_error(std::string msg);
Status invalid_argument_error(std::string msg);
Status permission_denied_error(std::string msg);
Status unauthenticated_error(std::string msg);
Status failed_precondition_error(std::string msg);
Status unavailable_error(std::string msg);
Status deadline_exceeded_error(std::string msg);
Status resource_exhausted_error(std::string msg);
Status internal_error(std::string msg);
Status not_primary_error(std::string msg);

/// A value or an error. `Result<T> r = ...; if (r.is_ok()) use(r.value());`
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}    // NOLINT(google-explicit-constructor)

  bool is_ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // kOk when value_ engaged
};

}  // namespace gae
