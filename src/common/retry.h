// Reusable fault-tolerance primitives for the RPC layer (and anything else
// that talks to an unreliable peer): a retry policy with deterministic
// seeded jitter, and a circuit breaker.
//
// Both are clock-injected so virtual-time tests are exact: the breaker takes
// a Clock& and the retry schedule is a pure function of (policy, attempt),
// which lets tests assert the entire backoff sequence bit-for-bit.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "common/time_types.h"

namespace gae {

class RetryBudget;  // common/admission.h

/// How a caller should retry a failed operation. The schedule is
/// deterministic: backoff_ms(attempt) always returns the same value for the
/// same policy, so chaos tests replay exactly.
struct RetryPolicy {
  /// Total tries including the first (1 = no retry).
  int max_attempts = 3;
  /// Backoff before the first retry.
  int initial_backoff_ms = 50;
  /// Multiplier applied per retry (exponential).
  double backoff_multiplier = 2.0;
  /// Ceiling for a single backoff interval.
  int max_backoff_ms = 5000;
  /// Jitter as a fraction of the interval, in [0, 1]; the drawn offset is in
  /// [-jitter, +jitter] * interval and is a pure function of (seed, attempt).
  double jitter_fraction = 0.1;
  /// Seed for the deterministic jitter draw.
  std::uint64_t jitter_seed = 1;

  /// Optional shared retry budget (common/admission.h). When set, every
  /// retry must win a token first, capping retries at ~ratio of fresh
  /// traffic so client policies cannot amplify an overload into a retry
  /// storm. Must outlive every caller using this policy.
  RetryBudget* budget = nullptr;

  /// Backoff before retry number `attempt` (1-based: 1 = first retry).
  /// Always >= 0; exact given the same policy fields.
  int backoff_ms(int attempt) const;

  /// Codes worth retrying: the peer may recover (UNAVAILABLE) or a later
  /// attempt may fit the budget (DEADLINE_EXCEEDED, RESOURCE_EXHAUSTED).
  /// Semantic faults (NOT_FOUND, INVALID_ARGUMENT, ...) never are.
  static bool is_retryable(StatusCode code);

  /// A policy that never retries.
  static RetryPolicy none() { return RetryPolicy{1, 0, 1.0, 0, 0.0, 1, nullptr}; }
};

/// Options for CircuitBreaker. Defaults are lenient enough that a healthy
/// service never trips on sporadic failures.
struct CircuitBreakerOptions {
  /// Outcomes remembered (sliding window, time-bounded below).
  std::size_t window_size = 32;
  /// Outcomes older than this fall out of the window.
  int window_ms = 60'000;
  /// Trip when the windowed failure rate reaches this, ...
  double failure_rate_threshold = 0.5;
  /// ... but only once the window holds at least this many outcomes.
  std::size_t min_samples = 5;
  /// How long an open breaker rejects before probing (half-open).
  int open_cooldown_ms = 5'000;
  /// Probes admitted while half-open; all must succeed to close.
  int half_open_probes = 1;
};

/// Classic closed/open/half-open circuit breaker.
///
///   closed    -> open       when the windowed failure rate trips
///   open      -> half-open  after open_cooldown_ms
///   half-open -> closed     when the admitted probes all succeed
///   half-open -> open       on any probe failure (cooldown restarts)
///
/// Not thread-safe; guard externally (RpcClient is itself single-threaded).
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const Clock& clock, CircuitBreakerOptions options = {});

  /// True when a call may proceed now. Performs the open -> half-open
  /// transition when the cooldown has elapsed; counts rejections otherwise.
  bool allow();

  /// Report the outcome of a call that allow() admitted.
  void record_success();
  void record_failure();

  State state() const { return state_; }

  /// Times the breaker transitioned closed/half-open -> open.
  std::uint64_t opens() const { return opens_; }
  /// Calls rejected while open.
  std::uint64_t rejections() const { return rejections_; }

  /// Failure rate over the current window (0 when empty).
  double failure_rate() const;

  /// Point-in-time counters for monitoring exports.
  struct Snapshot {
    State state = State::kClosed;
    std::uint64_t opens = 0;
    std::uint64_t rejections = 0;
    std::size_t window_samples = 0;
    double failure_rate = 0.0;
  };
  Snapshot snapshot() const;

  /// Invoked on every state change (trip, half-open probe, close), so
  /// callers can publish breaker health to the monitoring layer. The
  /// listener runs inside allow()/record_* — keep it cheap and reentrancy-free.
  using TransitionListener = std::function<void(State from, State to, SimTime at)>;
  void set_transition_listener(TransitionListener listener) {
    on_transition_ = std::move(listener);
  }

 private:
  void transition(State to, SimTime now);

  struct Outcome {
    SimTime time;
    bool ok;
  };

  void drop_stale(SimTime now);
  void trip(SimTime now);

  const Clock& clock_;
  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  std::deque<Outcome> window_;
  std::size_t window_failures_ = 0;
  SimTime opened_at_ = 0;
  int half_open_in_flight_ = 0;
  int half_open_successes_ = 0;
  std::uint64_t opens_ = 0;
  std::uint64_t rejections_ = 0;
  TransitionListener on_transition_;
};

const char* circuit_state_name(CircuitBreaker::State state);

}  // namespace gae
