#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gae {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LinearRegression::add(double x, double y) {
  ++n_;
  const double n = static_cast<double>(n_);
  const double dx = x - mean_x_;
  const double dy = y - mean_y_;
  mean_x_ += dx / n;
  mean_y_ += dy / n;
  sxx_ += dx * (x - mean_x_);
  syy_ += dy * (y - mean_y_);
  sxy_ += dx * (y - mean_y_);
}

LinearFit LinearRegression::fit() const {
  LinearFit f;
  if (n_ < 2) return f;
  if (sxx_ <= 0) return f;  // all x identical: slope undefined
  f.slope = sxy_ / sxx_;
  f.intercept = mean_y_ - f.slope * mean_x_;
  f.r_squared = syy_ > 0 ? (sxy_ * sxy_) / (sxx_ * syy_) : 0.0;
  f.valid = true;
  return f;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

}  // namespace gae
