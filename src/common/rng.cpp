#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gae {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(std::clamp(p, 0.0, 1.0));
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("exponential mean must be > 0");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0 || alpha <= 0) throw std::invalid_argument("pareto params must be > 0");
  const double u = uniform(0.0, 1.0);
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("weighted_index: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0) throw std::invalid_argument("weighted_index: weights sum to zero");
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;  // floating-point slack lands on the last bucket
}

Rng Rng::fork(const std::string& label) const {
  // FNV-1a over the label, mixed with fresh draws from a copy of the engine,
  // keeps children independent yet reproducible.
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : label) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  std::mt19937_64 copy = engine_;
  return Rng(h ^ copy());
}

}  // namespace gae
