#include "common/clock.h"

#include <chrono>
#include <stdexcept>

namespace gae {

namespace {
SimTime steady_now_us() {
  using namespace std::chrono;
  return duration_cast<microseconds>(steady_clock::now().time_since_epoch()).count();
}
}  // namespace

WallClock::WallClock() : epoch_(steady_now_us()) {}

SimTime WallClock::now() const { return steady_now_us() - epoch_; }

void ManualClock::advance_to(SimTime t) {
  // Monotonic max: concurrent advancers can race, time only moves forward.
  SimTime cur = now_.load(std::memory_order_relaxed);
  while (t > cur && !now_.compare_exchange_weak(cur, t, std::memory_order_release)) {
  }
}

}  // namespace gae
