// Small statistics toolkit used by the estimators and the benchmarks:
// streaming mean/variance, simple linear regression, and percentiles.
#pragma once

#include <cstddef>
#include <vector>

namespace gae {

/// Welford streaming mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ordinary least squares fit y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1]; 0 when undefined.
  double r_squared = 0.0;
  /// False when fewer than two distinct x values were seen.
  bool valid = false;

  double predict(double x) const { return intercept + slope * x; }
};

/// Streaming simple linear regression. Accumulates centred (Welford-style)
/// moments rather than raw power sums: the textbook sxx - sx*sx/n form
/// cancels catastrophically when x values are large-magnitude and close
/// together — exactly the epoch-microsecond timestamps the runtime
/// estimator regresses on — and yields garbage slopes.
class LinearRegression {
 public:
  void add(double x, double y);
  std::size_t count() const { return n_; }
  LinearFit fit() const;

 private:
  std::size_t n_ = 0;
  double mean_x_ = 0, mean_y_ = 0;
  /// Centred second moments: sum (x-mx)^2, sum (x-mx)(y-my), sum (y-my)^2.
  double sxx_ = 0, sxy_ = 0, syy_ = 0;
};

/// Percentile with linear interpolation; `p` in [0,100]. Sorts a copy.
double percentile(std::vector<double> values, double p);

/// Mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& values);

}  // namespace gae
