#include "common/admission.h"

#include <algorithm>

namespace gae {

const char* criticality_name(Criticality tier) {
  switch (tier) {
    case Criticality::kControl: return "control";
    case Criticality::kStatus: return "status";
    case Criticality::kBulk: return "bulk";
  }
  return "?";
}

Criticality criticality_from_wire(int value) {
  if (value < 0 || value >= kCriticalityTiers) return Criticality::kStatus;
  return static_cast<Criticality>(value);
}

AdmissionController::AdmissionController(const Clock& clock, AdmissionOptions options)
    : clock_(clock), options_(options), limit_(options.initial_limit) {
  if (options_.min_limit == 0) options_.min_limit = 1;
  limit_.store(std::clamp(options_.initial_limit, options_.min_limit, options_.max_limit));
}

bool AdmissionController::try_admit(Criticality tier) {
  const std::size_t limit = limit_.load(std::memory_order_relaxed);
  const double fraction = options_.tier_fraction[static_cast<int>(tier)];
  // Every tier keeps at least one slot so min_limit never starves tier 0 and
  // a tiny limit still admits occasional low-tier probes.
  const double ceiling = std::max(1.0, fraction * static_cast<double>(limit));
  const std::size_t now_in_flight =
      in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (static_cast<double>(now_in_flight) > ceiling) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    shed_[static_cast<int>(tier)].fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AdmissionController::release() {
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

double AdmissionController::latency_floor_locked() const {
  if (floor_current_ == 0.0) return floor_previous_;
  if (floor_previous_ == 0.0) return floor_current_;
  return std::min(floor_current_, floor_previous_);
}

void AdmissionController::on_sample(std::uint64_t latency_us, bool error) {
  (void)error;  // handler faults are answers, not congestion signals
  const SimTime now = clock_.now();
  const double sample = static_cast<double>(latency_us);

  std::lock_guard<std::mutex> lock(mutex_);
  // Rotate the floor window so a permanently slower regime re-anchors the
  // floor instead of clamping forever against a stale best case.
  const SimTime window = static_cast<SimTime>(options_.floor_window_ms) * 1000;
  if (floor_window_start_ == 0) floor_window_start_ = now;
  if (now - floor_window_start_ >= window) {
    floor_previous_ = floor_current_;
    floor_current_ = 0.0;
    floor_window_start_ = now;
  }
  if (floor_current_ == 0.0 || sample < floor_current_) floor_current_ = sample;

  if (!ewma_primed_) {
    ewma_us_ = sample;
    ewma_primed_ = true;
  } else {
    ewma_us_ += options_.ewma_alpha * (sample - ewma_us_);
  }

  if (++samples_since_update_ < options_.samples_per_update) return;
  samples_since_update_ = 0;

  const double floor = latency_floor_locked();
  const std::size_t limit = limit_.load(std::memory_order_relaxed);
  if (floor > 0.0 && ewma_us_ > options_.latency_tolerance * floor) {
    // Latency has drifted off the no-load floor: multiplicative decrease.
    const auto clamped = static_cast<std::size_t>(
        static_cast<double>(limit) * options_.decrease_factor);
    limit_.store(std::max(options_.min_limit, clamped), std::memory_order_relaxed);
    clamps_.fetch_add(1, std::memory_order_relaxed);
    brownout_until_.store(now + static_cast<SimTime>(options_.brownout_hold_ms) * 1000,
                          std::memory_order_relaxed);
  } else {
    // Healthy: additive increase toward max_limit.
    limit_.store(std::min(options_.max_limit, limit + options_.increase_step),
                 std::memory_order_relaxed);
    raises_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool AdmissionController::queue_overloaded(std::uint64_t queue_delay_us) {
  const SimTime now = clock_.now();
  const auto target = static_cast<std::uint64_t>(options_.queue_target_ms) * 1000;
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_delay_us <= target) {
    queue_above_since_ = 0;
    return false;
  }
  if (queue_above_since_ == 0) {
    // First observation above target: arm the interval, admit this one.
    queue_above_since_ = now;
    return false;
  }
  if (now - queue_above_since_ <
      static_cast<SimTime>(options_.queue_interval_ms) * 1000) {
    return false;
  }
  // Queue delay has stayed above target for a full interval: shed until an
  // observation drops back below target.
  queue_shed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

double AdmissionController::load() const {
  const std::size_t limit = limit_.load(std::memory_order_relaxed);
  if (limit == 0) return 0.0;
  return static_cast<double>(in_flight_.load(std::memory_order_relaxed)) /
         static_cast<double>(limit);
}

bool AdmissionController::browned_out() const {
  if (load() >= options_.brownout_load) return true;
  return clock_.now() < brownout_until_.load(std::memory_order_relaxed);
}

AdmissionController::Snapshot AdmissionController::snapshot() const {
  Snapshot s;
  s.limit = limit_.load(std::memory_order_relaxed);
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  for (int i = 0; i < kCriticalityTiers; ++i) {
    s.shed[i] = shed_[i].load(std::memory_order_relaxed);
  }
  s.queue_shed = queue_shed_.load(std::memory_order_relaxed);
  s.clamps = clamps_.load(std::memory_order_relaxed);
  s.raises = raises_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.latency_floor_us = latency_floor_locked();
    s.latency_ewma_us = ewma_primed_ ? ewma_us_ : 0.0;
  }
  s.browned_out = browned_out();
  return s;
}

RetryBudget::RetryBudget(RetryBudgetOptions options)
    : options_(options), tokens_(options.max_tokens) {}

void RetryBudget::on_request() {
  std::lock_guard<std::mutex> lock(mutex_);
  tokens_ = std::min(options_.max_tokens, tokens_ + options_.ratio);
}

bool RetryBudget::try_retry() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tokens_ < 1.0) {
    exhausted_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tokens_;
}

}  // namespace gae
