#include "common/wal.h"

#include <array>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define GAE_WAL_HAVE_FSYNC 1
#endif

namespace gae {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

// Frame layout: [u32 payload length][u32 crc of type+payload][u8 type][payload],
// all integers little-endian so logs are portable across hosts.
constexpr std::size_t kHeaderBytes = 4 + 4 + 1;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(const std::string& in, std::size_t at) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[at])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 3])) << 24;
}

// The checksum covers type + payload so a flipped type byte also fails CRC.
std::uint32_t frame_crc(WalRecord::Type type, const std::string& payload) {
  std::string buf;
  buf.reserve(payload.size() + 1);
  buf.push_back(static_cast<char>(type));
  buf += payload;
  return crc32(buf);
}

// True when any well-formed frame (fitting length, known type, matching
// CRC) starts at or after `from`. A genuine torn tail is the suffix of one
// partial append — random payload bytes that validate as a frame with
// probability ~2^-32 — so a hit here means an earlier length prefix is
// lying, not that the file ended mid-write.
bool contains_valid_frame(const std::string& bytes, std::size_t from) {
  for (std::size_t at = from; at + kHeaderBytes <= bytes.size(); ++at) {
    const std::uint32_t len = get_u32(bytes, at);
    if (bytes.size() - at - kHeaderBytes < len) continue;
    const auto type_byte = static_cast<unsigned char>(bytes[at + 8]);
    if (type_byte > static_cast<unsigned char>(WalRecord::Type::kSnapshot)) continue;
    if (crc32(bytes.data() + at + 8, len + 1) == get_u32(bytes, at + 4)) return true;
  }
  return false;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

Status MemoryWalStorage::append(const std::string& bytes) {
  bytes_ += bytes;
  return Status::ok();
}

Result<std::string> MemoryWalStorage::read_all() const { return bytes_; }

Status MemoryWalStorage::replace(const std::string& bytes) {
  bytes_ = bytes;
  return Status::ok();
}

Status FileWalStorage::append(const std::string& bytes) {
  if (!writable()) {
    return failed_precondition_error("wal storage latched read-only: " + path_);
  }
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (!f) return unavailable_error("cannot open wal for append: " + path_);
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (n != bytes.size()) {
    // ENOSPC (or an I/O error) mid-frame: a torn tail is on media. Latch
    // read-only so the next append cannot bury the tear mid-log, where
    // recovery would drop everything behind it.
    writable_.store(false, std::memory_order_release);
    return resource_exhausted_error("short wal append (storage latched): wrote " +
                                    std::to_string(n) + " of " +
                                    std::to_string(bytes.size()) + " bytes: " + path_);
  }
  if (!flushed || !closed) {
    // fsyncgate: after a failed flush the kernel may have dropped the dirty
    // pages; what is on media is unknowable, so stop writing past it.
    writable_.store(false, std::memory_order_release);
    return internal_error("wal append flush failed (storage latched): " + path_);
  }
  return Status::ok();
}

Result<std::string> FileWalStorage::read_all() const {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (!f) return std::string();  // no log yet: an empty history, not an error
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

namespace {

/// Flushes a stdio stream to stable storage where the platform allows.
Status flush_to_disk(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) return internal_error("wal flush failed: " + path);
#ifdef GAE_WAL_HAVE_FSYNC
  if (::fsync(::fileno(f)) != 0) return internal_error("wal fsync failed: " + path);
#endif
  return Status::ok();
}

/// Best-effort fsync of the directory holding `path`, so the rename that
/// published a new log survives power loss too. Failure is not fatal — some
/// filesystems refuse directory fsync — but the data-file fsync above
/// already bounds the damage to "old log still present".
void sync_parent_dir(const std::string& path) {
#ifdef GAE_WAL_HAVE_FSYNC
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

Status FileWalStorage::sync() {
  // Appends go through short-lived fopen("ab") handles that are flushed and
  // closed per call; syncing re-opens the log and fsyncs its contents.
#ifdef GAE_WAL_HAVE_FSYNC
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return Status::ok();  // no log yet: nothing to sync
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    // A failed fsync is not transient: the kernel may already have thrown
    // away the dirty pages it could not write. Latch (fsyncgate).
    writable_.store(false, std::memory_order_release);
    return internal_error("wal fsync failed (storage latched): " + path_);
  }
#endif
  return Status::ok();
}

Status FileWalStorage::replace(const std::string& bytes) {
  // Snapshot + truncation must be atomic: write the new log to a temp file,
  // force it to stable storage, then rename() over the old log. A crash
  // before the rename leaves the old log intact (the stale .tmp is simply
  // overwritten by the next replace); a crash after it leaves the complete
  // new log — the fsync ordered the data before the publish.
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return unavailable_error("cannot open wal tmp: " + tmp);
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  if (n != bytes.size()) {
    std::fclose(f);
    return internal_error("short wal tmp write: " + tmp);
  }
  const Status flushed = flush_to_disk(f, tmp);
  const bool closed = std::fclose(f) == 0;
  if (!flushed.is_ok()) return flushed;
  if (!closed) return internal_error("wal tmp close failed: " + tmp);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return internal_error("wal rename failed: " + tmp + " -> " + path_);
  }
  sync_parent_dir(path_);
  // The whole file was rewritten and published atomically: whatever torn or
  // unsyncable tail latched the storage is gone, so writes may resume.
  writable_.store(true, std::memory_order_release);
  return Status::ok();
}

std::size_t WalReadResult::snapshot_index() const {
  for (std::size_t i = records.size(); i-- > 0;) {
    if (records[i].type == WalRecord::Type::kSnapshot) return i;
  }
  return npos;
}

std::size_t WalReadResult::replay_start() const {
  const std::size_t snap = snapshot_index();
  return snap == npos ? 0 : snap;
}

std::string Wal::encode_frame(WalRecord::Type type, const std::string& payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, frame_crc(type, payload));
  frame.push_back(static_cast<char>(type));
  frame += payload;
  return frame;
}

WalReadResult Wal::decode(const std::string& bytes) {
  WalReadResult result;
  std::size_t at = 0;
  while (at < bytes.size()) {
    if (bytes.size() - at < kHeaderBytes) {
      result.torn_tail = true;
      break;
    }
    const std::uint32_t len = get_u32(bytes, at);
    const std::uint32_t crc = get_u32(bytes, at + 4);
    if (bytes.size() - at - kHeaderBytes < len) {
      // An incomplete final frame is the normal crash artifact — but only
      // when nothing decodable follows it. A corrupted length prefix lands
      // here too (the inflated length runs past end-of-log), and calling
      // that a torn tail would silently drop every intact frame behind the
      // damage without quarantining the store. If the "torn" region still
      // contains a well-formed frame, the length field is lying: that is
      // corruption, and recovery must say so.
      if (contains_valid_frame(bytes, at + 1)) {
        result.corrupt = true;
      } else {
        result.torn_tail = true;
      }
      break;
    }
    // Type byte and payload are contiguous on the wire; checksum both.
    if (crc32(bytes.data() + at + 8, len + 1) != crc) {
      result.corrupt = true;
      break;
    }
    const auto type_byte = static_cast<unsigned char>(bytes[at + 8]);
    if (type_byte > static_cast<unsigned char>(WalRecord::Type::kSnapshot)) {
      result.corrupt = true;  // unknown type: written by a future version
      break;
    }
    WalRecord rec;
    rec.type = static_cast<WalRecord::Type>(type_byte);
    rec.payload = bytes.substr(at + kHeaderBytes, len);
    at += kHeaderBytes + len;
    result.valid_bytes = at;
    result.records.push_back(std::move(rec));
  }
  return result;
}

Status Wal::append(const std::string& payload) {
  if (!storage_) return failed_precondition_error("wal has no storage");
  const Status s = storage_->append(encode_frame(WalRecord::Type::kRecord, payload));
  if (s.is_ok()) ++appends_;
  return s;
}

Status Wal::write_snapshot(const std::string& payload) {
  if (!storage_) return failed_precondition_error("wal has no storage");
  const Status s = storage_->replace(encode_frame(WalRecord::Type::kSnapshot, payload));
  if (s.is_ok()) ++snapshots_;
  return s;
}

Result<WalReadResult> Wal::read() const { return recover(nullptr); }

Result<WalReadResult> Wal::recover(RecoverStats* stats) const {
  if (!storage_) return failed_precondition_error("wal has no storage");
  auto bytes = storage_->read_all();
  if (!bytes.is_ok()) return bytes.status();
  WalReadResult result = decode(bytes.value());
  if (stats) {
    stats->frames_kept = result.records.size();
    stats->corrupt_frames = result.corrupt ? 1 : 0;
    stats->bytes_truncated = bytes.value().size() - result.valid_bytes;
    stats->torn_tail = result.torn_tail;
    stats->corrupt = result.corrupt;
  }
  return result;
}

}  // namespace gae
