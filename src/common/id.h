// Identifier types shared across the services. Jobs, tasks, sites, sessions
// and users are all addressed by strings on the wire (the services are
// language-neutral web services), with monotonic generators for uniqueness.
#pragma once

#include <cstdint>
#include <string>

namespace gae {

/// Globally ordered unique suffix (process-wide, thread-safe).
std::uint64_t next_sequence();

/// "job-1", "task-42", "sess-7" ... prefix + process-unique sequence.
std::string make_id(const std::string& prefix);

/// Random-looking 32-hex-char token for session keys.
std::string make_token();

}  // namespace gae
