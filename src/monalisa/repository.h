// MonALISA-substitute monitoring repository.
//
// The paper's services use MonALISA two ways: the DBManager publishes every
// job state change to it (§5.4), and the scheduler reads per-site load from
// it when ranking sites (§6.1 step d). This repository provides both: a
// time-series store of numeric metrics keyed by (source, metric), a text
// event log, pub/sub, and windowed aggregation. A PeriodicSampler drives
// recurring measurements in virtual time.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_types.h"
#include "sim/engine.h"

namespace gae::monalisa {

struct MetricPoint {
  SimTime time;
  double value;
};

struct TextEvent {
  SimTime time;
  std::string source;
  std::string kind;
  std::string payload;
};

/// Edge-triggered threshold alarm on one metric series.
struct AlarmSpec {
  std::string source;
  std::string metric;
  double threshold = 0.0;
  /// true: fire when the value rises to >= threshold; false: falls to <=.
  bool on_rise = true;
};

struct AlarmEvent {
  AlarmSpec spec;
  MetricPoint point;
};

class Repository {
 public:
  /// `max_points_per_series` bounds memory; older points are dropped.
  explicit Repository(std::size_t max_points_per_series = 4096)
      : max_points_(max_points_per_series) {}

  // -- Numeric metrics ------------------------------------------------------

  void publish(const std::string& source, const std::string& metric, SimTime time,
               double value);

  /// Most recent point; NOT_FOUND for unknown series.
  Result<MetricPoint> latest(const std::string& source, const std::string& metric) const;

  /// Points with since <= time <= until, oldest first.
  std::vector<MetricPoint> series(const std::string& source, const std::string& metric,
                                  SimTime since, SimTime until) const;

  /// Mean over points within [now - window, now]; NOT_FOUND when empty.
  Result<double> windowed_average(const std::string& source, const std::string& metric,
                                  SimTime now, SimDuration window) const;

  /// All (source, metric) pairs currently stored.
  std::vector<std::pair<std::string, std::string>> series_names() const;

  // -- Text events (job state updates from the DBManager) -------------------

  void publish_event(TextEvent event);
  std::vector<TextEvent> events_since(SimTime since) const;
  std::size_t event_count() const { return events_.size(); }

  // -- Subscriptions ---------------------------------------------------------

  using MetricCallback =
      std::function<void(const std::string& source, const std::string& metric,
                         const MetricPoint&)>;
  using EventCallback = std::function<void(const TextEvent&)>;
  using AlarmCallback = std::function<void(const AlarmEvent&)>;

  int subscribe_metrics(MetricCallback cb);
  int subscribe_events(EventCallback cb);

  /// Arms an edge-triggered alarm: the callback fires when the series
  /// crosses the threshold in the armed direction (not on every sample
  /// beyond it). MonALISA calls these filters/alerts.
  int add_alarm(AlarmSpec spec, AlarmCallback cb);

  void unsubscribe(int token);

  const std::vector<AlarmEvent>& alarm_log() const { return alarm_log_; }

 private:
  using SeriesKey = std::pair<std::string, std::string>;

  std::size_t max_points_;
  std::map<SeriesKey, std::deque<MetricPoint>> series_;
  std::deque<TextEvent> events_;
  struct AlarmState {
    AlarmSpec spec;
    AlarmCallback callback;
    bool armed = true;  // rearmed when the series returns across the threshold
  };

  std::map<int, MetricCallback> metric_subs_;
  std::map<int, EventCallback> event_subs_;
  std::map<int, AlarmState> alarms_;
  std::vector<AlarmEvent> alarm_log_;
  int next_token_ = 1;
};

/// Fires `sample` every `interval` of virtual time, forever (until
/// destroyed). Used to publish per-site load to the repository the way
/// MonALISA farm agents do.
class PeriodicSampler {
 public:
  PeriodicSampler(sim::Simulation& sim, SimDuration interval, std::function<void()> sample);
  ~PeriodicSampler();

  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

 private:
  void arm();

  sim::Simulation& sim_;
  SimDuration interval_;
  std::function<void()> sample_;
  sim::EventId pending_ = sim::kInvalidEvent;
  bool stopped_ = false;
};

}  // namespace gae::monalisa
