#include "monalisa/repository.h"

#include <algorithm>

namespace gae::monalisa {

void Repository::publish(const std::string& source, const std::string& metric,
                         SimTime time, double value) {
  auto& points = series_[{source, metric}];
  points.push_back({time, value});
  while (points.size() > max_points_) points.pop_front();
  for (const auto& [_, cb] : metric_subs_) cb(source, metric, points.back());

  for (auto& [token, alarm] : alarms_) {
    if (alarm.spec.source != source || alarm.spec.metric != metric) continue;
    const bool beyond = alarm.spec.on_rise ? value >= alarm.spec.threshold
                                           : value <= alarm.spec.threshold;
    if (beyond && alarm.armed) {
      alarm.armed = false;
      AlarmEvent ev{alarm.spec, {time, value}};
      alarm_log_.push_back(ev);
      if (alarm.callback) alarm.callback(ev);
    } else if (!beyond) {
      alarm.armed = true;
    }
  }
}

Result<MetricPoint> Repository::latest(const std::string& source,
                                       const std::string& metric) const {
  auto it = series_.find({source, metric});
  if (it == series_.end() || it->second.empty()) {
    return not_found_error("no data for " + source + "/" + metric);
  }
  return it->second.back();
}

std::vector<MetricPoint> Repository::series(const std::string& source,
                                            const std::string& metric, SimTime since,
                                            SimTime until) const {
  std::vector<MetricPoint> out;
  auto it = series_.find({source, metric});
  if (it == series_.end()) return out;
  for (const auto& p : it->second) {
    if (p.time >= since && p.time <= until) out.push_back(p);
  }
  return out;
}

Result<double> Repository::windowed_average(const std::string& source,
                                            const std::string& metric, SimTime now,
                                            SimDuration window) const {
  const auto points = series(source, metric, now - window, now);
  if (points.empty()) return not_found_error("no recent data for " + source + "/" + metric);
  double sum = 0;
  for (const auto& p : points) sum += p.value;
  return sum / static_cast<double>(points.size());
}

std::vector<std::pair<std::string, std::string>> Repository::series_names() const {
  std::vector<std::pair<std::string, std::string>> names;
  names.reserve(series_.size());
  for (const auto& [key, _] : series_) names.push_back(key);
  return names;
}

void Repository::publish_event(TextEvent event) {
  events_.push_back(std::move(event));
  while (events_.size() > max_points_ * 4) events_.pop_front();
  for (const auto& [_, cb] : event_subs_) cb(events_.back());
}

std::vector<TextEvent> Repository::events_since(SimTime since) const {
  std::vector<TextEvent> out;
  for (const auto& e : events_) {
    if (e.time >= since) out.push_back(e);
  }
  return out;
}

int Repository::subscribe_metrics(MetricCallback cb) {
  const int token = next_token_++;
  metric_subs_[token] = std::move(cb);
  return token;
}

int Repository::subscribe_events(EventCallback cb) {
  const int token = next_token_++;
  event_subs_[token] = std::move(cb);
  return token;
}

int Repository::add_alarm(AlarmSpec spec, AlarmCallback cb) {
  const int token = next_token_++;
  alarms_[token] = {std::move(spec), std::move(cb), true};
  return token;
}

void Repository::unsubscribe(int token) {
  metric_subs_.erase(token);
  event_subs_.erase(token);
  alarms_.erase(token);
}

PeriodicSampler::PeriodicSampler(sim::Simulation& sim, SimDuration interval,
                                 std::function<void()> sample)
    : sim_(sim), interval_(interval), sample_(std::move(sample)) {
  arm();
}

PeriodicSampler::~PeriodicSampler() {
  stopped_ = true;
  if (pending_ != sim::kInvalidEvent) sim_.cancel(pending_);
}

void PeriodicSampler::arm() {
  pending_ = sim_.schedule_after(interval_, [this] {
    if (stopped_) return;
    sample_();
    arm();
  });
}

}  // namespace gae::monalisa
