// Demand-driven replication manager.
//
// Watches execution services: every time a task stages a remote input, the
// access is recorded against (file, destination site). Files that keep
// being pulled to a site they do not live on get replicated there in the
// background, so future jobs of the same kind start without WAN staging —
// exactly the scheduler/transfer-estimator interplay the paper's data-access
// story needs a substrate for.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/execution_service.h"
#include "replica/catalog.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace gae::replica {

struct ReplicationOptions {
  /// Remote accesses of (file, site) before a background replica is made.
  int hot_access_threshold = 3;
  /// Background transfers in flight at once.
  int max_concurrent_transfers = 2;
};

struct ReplicationStats {
  std::size_t replicas_created = 0;
  std::uint64_t bytes_transferred = 0;
  std::size_t accesses_recorded = 0;
};

class ReplicationManager {
 public:
  ReplicationManager(sim::Simulation& sim, sim::Grid& grid, ReplicaCatalog& catalog,
                     ReplicationOptions options = {});
  ~ReplicationManager();

  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  /// Watches a site's execution service for staging transitions.
  void watch(exec::ExecutionService& service);

  /// Routes background replication through the shared network manager so it
  /// contends with staging traffic. Null = uncontended analytic transfers.
  void use_network(sim::NetworkManager* network) { network_ = network; }

  /// Records one access of `file` from `dst_site`; may trigger replication.
  void record_access(const std::string& file, const std::string& dst_site);

  /// Explicitly replicates a file to a site (background transfer in virtual
  /// time). ALREADY_EXISTS if the site already holds it.
  Status replicate(const std::string& file, const std::string& dst_site);

  const ReplicationStats& stats() const { return stats_; }
  int transfers_in_flight() const { return in_flight_; }

 private:
  void start_next_transfer();

  struct PendingTransfer {
    std::string file;
    std::string dst;
  };

  sim::Simulation& sim_;
  sim::Grid& grid_;
  sim::NetworkManager* network_ = nullptr;
  ReplicaCatalog& catalog_;
  ReplicationOptions options_;
  std::map<std::pair<std::string, std::string>, int> access_counts_;
  std::set<std::pair<std::string, std::string>> active_;  // queued or in flight
  std::vector<PendingTransfer> queue_;
  int in_flight_ = 0;
  ReplicationStats stats_;
  std::vector<std::pair<exec::ExecutionService*, int>> subscriptions_;
};

}  // namespace gae::replica
