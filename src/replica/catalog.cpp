#include "replica/catalog.h"

#include <limits>

namespace gae::replica {

Status ReplicaCatalog::register_replica(const std::string& file, const std::string& site,
                                        SimTime now) {
  if (!grid_.has_site(site)) return not_found_error("unknown site: " + site);
  auto size = grid_.site(site).file_size(file);
  if (!size.is_ok()) {
    return failed_precondition_error("file " + file + " is not stored at " + site);
  }
  entries_[file][site] = {site, size.value(), now};
  return Status::ok();
}

Status ReplicaCatalog::unregister_replica(const std::string& file,
                                          const std::string& site) {
  auto it = entries_.find(file);
  if (it == entries_.end() || it->second.erase(site) == 0) {
    return not_found_error("no replica of " + file + " at " + site);
  }
  if (it->second.empty()) entries_.erase(it);
  return Status::ok();
}

std::vector<ReplicaInfo> ReplicaCatalog::replicas(const std::string& file) const {
  std::vector<ReplicaInfo> out;
  auto it = entries_.find(file);
  if (it == entries_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [_, info] : it->second) out.push_back(info);
  return out;
}

std::size_t ReplicaCatalog::replica_count(const std::string& file) const {
  auto it = entries_.find(file);
  return it == entries_.end() ? 0 : it->second.size();
}

bool ReplicaCatalog::has_replica(const std::string& file, const std::string& site) const {
  auto it = entries_.find(file);
  return it != entries_.end() && it->second.count(site) != 0;
}

Result<std::string> ReplicaCatalog::best_source(const std::string& file,
                                                const std::string& dst) const {
  auto it = entries_.find(file);
  if (it == entries_.end() || it->second.empty()) {
    return not_found_error("no replicas of " + file);
  }
  std::string best;
  SimDuration best_time = std::numeric_limits<SimDuration>::max();
  for (const auto& [site, info] : it->second) {
    const SimDuration t = grid_.transfer_time(site, dst, info.bytes);
    if (t != kSimTimeNever && t < best_time) {
      best_time = t;
      best = site;
    }
  }
  if (best.empty()) return not_found_error("no reachable replica of " + file);
  return best;
}

std::vector<std::string> ReplicaCatalog::files() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [file, _] : entries_) out.push_back(file);
  return out;
}

void ReplicaCatalog::scan(SimTime now) {
  for (const auto& site_name : grid_.site_names()) {
    for (const auto& [file, bytes] : grid_.site(site_name).files()) {
      ReplicaInfo& info = entries_[file][site_name];
      if (info.site.empty()) {
        info = {site_name, bytes, now};
      } else {
        info.bytes = bytes;
      }
    }
  }
}

}  // namespace gae::replica
