#include "replica/replication.h"

#include <algorithm>

#include "common/log.h"

namespace gae::replica {

ReplicationManager::ReplicationManager(sim::Simulation& sim, sim::Grid& grid,
                                       ReplicaCatalog& catalog, ReplicationOptions options)
    : sim_(sim), grid_(grid), catalog_(catalog), options_(options) {}

ReplicationManager::~ReplicationManager() {
  for (auto& [service, token] : subscriptions_) service->unsubscribe(token);
}

void ReplicationManager::watch(exec::ExecutionService& service) {
  exec::ExecutionService* svc = &service;
  const int token = svc->subscribe([this, svc](const exec::TaskEvent& ev) {
    if (ev.new_state != exec::TaskState::kStaging) return;
    auto info = svc->query(ev.task_id);
    if (!info.is_ok()) return;
    for (const auto& file : info.value().spec.input_files) {
      if (!grid_.site(svc->site()).has_file(file)) {
        record_access(file, svc->site());
      }
    }
  });
  subscriptions_.emplace_back(svc, token);
}

void ReplicationManager::record_access(const std::string& file,
                                       const std::string& dst_site) {
  ++stats_.accesses_recorded;
  const int count = ++access_counts_[{file, dst_site}];
  if (count == options_.hot_access_threshold) {
    const Status s = replicate(file, dst_site);
    if (!s.is_ok() && s.code() != StatusCode::kAlreadyExists) {
      GAE_LOG(Debug) << "replication of " << file << " to " << dst_site
                     << " not started: " << s;
    }
  }
}

Status ReplicationManager::replicate(const std::string& file, const std::string& dst) {
  if (!grid_.has_site(dst)) return not_found_error("unknown site: " + dst);
  if (grid_.site(dst).has_file(file)) {
    return already_exists_error(file + " already at " + dst);
  }
  if (active_.count({file, dst})) {
    return already_exists_error("replication already queued or in flight");
  }
  // Verify a source exists now; the transfer itself re-resolves when it runs.
  catalog_.scan(sim_.now());
  auto src = catalog_.best_source(file, dst);
  if (!src.is_ok()) return src.status();

  active_.insert({file, dst});
  queue_.push_back({file, dst});
  start_next_transfer();
  return Status::ok();
}

void ReplicationManager::start_next_transfer() {
  while (in_flight_ < options_.max_concurrent_transfers && !queue_.empty()) {
    const PendingTransfer transfer = queue_.front();
    queue_.erase(queue_.begin());

    auto src = catalog_.best_source(transfer.file, transfer.dst);
    if (!src.is_ok()) {
      active_.erase({transfer.file, transfer.dst});
      continue;
    }
    auto size = grid_.site(src.value()).file_size(transfer.file);
    if (!size.is_ok()) {
      active_.erase({transfer.file, transfer.dst});
      continue;
    }

    ++in_flight_;
    const std::uint64_t bytes = size.value();
    auto finish = [this, transfer, bytes] {
      --in_flight_;
      active_.erase({transfer.file, transfer.dst});
      grid_.site(transfer.dst).store_file(transfer.file, bytes);
      catalog_.register_replica(transfer.file, transfer.dst, sim_.now());
      ++stats_.replicas_created;
      stats_.bytes_transferred += bytes;
      GAE_LOG(Info) << "replicated " << transfer.file << " to " << transfer.dst;
      start_next_transfer();
    };
    if (network_) {
      auto started = network_->start_transfer(src.value(), transfer.dst, bytes, finish);
      if (!started.is_ok()) {
        --in_flight_;
        active_.erase({transfer.file, transfer.dst});
        continue;
      }
    } else {
      const SimDuration duration =
          grid_.transfer_time(src.value(), transfer.dst, size.value());
      sim_.schedule_after(duration, finish);
    }
  }
}

}  // namespace gae::replica
