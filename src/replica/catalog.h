// Replica catalog: the data-grid half of the paper's problem statement
// ("selecting and accessing datasets from suitable storage elements").
// Tracks which sites hold which logical files and answers best-source
// queries; the replication manager (replication.h) keeps it warm.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/grid.h"

namespace gae::replica {

struct ReplicaInfo {
  std::string site;
  std::uint64_t bytes = 0;
  SimTime registered_at = 0;
};

class ReplicaCatalog {
 public:
  explicit ReplicaCatalog(sim::Grid& grid) : grid_(grid) {}

  /// Registers a replica; the file must actually exist on the site's storage
  /// element (FAILED_PRECONDITION otherwise).
  Status register_replica(const std::string& file, const std::string& site, SimTime now);

  Status unregister_replica(const std::string& file, const std::string& site);

  /// All known replicas of a logical file (may be empty).
  std::vector<ReplicaInfo> replicas(const std::string& file) const;

  std::size_t replica_count(const std::string& file) const;
  bool has_replica(const std::string& file, const std::string& site) const;

  /// Site with the cheapest transfer into `dst`; NOT_FOUND when uncatalogued.
  Result<std::string> best_source(const std::string& file, const std::string& dst) const;

  /// All logical file names in the catalog.
  std::vector<std::string> files() const;

  /// Rebuilds the catalog from the grid's storage elements (picks up task
  /// outputs and out-of-band placements).
  void scan(SimTime now);

 private:
  sim::Grid& grid_;
  // file -> site -> info
  std::map<std::string, std::map<std::string, ReplicaInfo>> entries_;
};

}  // namespace gae::replica
