// Dapper-style per-request trace propagation. A TraceContext
// (trace_id / span_id / parent_span_id) rides every RPC hop — in the
// x-gae-trace HTTP header and in a reserved metadata field of the
// JSON-RPC / XML-RPC body — so one steering command assembles into a single
// cross-service trace: client span -> clarens-host server span -> steering
// span -> downstream hops. Spans are recorded into a bounded in-memory
// Tracer per process and exported via the telemetry.trace RPC method.
//
// Propagation inside a process is ambient: a thread-local holds the current
// context, ScopedSpan pushes a child on construction and pops on
// destruction, and RpcClient injects whatever is current at call time.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace gae::telemetry {

/// The propagated triple. trace_id groups all spans of one request; span_id
/// names this hop; parent_span_id links to the causing hop (0 at the root).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  bool valid() const { return trace_id != 0 && span_id != 0; }
};

/// Wire format: "<trace_id>;<span_id>;<parent_span_id>", each 16 lowercase
/// hex digits (e.g. "00c0ffee00c0ffee;0000000000000001;0000000000000000").
std::string format_trace(const TraceContext& ctx);

/// Parses the wire format; an invalid TraceContext (trace_id 0) for empty
/// or malformed input — propagation degrades to starting a fresh trace.
TraceContext parse_trace(const std::string& text);

/// Process-unique non-zero 64-bit id (splitmix64 over a per-thread counter
/// seeded randomly on first use).
std::uint64_t next_trace_id();

/// The ambient context of the calling thread (invalid when no span is open).
TraceContext current_trace();

/// One finished hop.
struct Span {
  TraceContext context;
  std::string service;  // which service recorded it ("clarens-host", "steering")
  std::string name;     // usually the RPC method, e.g. "steering.move"
  std::string kind;     // "client", "server" or "internal"
  std::int64_t start_us = 0;     // wall microseconds since the unix epoch
  std::int64_t duration_us = 0;
  StatusCode status = StatusCode::kOk;
};

/// Bounded in-memory span sink (one per process; tests may share one across
/// in-process hosts to assemble multi-service traces directly). Thread-safe.
class Tracer {
 public:
  /// Default capacity keeps the ring ~330KB (2048 spans × ~160B) so steady-
  /// state recording stays inside L2; raise it for tools that inspect long
  /// histories (the bounded window only affects telemetry.trace lookback,
  /// not metrics).
  explicit Tracer(std::size_t max_spans = 2048) : max_spans_(max_spans) {}

  void record(Span span);

  /// All retained spans, oldest first.
  std::vector<Span> spans() const;

  /// Retained spans belonging to `trace_id`, oldest first.
  std::vector<Span> trace(std::uint64_t trace_id) const;

  std::size_t span_count() const;
  /// Spans evicted because the buffer was full.
  std::uint64_t dropped() const;

  void clear();

  /// Process-wide default tracer.
  static Tracer& global();

 private:
  /// Ring buffer: spans_[next_] is the oldest entry once the buffer is full
  /// (next_ is then also the overwrite position). A vector ring keeps the
  /// full hot path allocation-free — a deque churns a block malloc/free
  /// every few records at capacity, which showed up in the overhead bench.
  std::size_t max_spans_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::size_t next_ = 0;
  std::uint64_t dropped_ = 0;
};

/// RAII span: on construction becomes the thread's current context as a
/// child of the previous current (or of `remote_parent` when the request
/// arrived off the wire); on destruction records the finished span and
/// restores the previous context. A null tracer still propagates context
/// (children chain correctly) but records nothing.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string service, std::string name, std::string kind);
  /// Server-side form: adopt the caller's wire context as the parent. An
  /// invalid remote_parent falls back to the ambient/current context.
  ScopedSpan(Tracer* tracer, std::string service, std::string name, std::string kind,
             const TraceContext& remote_parent);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_status(StatusCode code) { status_ = code; }
  const TraceContext& context() const { return context_; }

  /// Microseconds since construction (monotonic). Lets instrumentation that
  /// already opened a span reuse its measurement instead of reading the
  /// clock again.
  std::int64_t elapsed_us() const;

 private:
  Tracer* tracer_;
  TraceContext context_;
  TraceContext previous_;
  std::string service_, name_, kind_;
  std::int64_t start_us_;                                // wall, for Span.start_us
  std::chrono::steady_clock::time_point steady_start_;   // monotonic, for duration
  StatusCode status_ = StatusCode::kOk;
};

}  // namespace gae::telemetry
