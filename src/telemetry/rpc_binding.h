// Web-service face of the telemetry subsystem: registers "telemetry.*"
// methods on a Clarens host so operators (and tests) can read live metric
// snapshots and assembled traces over RPC.
#pragma once

#include "clarens/host.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gae::telemetry {

/// Registers telemetry.snapshot (full registry snapshot with per-histogram
/// p50/p95/p99) and, when `tracer` is non-null, telemetry.trace(trace_id_hex)
/// returning the spans of one trace. The registry and tracer must outlive
/// the host.
void register_telemetry_methods(clarens::ClarensHost& host, MetricsRegistry& registry,
                                Tracer* tracer = nullptr);

/// The telemetry.snapshot payload as an RPC value (also reused by benches).
rpc::Value snapshot_to_value(const MetricsSnapshot& snapshot);

}  // namespace gae::telemetry
