#include "telemetry/monalisa_bridge.h"

#include <chrono>
#include <utility>

namespace gae::telemetry {

MonalisaBridge::MonalisaBridge(const MetricsRegistry& registry,
                               monalisa::Repository& repository, std::string source,
                               const Clock& clock)
    : registry_(registry),
      repository_(repository),
      source_(std::move(source)),
      clock_(clock) {}

MonalisaBridge::~MonalisaBridge() { stop(); }

void MonalisaBridge::flush() {
  const MetricsSnapshot snap = registry_.snapshot();
  const SimTime now = clock_.now();
  std::lock_guard<std::mutex> lock(publish_mutex_);
  for (const auto& [name, value] : snap.counters) {
    repository_.publish(source_, name, now, static_cast<double>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    repository_.publish(source_, name, now, static_cast<double>(value));
  }
  for (const auto& [name, hist] : snap.histograms) {
    repository_.publish(source_, name + ".count", now, static_cast<double>(hist.count));
    if (hist.count == 0) continue;
    repository_.publish(source_, name + ".mean_us", now, hist.mean());
    repository_.publish(source_, name + ".p50_us", now, hist.percentile(50));
    repository_.publish(source_, name + ".p95_us", now, hist.percentile(95));
    repository_.publish(source_, name + ".p99_us", now, hist.percentile(99));
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

void MonalisaBridge::start(int interval_ms) {
  if (running_.exchange(true)) return;
  flusher_ = std::thread([this, interval_ms] {
    while (running_.load(std::memory_order_acquire)) {
      flush();
      // Sleep in small slices so stop() is prompt.
      int remaining = interval_ms;
      while (remaining > 0 && running_.load(std::memory_order_acquire)) {
        const int slice = remaining < 20 ? remaining : 20;
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        remaining -= slice;
      }
    }
  });
}

void MonalisaBridge::stop() {
  if (!running_.exchange(false)) return;
  if (flusher_.joinable()) flusher_.join();
}

}  // namespace gae::telemetry
