// Bridges the metrics registry into the MonALISA-substitute repository the
// way farm agents feed the real MonALISA: every flush publishes counters,
// gauges and histogram summaries (count / mean / p50 / p95 / p99) as metric
// points under one source. Under simulation, drive flush() from a
// monalisa::PeriodicSampler; in live deployments start() runs a background
// flusher thread. Repository access is serialised by an internal mutex, so
// flush() and the background thread never interleave a publish.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/clock.h"
#include "monalisa/repository.h"
#include "telemetry/metrics.h"

namespace gae::telemetry {

class MonalisaBridge {
 public:
  MonalisaBridge(const MetricsRegistry& registry, monalisa::Repository& repository,
                 std::string source, const Clock& clock);
  ~MonalisaBridge();

  MonalisaBridge(const MonalisaBridge&) = delete;
  MonalisaBridge& operator=(const MonalisaBridge&) = delete;

  /// Publishes one snapshot at clock.now(). Histogram series get ".count",
  /// ".mean_us", ".p50_us", ".p95_us", ".p99_us" suffixes.
  void flush();

  /// Starts a background thread flushing every `interval_ms` (idempotent).
  void start(int interval_ms);
  void stop();

  std::uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }

 private:
  const MetricsRegistry& registry_;
  monalisa::Repository& repository_;
  std::string source_;
  const Clock& clock_;
  std::mutex publish_mutex_;
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<bool> running_{false};
  std::thread flusher_;
};

}  // namespace gae::telemetry
