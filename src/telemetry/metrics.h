// Telemetry metrics: a process-wide registry of named counters, gauges and
// fixed log-bucket latency histograms. The registry is mutex-sharded — name
// lookup takes one shard lock, but the returned handles are lock-free
// atomics, so the RPC hot path records without contending on the registry.
// Snapshots are consistent-enough views (each atomic read is itself atomic;
// concurrent recording may straddle a snapshot, never corrupt it) and merge
// following the RunningStats::merge pattern, enabling per-shard or
// per-process aggregation in the MonALISA bridge.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace gae::telemetry {

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, in-flight requests). Lock-free.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Read-only copy of a histogram, with percentile estimation.
struct HistogramSnapshot {
  static constexpr int kBuckets = 48;  // covers [0, 2^47) µs ≈ 4.5 years

  std::uint64_t count = 0;
  std::uint64_t sum = 0;  // in recorded units (µs for latencies)
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};  // bucket i: [2^(i-1), 2^i), bucket 0: {0}

  double mean() const { return count ? static_cast<double>(sum) / count : 0.0; }

  /// Estimated value at percentile `p` in [0,100], interpolated linearly
  /// within the containing bucket. Exact at bucket boundaries; error is
  /// bounded by the 2x bucket width.
  double percentile(double p) const;

  /// Bucket-wise merge (the RunningStats::merge analogue).
  void merge(const HistogramSnapshot& other);
};

/// Fixed log2-bucket histogram for non-negative integer samples (latency in
/// microseconds, sizes in bytes). Recording is lock-free: one atomic add per
/// bucket plus count/sum, and CAS loops for min/max.
class Histogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  void record(std::uint64_t value);
  HistogramSnapshot snapshot() const;

  /// Bucket holding `value`: 0 for value 0, otherwise 1 + floor(log2(value))
  /// clamped to the last bucket.
  static int bucket_index(std::uint64_t value);
  /// Inclusive lower bound of bucket `i` (0 for bucket 0, 2^(i-1) above).
  static std::uint64_t bucket_lower_bound(int i);
  /// Exclusive upper bound of bucket `i`.
  static std::uint64_t bucket_upper_bound(int i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Full registry contents at one instant. Maps are ordered so exported
/// output is stable across runs.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counters and gauges add; histograms merge bucket-wise. Summing gauges
  /// is right for the sharded/aggregated use (total queue depth across
  /// processes); callers wanting last-writer semantics snapshot separately.
  void merge(const MetricsSnapshot& other);
};

/// Name -> metric registry. Handle lookup locks one shard; the handles
/// themselves are stable for the registry's lifetime (node-based storage),
/// so callers cache references and record lock-free.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Process-wide default registry (services that are not handed one
  /// explicitly record here).
  static MetricsRegistry& global();

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Shard& shard_for(const std::string& name);
  const Shard& shard_for(const std::string& name) const;

  std::array<Shard, kShards> shards_;
};

}  // namespace gae::telemetry
