#include "telemetry/rpc_binding.h"

#include <cstdlib>

namespace gae::telemetry {

using rpc::Array;
using rpc::CallContext;
using rpc::Struct;
using rpc::Value;

Value snapshot_to_value(const MetricsSnapshot& snapshot) {
  Struct counters;
  for (const auto& [name, v] : snapshot.counters) {
    counters[name] = Value(static_cast<std::int64_t>(v));
  }
  Struct gauges;
  for (const auto& [name, v] : snapshot.gauges) {
    gauges[name] = Value(static_cast<std::int64_t>(v));
  }
  Struct histograms;
  for (const auto& [name, h] : snapshot.histograms) {
    Struct out;
    out["count"] = Value(static_cast<std::int64_t>(h.count));
    out["sum_us"] = Value(static_cast<std::int64_t>(h.sum));
    out["min_us"] = Value(static_cast<std::int64_t>(h.min));
    out["max_us"] = Value(static_cast<std::int64_t>(h.max));
    out["mean_us"] = Value(h.mean());
    out["p50_us"] = Value(h.percentile(50));
    out["p95_us"] = Value(h.percentile(95));
    out["p99_us"] = Value(h.percentile(99));
    histograms[name] = Value(std::move(out));
  }
  Struct top;
  top["counters"] = Value(std::move(counters));
  top["gauges"] = Value(std::move(gauges));
  top["histograms"] = Value(std::move(histograms));
  return Value(std::move(top));
}

void register_telemetry_methods(clarens::ClarensHost& host, MetricsRegistry& registry,
                                Tracer* tracer) {
  auto& d = host.dispatcher();

  d.register_method("telemetry.snapshot",
                    [&registry](const Array&, const CallContext&) -> Result<Value> {
                      return snapshot_to_value(registry.snapshot());
                    });

  if (!tracer) return;

  d.register_method(
      "telemetry.trace", [tracer](const Array& params, const CallContext&) -> Result<Value> {
        if (params.empty() || !params[0].is_string()) {
          return invalid_argument_error("telemetry.trace(trace_id_hex)");
        }
        const std::uint64_t trace_id =
            std::strtoull(params[0].as_string().c_str(), nullptr, 16);
        Array out;
        for (const auto& span : tracer->trace(trace_id)) {
          Struct s;
          s["trace"] = Value(format_trace(span.context));
          s["service"] = Value(span.service);
          s["name"] = Value(span.name);
          s["kind"] = Value(span.kind);
          s["start_us"] = Value(span.start_us);
          s["duration_us"] = Value(span.duration_us);
          s["status"] = Value(static_cast<std::int64_t>(span.status));
          out.emplace_back(std::move(s));
        }
        return Value(std::move(out));
      });
}

}  // namespace gae::telemetry
