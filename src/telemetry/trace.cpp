#include "telemetry/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>
#include <utility>

namespace gae::telemetry {

namespace {

thread_local TraceContext tls_current;

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t next_trace_id() {
  // Per-thread stream: a shared atomic counter would bounce its cache line
  // between the client and server threads on every traced hop. Each thread
  // walks splitmix64 from its own random 64-bit start, so collisions across
  // threads are birthday-bound on 64 bits.
  thread_local std::uint64_t state = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) | rd();
  }();
  std::uint64_t id;
  do {
    id = splitmix64(state++);
  } while (id == 0);
  return id;
}

namespace {

// Hand-rolled hex codec: this runs on every traced hop, and snprintf/sscanf
// cost ~1µs a pair — a visible slice of the <5% overhead budget.
void put_hex16(char* out, std::uint64_t v) {
  static const char digits[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[v & 0xf];
    v >>= 4;
  }
}

/// Parses 1-16 hex digits at `p` into `out`; returns the char after the last
/// digit, or null on no digits / overflow.
const char* get_hex(const char* p, std::uint64_t& out) {
  out = 0;
  int digits = 0;
  for (;; ++p) {
    int d;
    if (*p >= '0' && *p <= '9') {
      d = *p - '0';
    } else if (*p >= 'a' && *p <= 'f') {
      d = *p - 'a' + 10;
    } else if (*p >= 'A' && *p <= 'F') {
      d = *p - 'A' + 10;
    } else {
      break;
    }
    if (++digits > 16) return nullptr;
    out = (out << 4) | static_cast<std::uint64_t>(d);
  }
  return digits > 0 ? p : nullptr;
}

}  // namespace

std::string format_trace(const TraceContext& ctx) {
  std::string out(3 * 16 + 2, ';');
  put_hex16(out.data(), ctx.trace_id);
  put_hex16(out.data() + 17, ctx.span_id);
  put_hex16(out.data() + 34, ctx.parent_span_id);
  return out;
}

TraceContext parse_trace(const std::string& text) {
  TraceContext ctx;
  const char* p = get_hex(text.c_str(), ctx.trace_id);
  if (!p || *p != ';') return {};
  p = get_hex(p + 1, ctx.span_id);
  if (!p || *p != ';') return {};
  p = get_hex(p + 1, ctx.parent_span_id);
  if (!p) return {};
  return ctx.valid() ? ctx : TraceContext{};
}

TraceContext current_trace() { return tls_current; }

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

void Tracer::record(Span span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() < max_spans_) {
    spans_.push_back(std::move(span));
    return;
  }
  ++dropped_;
  if (max_spans_ == 0) return;
  spans_[next_] = std::move(span);  // overwrite the oldest in place
  next_ = (next_ + 1) % max_spans_;
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  out.reserve(spans_.size());
  out.insert(out.end(), spans_.begin() + static_cast<std::ptrdiff_t>(next_), spans_.end());
  out.insert(out.end(), spans_.begin(), spans_.begin() + static_cast<std::ptrdiff_t>(next_));
  return out;
}

std::vector<Span> Tracer::trace(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[(next_ + i) % spans_.size()];
    if (s.context.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  next_ = 0;
  dropped_ = 0;
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

// ---------------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------------

ScopedSpan::ScopedSpan(Tracer* tracer, std::string service, std::string name,
                       std::string kind)
    : ScopedSpan(tracer, std::move(service), std::move(name), std::move(kind),
                 TraceContext{}) {}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string service, std::string name,
                       std::string kind, const TraceContext& remote_parent)
    : tracer_(tracer),
      service_(std::move(service)),
      name_(std::move(name)),
      kind_(std::move(kind)),
      start_us_(wall_now_us()),
      steady_start_(std::chrono::steady_clock::now()) {
  previous_ = tls_current;
  const TraceContext& parent = remote_parent.valid() ? remote_parent : previous_;
  context_.trace_id = parent.valid() ? parent.trace_id : next_trace_id();
  context_.span_id = next_trace_id();
  context_.parent_span_id = parent.valid() ? parent.span_id : 0;
  tls_current = context_;
}

std::int64_t ScopedSpan::elapsed_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - steady_start_)
      .count();
}

ScopedSpan::~ScopedSpan() {
  tls_current = previous_;
  if (!tracer_) return;
  Span span;
  span.context = context_;
  span.service = std::move(service_);
  span.name = std::move(name_);
  span.kind = std::move(kind_);
  span.start_us = start_us_;
  span.duration_us = elapsed_us();
  span.status = status_;
  tracer_->record(std::move(span));
}

}  // namespace gae::telemetry
