// Header-only glue for instrumenting RPC method handlers with service-level
// spans. The host's dispatcher already records one "server" span per
// dispatch under the host's name; wrapping a handler with traced() adds the
// owning *service's* span beneath it (service "steering" inside host
// "gae-host"), which is what makes a fig-7 steering command assemble into a
// trace whose spans name distinct services.
#pragma once

#include <string>
#include <utility>

#include "rpc/server.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gae::telemetry {

/// Wraps `inner` in an "internal" span recorded to `tracer` (pass-through
/// when tracer is null) and, when `metrics` is set, counts
/// "<service>.<name>.calls" / ".errors".
inline rpc::Method traced(Tracer* tracer, std::string service, std::string name,
                          rpc::Method inner, MetricsRegistry* metrics = nullptr) {
  if (!tracer && !metrics) return inner;
  return [tracer, metrics, service = std::move(service), name = std::move(name),
          inner = std::move(inner)](const rpc::Array& params,
                                    const rpc::CallContext& ctx) -> Result<rpc::Value> {
    ScopedSpan span(tracer, service, name, "internal");
    auto result = inner(params, ctx);
    if (!result.is_ok()) span.set_status(result.status().code());
    if (metrics) {
      metrics->counter(service + "." + name + ".calls").inc();
      if (!result.is_ok()) metrics->counter(service + "." + name + ".errors").inc();
    }
    return result;
  };
}

/// Drop-in stand-in for a Dispatcher reference in binding code: registers
/// each method with traced() applied, deriving the span's service from the
/// method's "<service>.<name>" prefix ("steering.kill" -> service
/// "steering", span "kill"). Null tracer and metrics make it a plain
/// pass-through registration.
class TracedRegistrar {
 public:
  TracedRegistrar(rpc::Dispatcher& dispatcher, Tracer* tracer, MetricsRegistry* metrics)
      : dispatcher_(dispatcher), tracer_(tracer), metrics_(metrics) {}

  void register_method(const std::string& name, rpc::Method method) const {
    const auto dot = name.find('.');
    std::string service = dot == std::string::npos ? name : name.substr(0, dot);
    std::string short_name = dot == std::string::npos ? name : name.substr(dot + 1);
    dispatcher_.register_method(name, traced(tracer_, std::move(service),
                                             std::move(short_name), std::move(method),
                                             metrics_));
  }

 private:
  rpc::Dispatcher& dispatcher_;
  Tracer* tracer_;
  MetricsRegistry* metrics_;
};

/// Pre-resolved cache telemetry under one prefix: "<prefix>.{hits,misses,
/// invalidations}" counters plus a "<prefix>.entries" gauge. Resolving the
/// handles once at construction keeps registry-name building and registry
/// locks off cache hot paths; a null registry leaves every handle null and
/// the recording methods become no-ops.
struct CacheCounters {
  Counter* hits = nullptr;
  Counter* misses = nullptr;
  Counter* invalidations = nullptr;
  Gauge* entries = nullptr;

  CacheCounters() = default;
  CacheCounters(MetricsRegistry* registry, const std::string& prefix) {
    if (!registry) return;
    hits = &registry->counter(prefix + ".hits");
    misses = &registry->counter(prefix + ".misses");
    invalidations = &registry->counter(prefix + ".invalidations");
    entries = &registry->gauge(prefix + ".entries");
  }

  void hit() const {
    if (hits) hits->inc();
  }
  void miss() const {
    if (misses) misses->inc();
  }
  void invalidated(std::uint64_t n = 1) const {
    if (invalidations && n > 0) invalidations->inc(n);
  }
  /// Entry-count delta (+1 insert, -n drop).
  void resized(std::int64_t delta) const {
    if (entries && delta != 0) entries->add(delta);
  }
};

}  // namespace gae::telemetry
