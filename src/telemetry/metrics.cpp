#include "telemetry/metrics.h"

#include <algorithm>
#include <functional>

namespace gae::telemetry {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

int Histogram::bucket_index(std::uint64_t value) {
  if (value == 0) return 0;
  int bit = 63 - __builtin_clzll(value);  // floor(log2(value))
  return std::min(bit + 1, kBuckets - 1);
}

std::uint64_t Histogram::bucket_lower_bound(int i) {
  if (i <= 0) return 0;    // bucket 0: {0}
  return 1ull << (i - 1);  // bucket i: [2^(i-1), 2^i)
}

std::uint64_t Histogram::bucket_upper_bound(int i) {
  if (i <= 0) return 1;
  if (i >= kBuckets - 1) return UINT64_MAX;  // last bucket is open-ended
  return 1ull << i;
}

void Histogram::record(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = min == UINT64_MAX ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

double HistogramSnapshot::percentile(double p) const {
  // Percentiles come from bucket counts, not the count_ atomic: under
  // concurrent recording the two can disagree transiently, and the bucket
  // view is the one being ranked over.
  std::uint64_t total = 0;
  for (const auto b : buckets) total += b;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= rank) {
      const double lo = static_cast<double>(Histogram::bucket_lower_bound(i));
      // Clamp the open-ended last bucket to the observed max.
      double hi = i >= kBuckets - 1 ? static_cast<double>(max)
                                    : static_cast<double>(Histogram::bucket_upper_bound(i));
      hi = std::max(hi, lo);
      const double frac =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(buckets[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (int i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::Shard& MetricsRegistry::shard_for(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

const MetricsRegistry::Shard& MetricsRegistry::shard_for(const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto& slot = shard.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto& slot = shard.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto& slot = shard.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, c] : shard.counters) snap.counters[name] = c->value();
    for (const auto& [name, g] : shard.gauges) snap.gauges[name] = g->value();
    for (const auto& [name, h] : shard.histograms) snap.histograms[name] = h->snapshot();
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace gae::telemetry
