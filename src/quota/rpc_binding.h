// Web-service face of the Quota & Accounting service: quota.* methods on a
// Clarens host. Reads are open to the authenticated owner; grants and rate
// changes are admin-only (enforced here, on top of the host ACL).
#pragma once

#include "clarens/host.h"
#include "quota/quota_service.h"

namespace gae::quota {

/// Registers quota.balance / rate / cheapest / estimate / charge / grant /
/// setRate. The service must outlive the host.
void register_quota_methods(clarens::ClarensHost& host, QuotaAccountingService& service);

}  // namespace gae::quota
