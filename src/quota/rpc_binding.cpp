#include "quota/rpc_binding.h"

namespace gae::quota {

using rpc::Array;
using rpc::CallContext;
using rpc::Struct;
using rpc::Value;

namespace {

Result<std::string> admin_only(clarens::ClarensHost& host, const CallContext& ctx) {
  auto user = host.user_of(ctx);
  if (!user.is_ok()) return user.status();
  if (user.value() != "admin") {
    return gae::permission_denied_error("quota administration requires the admin role");
  }
  return user;
}

}  // namespace

void register_quota_methods(clarens::ClarensHost& host, QuotaAccountingService& service) {
  auto& d = host.dispatcher();
  clarens::ClarensHost* host_ptr = &host;

  // quota.balance() -> caller's credit balance
  d.register_method(
      "quota.balance",
      [host_ptr, &service](const Array&, const CallContext& ctx) -> Result<Value> {
        auto user = host_ptr->user_of(ctx);
        if (!user.is_ok()) return user.status();
        auto balance = service.balance(user.value());
        if (!balance.is_ok()) return balance.status();
        return Value(balance.value());
      });

  // quota.rate(site) -> cost per CPU-hour
  d.register_method(
      "quota.rate", [&service](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 1 || !params[0].is_string()) {
          return invalid_argument_error("quota.rate(site)");
        }
        auto rate = service.site_rate(params[0].as_string());
        if (!rate.is_ok()) return rate.status();
        return Value(rate.value());
      });

  // quota.cheapest([site, ...]) -> site name
  d.register_method(
      "quota.cheapest",
      [&service](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 1 || !params[0].is_array()) {
          return invalid_argument_error("quota.cheapest([sites])");
        }
        std::vector<std::string> candidates;
        for (const auto& s : params[0].as_array()) candidates.push_back(s.as_string());
        auto best = service.cheapest_site(candidates);
        if (!best.is_ok()) return best.status();
        return Value(std::move(best).value());
      });

  // quota.estimate(site, cpu_hours) -> cost
  d.register_method(
      "quota.estimate",
      [&service](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 2 || !params[0].is_string() || !params[1].is_number()) {
          return invalid_argument_error("quota.estimate(site, cpu_hours)");
        }
        auto cost = service.estimate_cost(params[0].as_string(), params[1].as_double());
        if (!cost.is_ok()) return cost.status();
        return Value(cost.value());
      });

  // quota.charge(site, cpu_hours): charges the calling user.
  d.register_method(
      "quota.charge",
      [host_ptr, &service](const Array& params, const CallContext& ctx) -> Result<Value> {
        auto user = host_ptr->user_of(ctx);
        if (!user.is_ok()) return user.status();
        if (params.size() != 2 || !params[0].is_string() || !params[1].is_number()) {
          return invalid_argument_error("quota.charge(site, cpu_hours)");
        }
        const Status s =
            service.charge(user.value(), params[0].as_string(), params[1].as_double());
        if (!s.is_ok()) return s;
        return Value(service.balance(user.value()).value_or(0.0));
      });

  // quota.grant(user, credit): admin only.
  d.register_method(
      "quota.grant",
      [host_ptr, &service](const Array& params, const CallContext& ctx) -> Result<Value> {
        auto admin = admin_only(*host_ptr, ctx);
        if (!admin.is_ok()) return admin.status();
        if (params.size() != 2 || !params[0].is_string() || !params[1].is_number()) {
          return invalid_argument_error("quota.grant(user, credit)");
        }
        const Status s = service.grant(params[0].as_string(), params[1].as_double());
        if (!s.is_ok()) return s;
        return Value(true);
      });

  // quota.setRate(site, rate): admin only.
  d.register_method(
      "quota.setRate",
      [host_ptr, &service](const Array& params, const CallContext& ctx) -> Result<Value> {
        auto admin = admin_only(*host_ptr, ctx);
        if (!admin.is_ok()) return admin.status();
        if (params.size() != 2 || !params[0].is_string() || !params[1].is_number()) {
          return invalid_argument_error("quota.setRate(site, rate)");
        }
        service.set_site_rate(params[0].as_string(), params[1].as_double());
        return Value(true);
      });

  host.registry().register_service(
      {"quota@" + host.name(), host.name(), host.port(), "xmlrpc", {}, 0});
}

}  // namespace gae::quota
