#include "quota/quota_service.h"

namespace gae::quota {

void QuotaAccountingService::set_site_rate(const std::string& site,
                                           double cost_per_cpu_hour) {
  site_rates_[site] = cost_per_cpu_hour;
}

Result<double> QuotaAccountingService::site_rate(const std::string& site) const {
  auto it = site_rates_.find(site);
  if (it == site_rates_.end()) return not_found_error("no rate for site " + site);
  return it->second;
}

Result<std::string> QuotaAccountingService::cheapest_site(
    const std::vector<std::string>& candidates) const {
  std::string best;
  double best_rate = 0.0;
  for (const auto& site : candidates) {
    auto rate = site_rate(site);
    if (!rate.is_ok()) continue;
    if (best.empty() || rate.value() < best_rate) {
      best = site;
      best_rate = rate.value();
    }
  }
  if (best.empty()) return not_found_error("no candidate site has a rate");
  return best;
}

Result<double> QuotaAccountingService::estimate_cost(const std::string& site,
                                                     double cpu_hours) const {
  auto rate = site_rate(site);
  if (!rate.is_ok()) return rate.status();
  return rate.value() * cpu_hours;
}

Status QuotaAccountingService::create_account(const std::string& user,
                                              double initial_credit) {
  if (balances_.count(user)) return already_exists_error("account exists: " + user);
  balances_[user] = initial_credit;
  return Status::ok();
}

Result<double> QuotaAccountingService::balance(const std::string& user) const {
  auto it = balances_.find(user);
  if (it == balances_.end()) return not_found_error("no account: " + user);
  return it->second;
}

Status QuotaAccountingService::grant(const std::string& user, double credit) {
  auto it = balances_.find(user);
  if (it == balances_.end()) return not_found_error("no account: " + user);
  it->second += credit;
  return Status::ok();
}

Status QuotaAccountingService::charge(const std::string& user, const std::string& site,
                                      double cpu_hours) {
  auto it = balances_.find(user);
  if (it == balances_.end()) return not_found_error("no account: " + user);
  auto cost = estimate_cost(site, cpu_hours);
  if (!cost.is_ok()) return cost.status();
  if (it->second < cost.value()) {
    return resource_exhausted_error("insufficient credit for " + user);
  }
  it->second -= cost.value();
  charges_.push_back({user, site, cpu_hours, cost.value()});
  return Status::ok();
}

Result<bool> QuotaAccountingService::can_afford(const std::string& user,
                                                const std::string& site,
                                                double cpu_hours) const {
  auto bal = balance(user);
  if (!bal.is_ok()) return bal.status();
  auto cost = estimate_cost(site, cpu_hours);
  if (!cost.is_ok()) return cost.status();
  return bal.value() >= cost.value();
}

}  // namespace gae::quota
