// Quota and Accounting Service.
//
// The paper calls its version "currently, just a trivial prototype" (§4.2.2)
// that the Optimizer consults to find the cheapest execution site. This
// implementation keeps that spirit but is complete enough to charge users:
// per-site CPU-hour rates, per-user credit balances, and a cheapest-site
// query.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace gae::quota {

struct ChargeRecord {
  std::string user;
  std::string site;
  double cpu_hours = 0.0;
  double cost = 0.0;
};

class QuotaAccountingService {
 public:
  // -- Site rates -----------------------------------------------------------

  /// Cost per CPU-hour at a site (arbitrary credit units).
  void set_site_rate(const std::string& site, double cost_per_cpu_hour);
  Result<double> site_rate(const std::string& site) const;

  /// Cheapest of the candidate sites (NOT_FOUND when none has a rate).
  Result<std::string> cheapest_site(const std::vector<std::string>& candidates) const;

  /// Predicted cost of running `cpu_hours` at `site`.
  Result<double> estimate_cost(const std::string& site, double cpu_hours) const;

  // -- User accounts ----------------------------------------------------------

  /// Creates an account with an initial credit; ALREADY_EXISTS on duplicates.
  Status create_account(const std::string& user, double initial_credit);
  Result<double> balance(const std::string& user) const;
  Status grant(const std::string& user, double credit);

  /// Deducts the cost of `cpu_hours` at `site`. RESOURCE_EXHAUSTED when the
  /// balance cannot cover it (nothing is deducted then).
  Status charge(const std::string& user, const std::string& site, double cpu_hours);

  /// Whether the user could afford `cpu_hours` at `site` right now.
  Result<bool> can_afford(const std::string& user, const std::string& site,
                          double cpu_hours) const;

  const std::vector<ChargeRecord>& charge_log() const { return charges_; }

 private:
  std::map<std::string, double> site_rates_;
  std::map<std::string, double> balances_;
  std::vector<ChargeRecord> charges_;
};

}  // namespace gae::quota
