// Blocking RPC client with a persistent keep-alive connection, per-call
// deadlines, retry with deterministic backoff, per-endpoint circuit
// breakers, and an ordered failover endpoint list. Thread-compatible: guard
// with external synchronisation or use one client per thread (the fig-6
// benchmark does the latter).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/admission.h"
#include "common/clock.h"
#include "common/retry.h"
#include "common/status.h"
#include "net/socket.h"
#include "rpc/value.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gae::rpc {

enum class Protocol { kXmlRpc, kJsonRpc };

/// One server address; clients take an ordered failover list of these.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Per-call knobs. The deadline covers the whole call including retries and
/// backoff sleeps; it is enforced on the wire via the socket receive timeout.
struct CallOptions {
  /// Whole-call budget in wall milliseconds; 0 = none. Rides the
  /// x-gae-deadline header as *remaining* milliseconds per attempt, so the
  /// server can refuse work whose caller has already given up. Inside a
  /// server handler the effective budget is additionally clamped to the
  /// thread's ambient deadline (rpc/deadline.h) — a downstream hop never
  /// gets more budget than is left of the upstream call.
  int deadline_ms = 0;
  /// Retry schedule for retryable transport errors (UNAVAILABLE,
  /// DEADLINE_EXCEEDED, RESOURCE_EXHAUSTED). RPC faults from a live server
  /// are never retried — the server answered. When retry.budget is set,
  /// each retry additionally needs a budget token (storm suppression).
  RetryPolicy retry;
  /// When false, an error after request bytes may have reached the server
  /// is returned as UNAVAILABLE instead of retried: the call might already
  /// have executed, and re-sending would double-apply it.
  bool idempotent = true;
  /// Criticality stamped on the x-gae-tier header; overloaded servers shed
  /// the least critical tiers first.
  Criticality tier = Criticality::kStatus;
};

/// Client construction knobs.
struct ClientOptions {
  /// Applied by the two-argument call().
  CallOptions default_call;
  /// Breaker config shared by every endpoint (each endpoint gets its own
  /// breaker instance).
  CircuitBreakerOptions breaker;
  /// Time source for deadlines and the breakers; null = a shared wall clock.
  /// Inject a ManualClock for virtual-time breaker tests.
  const Clock* clock = nullptr;
  /// Backoff sleeper; null = real sleep. Tests inject a recorder.
  std::function<void(int ms)> sleep_ms;
  /// Re-resolves the failover list (typically from the Clarens registry).
  /// Invoked lazily on the next call after any endpoint's breaker opens, so
  /// traffic drains away from dead services toward freshly discovered ones
  /// without manual reconfiguration. Returning an empty list keeps the
  /// current endpoints. Breaker state is preserved for endpoints that
  /// survive the refresh.
  std::function<std::vector<Endpoint>()> resolve_endpoints;
  /// Observes every per-endpoint breaker state change (callers publish these
  /// to MonALISA). Runs inside the call path — keep it cheap.
  std::function<void(const Endpoint&, CircuitBreaker::State from,
                     CircuitBreaker::State to)>
      on_breaker_transition;
  /// When set, the client keeps per-endpoint rpc.client.<host:port>.*
  /// attempt / retry / failure / breaker-transition counters. Must outlive
  /// the client.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// When set, every call records one "client" span (child of the ambient
  /// thread context) to this tracer. Trace context is injected on the wire
  /// regardless — a tracer-less client still propagates the ambient triple,
  /// it just records no hop of its own. Must outlive the client.
  telemetry::Tracer* tracer = nullptr;
  /// Service name stamped on client spans.
  std::string trace_service = "rpc-client";
};

/// Counters exposed for monitoring (published to MonALISA by callers).
struct RpcClientStats {
  std::uint64_t calls = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  /// Attempts served by an endpoint other than the first in the list.
  std::uint64_t failovers = 0;
  std::uint64_t deadline_exceeded = 0;
  /// Attempts rejected locally because every endpoint's breaker was open.
  std::uint64_t breaker_rejections = 0;
  /// Calls that exhausted all attempts (or were non-retryable).
  std::uint64_t failed_calls = 0;
  /// Times the endpoint list was refreshed via resolve_endpoints.
  std::uint64_t reresolves = 0;
  /// Retries suppressed because the shared RetryBudget was out of tokens.
  std::uint64_t retry_budget_exhausted = 0;
  /// 503 responses (the server shed the request under admission control).
  std::uint64_t shed_rejections = 0;
  /// NOT_PRIMARY faults whose "leader=host:port" hint was followed (the
  /// endpoint list was re-ordered and the call re-sent to the leader).
  std::uint64_t not_primary_redirects = 0;
};

class RpcClient {
 public:
  RpcClient(std::string host, std::uint16_t port, Protocol protocol = Protocol::kXmlRpc);

  /// Failover list: endpoints are tried in order, skipping those whose
  /// breaker is open; the earliest healthy endpoint is always preferred.
  RpcClient(std::vector<Endpoint> endpoints, Protocol protocol,
            ClientOptions options = {});

  /// Session token sent as x-clarens-session on every call ("" = none).
  void set_session_token(std::string token) { session_token_ = std::move(token); }
  const std::string& session_token() const { return session_token_; }

  /// Invokes `method` with the client's default CallOptions. RPC faults come
  /// back as the originating StatusCode; transport failures as UNAVAILABLE;
  /// an exhausted deadline budget as DEADLINE_EXCEEDED.
  Result<Value> call(const std::string& method, const Array& params = {});

  /// Invokes `method` with explicit per-call options.
  Result<Value> call(const std::string& method, const Array& params,
                     const CallOptions& options);

  /// Drops the cached connection (next call reconnects).
  void disconnect();

  const RpcClientStats& stats() const { return stats_; }

  /// Breaker state for endpoint `index` (construction order).
  CircuitBreaker::State breaker_state(std::size_t index) const;
  std::size_t endpoint_count() const { return endpoints_.size(); }
  const Endpoint& endpoint(std::size_t index) const { return endpoints_.at(index); }

  /// Replaces the failover list now (what resolve_endpoints does lazily).
  /// Endpoints present in both lists keep their breaker state; an empty
  /// list is ignored.
  void set_endpoints(std::vector<Endpoint> endpoints);

 private:
  /// Pre-resolved rpc.client.<host:port>.* counter handles for one endpoint,
  /// armed when the endpoint list is (re)built so the call hot path records
  /// without building metric names or taking registry locks. All null when
  /// no metrics registry is configured.
  struct EndpointCounters {
    telemetry::Counter* attempts = nullptr;
    telemetry::Counter* retries = nullptr;
    telemetry::Counter* breaker_transitions = nullptr;
    telemetry::Counter* breaker_open = nullptr;
  };

  /// Bumps the given cached counter for endpoint `index` (no-op without a
  /// metrics registry).
  void count_endpoint(std::size_t index, telemetry::Counter* EndpointCounters::*what);
  /// Rebuilds endpoint_counters_ to mirror endpoints_.
  void arm_endpoint_counters();
  void arm_breaker_listener(CircuitBreaker& breaker, std::size_t index);
  std::unique_ptr<CircuitBreaker> make_breaker(std::size_t index);
  /// Runs resolve_endpoints when a breaker opened since the last call.
  void maybe_re_resolve();
  /// One wire attempt. Sets `wrote_request` once request bytes may have
  /// reached the server (the non-idempotent retry guard keys off this).
  Result<Value> call_attempt(const std::string& method, const Array& params,
                             SimTime deadline, Criticality tier, bool& wrote_request);

  /// Connects to the earliest endpoint whose breaker admits the call,
  /// failing over down the list. UNAVAILABLE when every endpoint is open
  /// or unreachable.
  Status ensure_connected();

  const Clock& clock() const { return *clock_ptr_; }
  /// Milliseconds until `deadline` (<= 0 means exhausted); deadline 0 = none.
  int remaining_ms(SimTime deadline) const;

  std::vector<Endpoint> endpoints_;
  Protocol protocol_;
  ClientOptions options_;
  std::shared_ptr<Clock> owned_clock_;  // when no clock injected
  const Clock* clock_ptr_ = nullptr;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::vector<EndpointCounters> endpoint_counters_;  // parallel to endpoints_
  std::string session_token_;
  net::TcpStream stream_;
  bool needs_resolve_ = false;
  bool connected_ = false;
  std::size_t connected_endpoint_ = 0;
  std::int64_t next_id_ = 1;
  RpcClientStats stats_;
};

}  // namespace gae::rpc
