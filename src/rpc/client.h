// Blocking RPC client with per-endpoint connection pools, per-call
// deadlines, retry with deterministic backoff, per-endpoint circuit
// breakers, and an ordered failover endpoint list.
//
// Thread-safe: concurrent call() invocations each check a keep-alive
// connection out of the pool and ride their own socket, so N in-flight
// calls use N connections instead of serialising on one stream (the fig-6
// scaling axis). Endpoint/breaker bookkeeping is guarded by one internal
// mutex that is never held across network I/O.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/admission.h"
#include "common/clock.h"
#include "common/retry.h"
#include "common/status.h"
#include "rpc/pool.h"
#include "rpc/value.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gae::rpc {

enum class Protocol { kXmlRpc, kJsonRpc };

/// One server address; clients take an ordered failover list of these.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Per-call knobs. The deadline covers the whole call including retries and
/// backoff sleeps; it is enforced on the wire via the socket receive timeout.
struct CallOptions {
  /// Whole-call budget in wall milliseconds; 0 = none. Rides the
  /// x-gae-deadline header as *remaining* milliseconds per attempt, so the
  /// server can refuse work whose caller has already given up. Inside a
  /// server handler the effective budget is additionally clamped to the
  /// thread's ambient deadline (rpc/deadline.h) — a downstream hop never
  /// gets more budget than is left of the upstream call.
  int deadline_ms = 0;
  /// Retry schedule for retryable transport errors (UNAVAILABLE,
  /// DEADLINE_EXCEEDED, RESOURCE_EXHAUSTED). RPC faults from a live server
  /// are never retried — the server answered. When retry.budget is set,
  /// each retry additionally needs a budget token (storm suppression).
  RetryPolicy retry;
  /// When false, an error after request bytes may have reached the server
  /// is returned as UNAVAILABLE instead of retried: the call might already
  /// have executed, and re-sending would double-apply it.
  bool idempotent = true;
  /// Criticality stamped on the x-gae-tier header; overloaded servers shed
  /// the least critical tiers first.
  Criticality tier = Criticality::kStatus;
};

/// One embedded request of a multi-call batch (rpc.batch / call_many).
struct BatchItem {
  std::string method;
  Array params;
  /// Per-item criticality; the batch rides the wire at the criticality of
  /// its most critical item.
  Criticality tier = Criticality::kStatus;
};

/// Client construction knobs.
struct ClientOptions {
  /// Applied by the two-argument call().
  CallOptions default_call;
  /// Breaker config shared by every endpoint (each endpoint gets its own
  /// breaker instance).
  CircuitBreakerOptions breaker;
  /// Connection-pool sizing for the client's own pool (ignored when
  /// shared_pool is set).
  PoolOptions pool;
  /// Share one pool between clients (e.g. every client of one process):
  /// pooled connections are keyed by endpoint, so clients talking to the
  /// same service reuse each other's sockets. Null = the client owns a
  /// private pool built from `pool`.
  std::shared_ptr<ConnectionPool> shared_pool;
  /// Time source for deadlines and the breakers; null = a shared wall clock.
  /// Inject a ManualClock for virtual-time breaker tests.
  const Clock* clock = nullptr;
  /// Byte transport for the client's own pool (ignored when shared_pool is
  /// set — a shared pool brings its own); null = the process-wide TCP
  /// transport. Must outlive the client.
  Transport* transport = nullptr;
  /// Backoff sleeper; null = real sleep. Tests inject a recorder.
  std::function<void(int ms)> sleep_ms;
  /// Re-resolves the failover list (typically from the Clarens registry).
  /// Invoked lazily on the next call after any endpoint's breaker opens, so
  /// traffic drains away from dead services toward freshly discovered ones
  /// without manual reconfiguration. Returning an empty list keeps the
  /// current endpoints. Breaker state is preserved for endpoints that
  /// survive the refresh.
  std::function<std::vector<Endpoint>()> resolve_endpoints;
  /// Observes every per-endpoint breaker state change (callers publish these
  /// to MonALISA). Runs inside the call path under the client's bookkeeping
  /// lock — keep it cheap and never call back into this client.
  std::function<void(const Endpoint&, CircuitBreaker::State from,
                     CircuitBreaker::State to)>
      on_breaker_transition;
  /// When set, the client keeps per-endpoint rpc.client.<host:port>.*
  /// attempt / retry / failure / breaker-transition counters (and the pool
  /// keeps rpc.pool.* counters). Must outlive the client.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// When set, every call records one "client" span (child of the ambient
  /// thread context) to this tracer. Trace context is injected on the wire
  /// regardless — a tracer-less client still propagates the ambient triple,
  /// it just records no hop of its own. Must outlive the client.
  telemetry::Tracer* tracer = nullptr;
  /// Service name stamped on client spans.
  std::string trace_service = "rpc-client";
};

/// Counters exposed for monitoring (published to MonALISA by callers).
struct RpcClientStats {
  std::uint64_t calls = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  /// Attempts served by an endpoint other than the first in the list.
  std::uint64_t failovers = 0;
  std::uint64_t deadline_exceeded = 0;
  /// Attempts rejected locally because every endpoint's breaker was open.
  std::uint64_t breaker_rejections = 0;
  /// Calls that exhausted all attempts (or were non-retryable).
  std::uint64_t failed_calls = 0;
  /// Times the endpoint list was refreshed via resolve_endpoints.
  std::uint64_t reresolves = 0;
  /// Retries suppressed because the shared RetryBudget was out of tokens.
  std::uint64_t retry_budget_exhausted = 0;
  /// 503 responses (the server shed the request under admission control).
  std::uint64_t shed_rejections = 0;
  /// NOT_PRIMARY faults whose "leader=host:port" hint was followed (the
  /// endpoint list was re-ordered and the call re-sent to the leader).
  std::uint64_t not_primary_redirects = 0;
  /// Batches coalesced by call_many (items ride in batched_items).
  std::uint64_t batches = 0;
  std::uint64_t batched_items = 0;
};

class RpcClient {
 public:
  RpcClient(std::string host, std::uint16_t port, Protocol protocol = Protocol::kXmlRpc);

  /// Failover list: endpoints are tried in order starting from the last
  /// endpoint a call succeeded on (sticky), skipping those whose breaker is
  /// open. Stickiness keeps a flapping earlier endpoint from stealing
  /// traffic back from a healthy failover target mid-burst; traffic only
  /// moves when the current endpoint fails or its breaker opens.
  RpcClient(std::vector<Endpoint> endpoints, Protocol protocol,
            ClientOptions options = {});

  /// Session token sent as x-clarens-session on every call ("" = none).
  /// Not synchronised with in-flight calls — set it before sharing the
  /// client across threads.
  void set_session_token(std::string token) { session_token_ = std::move(token); }
  const std::string& session_token() const { return session_token_; }

  /// Invokes `method` with the client's default CallOptions. RPC faults come
  /// back as the originating StatusCode; transport failures as UNAVAILABLE;
  /// an exhausted deadline budget as DEADLINE_EXCEEDED.
  Result<Value> call(const std::string& method, const Array& params = {});

  /// Invokes `method` with explicit per-call options.
  Result<Value> call(const std::string& method, const Array& params,
                     const CallOptions& options);

  /// Coalesces the items into one rpc.batch round trip (one wire exchange,
  /// one server admission ticket at the criticality of the most critical
  /// item) and returns one Result per item, in order. Single-item batches
  /// degrade to a plain call; a server without rpc.batch (NOT_FOUND) is
  /// retried item-by-item so old peers keep working. A transport failure of
  /// the batch itself is reported against every item.
  std::vector<Result<Value>> call_many(const std::vector<BatchItem>& items);
  std::vector<Result<Value>> call_many(const std::vector<BatchItem>& items,
                                       const CallOptions& options);

  /// Drops every pooled idle connection (in-flight calls keep theirs; the
  /// next call dials fresh).
  void disconnect();

  /// Point-in-time copy of the counters.
  RpcClientStats stats() const;

  /// Breaker state for endpoint `index` (construction order).
  CircuitBreaker::State breaker_state(std::size_t index) const;
  std::size_t endpoint_count() const;
  Endpoint endpoint(std::size_t index) const;

  /// Replaces the failover list now (what resolve_endpoints does lazily).
  /// Endpoints present in both lists keep their breaker state; an empty
  /// list is ignored.
  void set_endpoints(std::vector<Endpoint> endpoints);

  /// The connection pool behind this client (shared or private).
  ConnectionPool& pool() { return *pool_; }

 private:
  /// Pre-resolved rpc.client.<host:port>.* counter handles for one endpoint,
  /// armed when the endpoint list is (re)built so the call hot path records
  /// without building metric names or taking registry locks. All null when
  /// no metrics registry is configured.
  struct EndpointCounters {
    telemetry::Counter* attempts = nullptr;
    telemetry::Counter* retries = nullptr;
    telemetry::Counter* breaker_transitions = nullptr;
    telemetry::Counter* breaker_open = nullptr;
  };

  /// A checked-out connection plus the endpoint index it belongs to.
  struct Checkout {
    ConnectionPool::Conn conn;
    std::size_t index = 0;
  };

  /// Bumps the given cached counter for endpoint `index`. Caller holds
  /// mutex_ (no-op without a metrics registry).
  void count_endpoint(std::size_t index, telemetry::Counter* EndpointCounters::*what);
  /// Rebuilds endpoint_counters_ to mirror endpoints_. Caller holds mutex_.
  void arm_endpoint_counters();
  void arm_breaker_listener(CircuitBreaker& breaker, std::size_t index);
  std::unique_ptr<CircuitBreaker> make_breaker(std::size_t index);
  void set_endpoints_locked(std::vector<Endpoint> endpoints);
  /// Runs resolve_endpoints when a breaker opened since the last call.
  /// Caller must NOT hold mutex_ (the resolver may block on the registry).
  void maybe_re_resolve();
  /// One wire attempt. Sets `wrote_request` once request bytes may have
  /// reached the server (the non-idempotent retry guard keys off this);
  /// `attempt_index` reports which endpoint served (or last refused) it.
  Result<Value> call_attempt(const std::string& method, const Array& params,
                             SimTime deadline, Criticality tier, bool& wrote_request,
                             std::size_t& attempt_index);

  /// Checks a connection out for the earliest endpoint in sticky walk order
  /// (starting at preferred_endpoint_) whose breaker admits the call.
  /// UNAVAILABLE when every endpoint is open or unreachable.
  Result<Checkout> acquire_connection();

  const Clock& clock() const { return *clock_ptr_; }
  /// Milliseconds until `deadline` (<= 0 means exhausted); deadline 0 = none.
  int remaining_ms(SimTime deadline) const;

  Protocol protocol_;
  ClientOptions options_;
  std::shared_ptr<Clock> owned_clock_;  // when no clock injected
  const Clock* clock_ptr_ = nullptr;
  std::shared_ptr<ConnectionPool> pool_;
  std::string session_token_;
  std::atomic<std::int64_t> next_id_{1};

  /// Guards every member below. Never held across connect/send/recv.
  mutable std::mutex mutex_;
  std::vector<Endpoint> endpoints_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::vector<EndpointCounters> endpoint_counters_;  // parallel to endpoints_
  bool needs_resolve_ = false;
  /// Where the failover walk starts: the endpoint of the last successful
  /// attempt (the sticky-endpoint fix — previously every reconnect walked
  /// from index 0 and a flapping primary stole traffic back mid-burst).
  std::size_t preferred_endpoint_ = 0;
  RpcClientStats stats_;
};

}  // namespace gae::rpc
