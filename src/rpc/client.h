// Blocking RPC client with a persistent keep-alive connection and one
// automatic reconnect. Thread-compatible: guard with external synchronisation
// or use one client per thread (the fig-6 benchmark does the latter).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/socket.h"
#include "rpc/value.h"

namespace gae::rpc {

enum class Protocol { kXmlRpc, kJsonRpc };

class RpcClient {
 public:
  RpcClient(std::string host, std::uint16_t port, Protocol protocol = Protocol::kXmlRpc);

  /// Session token sent as x-clarens-session on every call ("" = none).
  void set_session_token(std::string token) { session_token_ = std::move(token); }
  const std::string& session_token() const { return session_token_; }

  /// Invokes `method`. RPC faults come back as the originating StatusCode;
  /// transport failures as UNAVAILABLE.
  Result<Value> call(const std::string& method, const Array& params = {});

  /// Drops the cached connection (next call reconnects).
  void disconnect();

 private:
  Result<Value> call_once(const std::string& method, const Array& params);
  Status ensure_connected();

  std::string host_;
  std::uint16_t port_;
  Protocol protocol_;
  std::string session_token_;
  net::TcpStream stream_;
  bool connected_ = false;
  std::int64_t next_id_ = 1;
};

}  // namespace gae::rpc
