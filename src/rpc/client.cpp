#include "rpc/client.h"

#include "rpc/http.h"
#include "rpc/jsonrpc.h"
#include "rpc/server.h"  // fault-code <-> StatusCode mapping
#include "rpc/xmlrpc.h"

namespace gae::rpc {

RpcClient::RpcClient(std::string host, std::uint16_t port, Protocol protocol)
    : host_(std::move(host)), port_(port), protocol_(protocol) {}

Status RpcClient::ensure_connected() {
  if (connected_) return Status::ok();
  auto stream = net::TcpStream::connect(host_, port_);
  if (!stream.is_ok()) return stream.status();
  stream_ = std::move(stream).value();
  stream_.set_no_delay(true);
  connected_ = true;
  return Status::ok();
}

void RpcClient::disconnect() {
  stream_.close();
  connected_ = false;
}

Result<Value> RpcClient::call(const std::string& method, const Array& params) {
  const bool was_connected = connected_;
  auto result = call_once(method, params);
  if (result.is_ok() || result.status().code() != StatusCode::kUnavailable || !was_connected) {
    return result;
  }
  // The cached keep-alive connection may have been closed by the server;
  // reconnect once and retry.
  disconnect();
  return call_once(method, params);
}

Result<Value> RpcClient::call_once(const std::string& method, const Array& params) {
  const Status conn = ensure_connected();
  if (!conn.is_ok()) return conn;

  http::Request req;
  req.method = "POST";
  req.path = "/rpc";
  req.headers["connection"] = "keep-alive";
  if (!session_token_.empty()) req.headers["x-clarens-session"] = session_token_;

  if (protocol_ == Protocol::kJsonRpc) {
    req.headers["content-type"] = "application/json";
    req.body = jsonrpc::encode_call(method, params, next_id_++);
  } else {
    req.headers["content-type"] = "text/xml";
    req.body = xmlrpc::encode_call(method, params);
  }

  Status ws = http::write_request(stream_, req);
  if (!ws.is_ok()) {
    disconnect();
    return ws;
  }
  auto respr = http::read_response(stream_);
  if (!respr.is_ok()) {
    disconnect();
    return respr.status();
  }
  const http::Response resp = std::move(respr).value();

  if (protocol_ == Protocol::kJsonRpc) {
    auto decoded = jsonrpc::decode_response(resp.body);
    if (!decoded.is_ok()) return decoded.status();
    if (decoded.value().is_fault) {
      return Status(fault_code_to_status(decoded.value().fault_code),
                    decoded.value().fault_string);
    }
    return std::move(decoded).value().result;
  }
  auto decoded = xmlrpc::decode_response(resp.body);
  if (!decoded.is_ok()) return decoded.status();
  if (decoded.value().is_fault) {
    return Status(fault_code_to_status(decoded.value().fault_code),
                  decoded.value().fault_string);
  }
  return std::move(decoded).value().result;
}

}  // namespace gae::rpc
