#include "rpc/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "rpc/deadline.h"
#include "rpc/http.h"
#include "rpc/jsonrpc.h"
#include "rpc/server.h"  // fault-code <-> StatusCode mapping
#include "rpc/xmlrpc.h"

namespace gae::rpc {

namespace {

/// Legacy single-endpoint clients keep roughly the old semantics — a quick
/// transparent retry of a dropped keep-alive connection — plus bounded
/// backoff so a dead server is not hammered in a tight loop.
ClientOptions legacy_options() {
  ClientOptions options;
  options.default_call.retry.max_attempts = 3;
  options.default_call.retry.initial_backoff_ms = 10;
  options.default_call.retry.max_backoff_ms = 500;
  return options;
}

/// Extracts the "leader=host:port" hint a replica embeds in a NOT_PRIMARY
/// fault message. False when the message carries no (parseable) hint.
bool parse_leader_hint(const std::string& message, std::string& host,
                       std::uint16_t& port) {
  const std::size_t at = message.find("leader=");
  if (at == std::string::npos) return false;
  std::size_t end = message.find_first_of(" ,;)", at + 7);
  if (end == std::string::npos) end = message.size();
  const std::string hint = message.substr(at + 7, end - at - 7);
  const std::size_t colon = hint.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= hint.size()) return false;
  int parsed = 0;
  for (std::size_t i = colon + 1; i < hint.size(); ++i) {
    if (hint[i] < '0' || hint[i] > '9') return false;
    parsed = parsed * 10 + (hint[i] - '0');
    if (parsed > 65535) return false;
  }
  if (parsed <= 0) return false;
  host = hint.substr(0, colon);
  port = static_cast<std::uint16_t>(parsed);
  return true;
}

}  // namespace

RpcClient::RpcClient(std::string host, std::uint16_t port, Protocol protocol)
    : RpcClient(std::vector<Endpoint>{{std::move(host), port}}, protocol,
                legacy_options()) {}

RpcClient::RpcClient(std::vector<Endpoint> endpoints, Protocol protocol,
                     ClientOptions options)
    : protocol_(protocol), options_(std::move(options)), endpoints_(std::move(endpoints)) {
  if (options_.clock) {
    clock_ptr_ = options_.clock;
  } else {
    owned_clock_ = std::make_shared<WallClock>();
    clock_ptr_ = owned_clock_.get();
  }
  if (!options_.sleep_ms) {
    options_.sleep_ms = [](int ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
  if (options_.shared_pool) {
    pool_ = options_.shared_pool;
  } else {
    PoolOptions pool_options = options_.pool;
    if (!pool_options.clock) pool_options.clock = clock_ptr_;
    if (!pool_options.metrics) pool_options.metrics = options_.metrics;
    if (!pool_options.transport) pool_options.transport = options_.transport;
    pool_ = std::make_shared<ConnectionPool>(pool_options);
  }
  breakers_.reserve(endpoints_.size());
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    breakers_.push_back(make_breaker(i));
  }
  arm_endpoint_counters();
}

void RpcClient::count_endpoint(std::size_t index,
                               telemetry::Counter* EndpointCounters::*what) {
  if (index >= endpoint_counters_.size()) return;
  if (telemetry::Counter* c = endpoint_counters_[index].*what) c->inc();
}

void RpcClient::arm_endpoint_counters() {
  endpoint_counters_.assign(endpoints_.size(), EndpointCounters{});
  if (!options_.metrics) return;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const std::string prefix =
        "rpc.client." + endpoints_[i].host + ":" + std::to_string(endpoints_[i].port) + ".";
    EndpointCounters& ec = endpoint_counters_[i];
    ec.attempts = &options_.metrics->counter(prefix + "attempts");
    ec.retries = &options_.metrics->counter(prefix + "retries");
    ec.breaker_transitions = &options_.metrics->counter(prefix + "breaker_transitions");
    ec.breaker_open = &options_.metrics->counter(prefix + "breaker_open");
  }
}

void RpcClient::arm_breaker_listener(CircuitBreaker& breaker, std::size_t index) {
  breaker.set_transition_listener(
      [this, index](CircuitBreaker::State from, CircuitBreaker::State to, SimTime) {
        // Runs with mutex_ held (breakers are only driven under the lock).
        // A breaker opening means an endpoint went dark: refresh the
        // failover list from discovery before the next connection attempt.
        if (to == CircuitBreaker::State::kOpen) needs_resolve_ = true;
        count_endpoint(index, &EndpointCounters::breaker_transitions);
        if (to == CircuitBreaker::State::kOpen) {
          count_endpoint(index, &EndpointCounters::breaker_open);
        }
        if (options_.on_breaker_transition && index < endpoints_.size()) {
          options_.on_breaker_transition(endpoints_[index], from, to);
        }
      });
}

std::unique_ptr<CircuitBreaker> RpcClient::make_breaker(std::size_t index) {
  auto breaker = std::make_unique<CircuitBreaker>(*clock_ptr_, options_.breaker);
  arm_breaker_listener(*breaker, index);
  return breaker;
}

void RpcClient::set_endpoints(std::vector<Endpoint> endpoints) {
  std::lock_guard<std::mutex> lock(mutex_);
  set_endpoints_locked(std::move(endpoints));
}

void RpcClient::set_endpoints_locked(std::vector<Endpoint> endpoints) {
  if (endpoints.empty()) return;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers;
  breakers.reserve(endpoints.size());
  std::size_t preferred = 0;  // sticky preference follows its endpoint
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    std::unique_ptr<CircuitBreaker> kept;
    for (std::size_t j = 0; j < endpoints_.size(); ++j) {
      if (breakers_[j] && endpoints_[j].host == endpoints[i].host &&
          endpoints_[j].port == endpoints[i].port) {
        kept = std::move(breakers_[j]);
        if (preferred_endpoint_ == j) preferred = i;
        break;
      }
    }
    breakers.push_back(kept ? std::move(kept) : nullptr);
  }
  endpoints_ = std::move(endpoints);
  breakers_ = std::move(breakers);
  preferred_endpoint_ = preferred;
  // (Re)arm listeners after endpoints_ is final so kept breakers report
  // their endpoint's new index.
  for (std::size_t i = 0; i < breakers_.size(); ++i) {
    if (!breakers_[i]) {
      breakers_[i] = make_breaker(i);
    } else {
      arm_breaker_listener(*breakers_[i], i);
    }
  }
  arm_endpoint_counters();
}

void RpcClient::maybe_re_resolve() {
  if (!options_.resolve_endpoints) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!needs_resolve_) return;
    needs_resolve_ = false;
  }
  // The resolver typically queries the registry over its own RPC client —
  // run it unlocked so concurrent calls are not serialised behind it.
  auto fresh = options_.resolve_endpoints();
  if (fresh.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.reresolves;
  set_endpoints_locked(std::move(fresh));
}

void RpcClient::disconnect() { pool_->clear(); }

CircuitBreaker::State RpcClient::breaker_state(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return breakers_.at(index)->state();
}

std::size_t RpcClient::endpoint_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return endpoints_.size();
}

Endpoint RpcClient::endpoint(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return endpoints_.at(index);
}

RpcClientStats RpcClient::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

int RpcClient::remaining_ms(SimTime deadline) const {
  return static_cast<int>((deadline - clock().now()) / 1000);
}

Result<RpcClient::Checkout> RpcClient::acquire_connection() {
  maybe_re_resolve();
  // Sticky walk: start from the endpoint that served the last successful
  // attempt and fall back in list order (wrapping), skipping endpoints whose
  // breaker rejects. Starting from the *preferred* endpoint rather than
  // index 0 keeps a flapping primary from stealing traffic back from a
  // healthy failover target; traffic returns to an earlier endpoint only
  // when the current one fails.
  Status last = unavailable_error("rpc client has no endpoints");
  bool any_admitted = false;
  for (std::size_t k = 0;; ++k) {
    Endpoint target;
    std::size_t index = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (k >= endpoints_.size()) break;
      index = (preferred_endpoint_ + k) % endpoints_.size();
      if (!breakers_[index]->allow()) continue;
      any_admitted = true;
      target = endpoints_[index];
    }
    auto conn = pool_->checkout(target.host, target.port);
    if (!conn.is_ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (index < breakers_.size()) breakers_[index]->record_failure();
      last = conn.status();
      continue;
    }
    return Checkout{std::move(conn).value(), index};
  }
  if (!any_admitted) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.breaker_rejections;
    return unavailable_error("circuit open: every endpoint is rejecting calls");
  }
  return last;
}

Result<Value> RpcClient::call(const std::string& method, const Array& params) {
  return call(method, params, options_.default_call);
}

Result<Value> RpcClient::call(const std::string& method, const Array& params,
                              const CallOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.calls;
  }
  // Fresh traffic funds the retry budget; the deposit happens whether or
  // not this call ever retries.
  if (options.retry.budget) options.retry.budget->on_request();
  // One client span per logical call (retries included) — the Dapper shape:
  // the server hop becomes this span's child via the injected context.
  std::optional<telemetry::ScopedSpan> span;
  if (options_.tracer) {
    span.emplace(options_.tracer, options_.trace_service, method, "client");
  }

  // The effective whole-call budget is the tighter of the explicit option
  // and the thread's ambient deadline (what is left of the enclosing server
  // call, when this client runs inside a handler).
  int effective_deadline_ms = options.deadline_ms;
  const int ambient_rem = ambient_deadline_remaining_ms();
  if (ambient_rem == 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.deadline_exceeded;
    ++stats_.failed_calls;
    const Status s =
        deadline_exceeded_error("ambient deadline expired before call: " + method);
    if (span) span->set_status(s.code());
    return s;
  }
  if (ambient_rem > 0 &&
      (effective_deadline_ms <= 0 || ambient_rem < effective_deadline_ms)) {
    effective_deadline_ms = ambient_rem;
  }
  const SimTime deadline =
      effective_deadline_ms > 0
          ? clock().now() + static_cast<SimTime>(effective_deadline_ms) * 1000
          : 0;
  const int max_attempts = std::max(1, options.retry.max_attempts);
  Status last = unavailable_error("rpc call made no attempts");
  int redirects = 0;  // NOT_PRIMARY leader hints followed this call

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    bool wrote_request = false;
    std::size_t attempt_index = 0;
    auto result =
        call_attempt(method, params, deadline, options.tier, wrote_request, attempt_index);
    if (result.is_ok()) return result;
    last = result.status();
    if (last.code() == StatusCode::kDeadlineExceeded) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.deadline_exceeded;
    }

    // A NOT_PRIMARY fault is an answer from a healthy replica, not an
    // outage: the endpoint's breaker is not charged (call_attempt already
    // recorded the success), and when the fault names the leader we follow
    // the hint — put the leader first in the failover list and re-send.
    // Bounded so two replicas pointing at each other cannot loop a call.
    if (last.code() == StatusCode::kNotPrimary) {
      std::string leader_host;
      std::uint16_t leader_port = 0;
      if (redirects < 2 && parse_leader_hint(last.message(), leader_host, leader_port)) {
        ++redirects;
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.not_primary_redirects;
        std::vector<Endpoint> reordered;
        reordered.push_back({leader_host, leader_port});
        for (const auto& e : endpoints_) {
          if (e.host != leader_host || e.port != leader_port) reordered.push_back(e);
        }
        set_endpoints_locked(std::move(reordered));
        preferred_endpoint_ = 0;  // the leader now heads the list
        --attempt;  // the redirect does not consume a retry attempt
        continue;
      }
      break;  // no hint (or hint chain too long): surface the fault
    }

    // RPC faults and semantic errors are answers, not outages.
    if (!RetryPolicy::is_retryable(last.code())) break;
    if (wrote_request && !options.idempotent) {
      // The request may have reached (and executed on) the server; blindly
      // re-sending a non-idempotent call could double-apply it.
      last = unavailable_error("not retrying non-idempotent call " + method +
                               " (request may have reached the server): " +
                               last.message());
      break;
    }
    if (attempt >= max_attempts) break;
    int backoff = options.retry.backoff_ms(attempt);
    if (deadline > 0) {
      const int rem = remaining_ms(deadline);
      if (rem <= 1) {
        // No room for even a minimal next attempt.
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.deadline_exceeded;
        last = deadline_exceeded_error("deadline budget exhausted after " +
                                       std::to_string(attempt) + " attempt(s): " + method);
        break;
      }
      // Clamp the sleep so backoff never overshoots the remaining budget:
      // sleep at most rem-1 ms and leave at least 1 ms for the attempt
      // itself. (Previously a backoff >= rem abandoned the call outright,
      // wasting budget that a shorter sleep could have used.)
      if (backoff >= rem) backoff = rem - 1;
    }
    if (options.retry.budget && !options.retry.budget->try_retry()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.retry_budget_exhausted;
      last = resource_exhausted_error("retry budget exhausted for " + method + ": " +
                                      last.message());
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.retries;
      count_endpoint(attempt_index, &EndpointCounters::retries);
    }
    if (backoff > 0) options_.sleep_ms(backoff);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failed_calls;
  }
  if (span) span->set_status(last.code());
  return last;
}

Result<Value> RpcClient::call_attempt(const std::string& method, const Array& params,
                                      SimTime deadline, Criticality tier,
                                      bool& wrote_request, std::size_t& attempt_index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.attempts;
  }
  auto acquired = acquire_connection();
  if (!acquired.is_ok()) return acquired.status();
  Checkout checkout = std::move(acquired).value();
  const std::size_t index = checkout.index;
  attempt_index = index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (index != 0) ++stats_.failovers;
    count_endpoint(index, &EndpointCounters::attempts);
  }

  // Bookkeeping for the wire outcome: success parks the connection for the
  // next caller and re-anchors the sticky preference; failure closes it and
  // charges the endpoint's breaker.
  auto succeed = [&]() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (index < breakers_.size()) breakers_[index]->record_success();
      preferred_endpoint_ = index;
    }
    pool_->checkin(std::move(checkout.conn));
  };
  auto fail = [&]() {
    pool_->discard(std::move(checkout.conn));
    std::lock_guard<std::mutex> lock(mutex_);
    if (index < breakers_.size()) breakers_[index]->record_failure();
  };

  Stream& stream = *checkout.conn.stream;
  int wire_deadline_ms = -1;
  if (deadline > 0) {
    const int rem = remaining_ms(deadline);
    if (rem <= 0) {
      pool_->checkin(std::move(checkout.conn));  // unused, still healthy
      return deadline_exceeded_error("deadline expired before send: " + method);
    }
    stream.set_recv_timeout_ms(rem);
    wire_deadline_ms = rem;
  } else {
    stream.set_recv_timeout_ms(0);
  }

  http::Request req;
  req.method = "POST";
  req.path = "/rpc";
  req.headers["connection"] = "keep-alive";
  // Remaining budget at send time plus the request tier, in their dedicated
  // header slots; the server turns the budget back into an absolute deadline
  // on its own clock and sheds by tier under overload.
  req.deadline_ms = wire_deadline_ms;
  req.tier = static_cast<int>(tier);
  if (!session_token_.empty()) req.headers["x-clarens-session"] = session_token_;

  // Propagate the ambient trace context (the enclosing ScopedSpan — this
  // call's client span, or whatever server span this client runs under).
  // The header is the canonical carrier on HTTP transports; the body's
  // reserved trace member is for peers that cannot set headers, and
  // duplicating the triple there would burn ~2µs per call re-parsing bytes
  // the server already has (the overhead bench budget is 5%).
  const telemetry::TraceContext trace_ctx = telemetry::current_trace();
  if (trace_ctx.valid()) {
    req.trace = telemetry::format_trace(trace_ctx);
  }

  if (protocol_ == Protocol::kJsonRpc) {
    req.headers["content-type"] = "application/json";
    req.body = jsonrpc::encode_call(method, params,
                                    next_id_.fetch_add(1, std::memory_order_relaxed));
  } else {
    req.headers["content-type"] = "text/xml";
    req.body = xmlrpc::encode_call(method, params);
  }

  wrote_request = true;
  Status ws = http::write_request(stream, req);
  if (!ws.is_ok()) {
    // A write failure on a *reused* keep-alive connection usually means the
    // peer closed it while parked — no request reached a live server, so
    // even non-idempotent calls may retry safely.
    if (checkout.conn.reused) wrote_request = false;
    fail();
    return ws;
  }
  auto respr = http::read_response(stream);
  if (!respr.is_ok()) {
    fail();
    if (respr.status().code() == StatusCode::kInvalidArgument) {
      // Unparseable response framing means a corrupt transport, not a bad
      // argument — report it as the retryable outage it is.
      return unavailable_error("corrupt response: " + respr.status().message());
    }
    return respr.status();
  }
  // The server answered; RPC faults below are its answer, not an outage.
  const http::Response resp = std::move(respr).value();
  succeed();

  if (resp.status_code == 503) {
    // Admission-control shed. The body carries a RESOURCE_EXHAUSTED fault in
    // our own protocol; prefer its message, but classify the response as
    // retryable-with-backoff even if the body is unparseable — a shed is
    // load feedback, never a protocol error.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.shed_rejections;
    }
    if (protocol_ == Protocol::kJsonRpc) {
      auto decoded = jsonrpc::decode_response(resp.body);
      if (decoded.is_ok() && decoded.value().is_fault) {
        return Status(fault_code_to_status(decoded.value().fault_code),
                      decoded.value().fault_string);
      }
    } else {
      auto decoded = xmlrpc::decode_response(resp.body);
      if (decoded.is_ok() && decoded.value().is_fault) {
        return Status(fault_code_to_status(decoded.value().fault_code),
                      decoded.value().fault_string);
      }
    }
    return resource_exhausted_error("server shed request (503): " + method);
  }

  if (protocol_ == Protocol::kJsonRpc) {
    auto decoded = jsonrpc::decode_response(resp.body);
    if (!decoded.is_ok()) return decoded.status();
    if (decoded.value().is_fault) {
      return Status(fault_code_to_status(decoded.value().fault_code),
                    decoded.value().fault_string);
    }
    return std::move(decoded).value().result;
  }
  auto decoded = xmlrpc::decode_response(resp.body);
  if (!decoded.is_ok()) return decoded.status();
  if (decoded.value().is_fault) {
    return Status(fault_code_to_status(decoded.value().fault_code),
                  decoded.value().fault_string);
  }
  return std::move(decoded).value().result;
}

}  // namespace gae::rpc
