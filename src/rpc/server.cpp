#include "rpc/server.h"

#include <chrono>
#include <optional>
#include <stdexcept>

#include "common/log.h"
#include "rpc/deadline.h"
#include "rpc/jsonrpc.h"
#include "rpc/xmlrpc.h"

namespace gae::rpc {

void Dispatcher::register_method(const std::string& name, Method method) {
  MethodEntry& entry = methods_[name];
  entry.fn = std::move(method);
  arm_method_metrics(name, entry);
}

void Dispatcher::arm_method_metrics(const std::string& name, MethodEntry& entry) {
  if (!metrics_) return;
  entry.calls = &metrics_->counter("rpc.server." + name + ".calls");
  entry.errors = &metrics_->counter("rpc.server." + name + ".errors");
  entry.deadline_expired = &metrics_->counter("rpc.server." + name + ".deadline_expired");
  entry.in_flight = &metrics_->gauge("rpc.server." + name + ".in_flight");
  entry.latency = &metrics_->histogram("rpc.server." + name + ".latency_us");
}

bool Dispatcher::has_method(const std::string& name) const {
  return methods_.count(name) != 0;
}

std::vector<std::string> Dispatcher::method_names() const {
  std::vector<std::string> names;
  names.reserve(methods_.size());
  for (const auto& [name, _] : methods_) names.push_back(name);
  return names;
}

void Dispatcher::add_interceptor(Interceptor interceptor) {
  interceptors_.push_back(std::move(interceptor));
}

void Dispatcher::enable_batch(std::size_t max_items) {
  register_method(
      "rpc.batch",
      [this, max_items](const Array& params, const CallContext& ctx) -> Result<Value> {
        if (params.size() != 1 || !params[0].is_array()) {
          return invalid_argument_error(
              "rpc.batch expects one array parameter of embedded calls");
        }
        const Array& items = params[0].as_array();
        if (items.size() > max_items) {
          return invalid_argument_error("rpc.batch accepts at most " +
                                        std::to_string(max_items) + " items, got " +
                                        std::to_string(items.size()));
        }
        // Sub-calls reuse the batch's context — session, tier, and crucially
        // deadline_us, so items dispatched after the caller's budget ran out
        // are pre-rejected per item — but clear the wire trace: each item's
        // server span should chain to the batch's own (now ambient) span,
        // not re-parent to the remote client context.
        CallContext sub = ctx;
        sub.trace.clear();
        Array out;
        out.reserve(items.size());
        for (const Value& item : items) {
          auto one = [&]() -> Result<Value> {
            try {
              if (!item.is_struct()) {
                return invalid_argument_error("batch item must be a struct");
              }
              const std::string method = item.get_string("method", "");
              if (method.empty()) {
                return invalid_argument_error("batch item lacks a method");
              }
              if (method == "rpc.batch") {
                // One level only: nesting would let a single admission
                // ticket cover max_items^depth dispatches.
                return invalid_argument_error("nested rpc.batch is not allowed");
              }
              Array sub_params;
              if (item.has("params")) sub_params = item.at("params").as_array();
              return dispatch(method, sub_params, sub);
            } catch (const std::exception& e) {
              return invalid_argument_error(std::string("malformed batch item: ") +
                                            e.what());
            }
          }();
          // Per-item status: one failed item never poisons its siblings.
          Struct entry;
          if (one.is_ok()) {
            entry["ok"] = true;
            entry["result"] = std::move(one).value();
          } else {
            entry["ok"] = false;
            entry["code"] = status_to_fault_code(one.status().code());
            entry["message"] = one.status().message();
          }
          out.push_back(Value(std::move(entry)));
        }
        return Value(std::move(out));
      });
}

void Dispatcher::set_telemetry(telemetry::MetricsRegistry* metrics,
                               telemetry::Tracer* tracer, std::string service_name) {
  metrics_ = metrics;
  tracer_ = tracer;
  service_name_ = std::move(service_name);
  for (auto& [name, entry] : methods_) arm_method_metrics(name, entry);
}

Result<Value> Dispatcher::dispatch(const std::string& method, const Array& params,
                                   const CallContext& ctx) const {
  // Span first so interceptor rejections (auth, ACL) are traced and timed
  // like any other outcome. The remote parent comes off the wire; for
  // in-process hops ctx.trace is empty and the span chains to the ambient
  // thread-local context instead.
  std::optional<telemetry::ScopedSpan> span;
  if (tracer_ || metrics_) {
    span.emplace(tracer_, service_name_, method, "server",
                 telemetry::parse_trace(ctx.trace));
  }
  const auto it = methods_.find(method);
  const MethodEntry* entry = it == methods_.end() ? nullptr : &it->second;
  if (entry && entry->calls) {
    entry->calls->inc();
    entry->in_flight->add(1);
  }
  // Decrement by RAII: a handler that throws something other than
  // std::exception unwinds straight through the dispatch body below, and the
  // gauge must not stay stuck high when it does.
  struct InFlightGuard {
    telemetry::Gauge* gauge;
    ~InFlightGuard() {
      if (gauge) gauge->add(-1);
    }
  } in_flight_guard{entry && entry->calls ? entry->in_flight : nullptr};

  auto result = [&]() -> Result<Value> {
    if (!entry) return not_found_error("no such method: " + method);
    // Deadline plane: work whose whole-call budget is already spent is
    // refused before interceptors or the handler run — the caller has given
    // up on the answer, and computing it anyway deepens the overload.
    if (ctx.deadline_us != 0 && steady_now_us() >= ctx.deadline_us) {
      if (entry->deadline_expired) entry->deadline_expired->inc();
      return deadline_exceeded_error("deadline expired before dispatch of " + method);
    }
    // Whatever budget remains becomes the thread's ambient deadline, so
    // downstream RpcClient calls the handler makes forward only what is
    // left of it (minus the time spent here) on their own wire headers.
    DeadlineScope deadline_scope(ctx.deadline_us);
    for (const auto& interceptor : interceptors_) {
      const Status s = interceptor(method, ctx);
      if (!s.is_ok()) return s;
    }
    try {
      return entry->fn(params, ctx);
    } catch (const std::exception& e) {
      return invalid_argument_error(std::string("handler error in ") + method + ": " +
                                    e.what());
    }
  }();

  if (entry && entry->calls) {
    // The span (engaged whenever metrics are) already timed this dispatch.
    entry->latency->record(static_cast<std::uint64_t>(span->elapsed_us()));
    if (!result.is_ok()) entry->errors->inc();
  }
  if (span && !result.is_ok()) span->set_status(result.status().code());
  return result;
}

int status_to_fault_code(StatusCode code) { return 100 + static_cast<int>(code); }

bool rpc_request_is_json(const http::Request& req) {
  return req.header("content-type", "text/xml").find("json") != std::string::npos;
}

CallContext rpc_context_from_request(const http::Request& req, std::int64_t picked_up_us,
                                     std::int64_t queue_delay_us) {
  CallContext ctx;
  ctx.session_token = req.header("x-clarens-session");
  ctx.protocol = rpc_request_is_json(req) ? "jsonrpc" : "xmlrpc";
  // Trace context rides the x-gae-trace header; the body's reserved trace
  // field is the fallback for paths that strip transport headers.
  ctx.trace = req.trace;
  ctx.tier = criticality_from_wire(req.tier);
  // Deadline off the wire: remaining milliseconds at client send time, minus
  // whatever time the request already spent queued before being served.
  if (req.deadline_ms >= 0) {
    const std::int64_t budget_us =
        static_cast<std::int64_t>(req.deadline_ms) * 1000 - queue_delay_us;
    ctx.deadline_us = picked_up_us + (budget_us > 0 ? budget_us : 0);
  }
  return ctx;
}

http::Response rpc_dispatch_request(
    const http::Request& req, CallContext ctx,
    const std::function<Result<Value>(const std::string& method, const Array& params,
                                      const CallContext& ctx)>& dispatch) {
  const bool is_json = rpc_request_is_json(req);
  http::Response resp;
  resp.headers["content-type"] = is_json ? "application/json" : "text/xml";
  if (is_json) {
    auto call = jsonrpc::decode_call(req.body);
    if (!call.is_ok()) {
      resp.body = jsonrpc::encode_fault(status_to_fault_code(call.status().code()),
                                        call.status().message(), 0);
    } else {
      if (ctx.trace.empty()) ctx.trace = call.value().trace;
      auto result = dispatch(call.value().method, call.value().params, ctx);
      resp.body = result.is_ok()
                      ? jsonrpc::encode_response(result.value(), call.value().id)
                      : jsonrpc::encode_fault(status_to_fault_code(result.status().code()),
                                              result.status().message(), call.value().id);
    }
  } else {
    auto call = xmlrpc::decode_call(req.body);
    if (!call.is_ok()) {
      resp.body = xmlrpc::encode_fault(status_to_fault_code(call.status().code()),
                                       call.status().message());
    } else {
      if (ctx.trace.empty()) ctx.trace = call.value().trace;
      auto result = dispatch(call.value().method, call.value().params, ctx);
      resp.body = result.is_ok()
                      ? xmlrpc::encode_response(result.value())
                      : xmlrpc::encode_fault(status_to_fault_code(result.status().code()),
                                             result.status().message());
    }
  }
  return resp;
}

http::Response rpc_shed_response(bool is_json) {
  const int fault = status_to_fault_code(StatusCode::kResourceExhausted);
  const std::string msg = "server overloaded: request shed";
  http::Response resp;
  resp.headers["content-type"] = is_json ? "application/json" : "text/xml";
  resp.status_code = 503;
  resp.reason = "Service Unavailable";
  resp.body = is_json ? jsonrpc::encode_fault(fault, msg, 0) : xmlrpc::encode_fault(fault, msg);
  return resp;
}

StatusCode fault_code_to_status(int fault_code) {
  const int raw = fault_code - 100;
  if (raw < 0 || raw > static_cast<int>(StatusCode::kNotPrimary)) return StatusCode::kInternal;
  return static_cast<StatusCode>(raw);
}

RpcServer::RpcServer(std::shared_ptr<Dispatcher> dispatcher, ServerOptions options)
    : dispatcher_(std::move(dispatcher)), options_(options) {}

RpcServer::~RpcServer() { stop(); }

Result<std::uint16_t> RpcServer::start() {
  Transport& transport = options_.transport ? *options_.transport : tcp_transport();
  auto listener = transport.listen(options_.port);
  if (!listener.is_ok()) return listener.status();
  listener_ = std::move(listener).value();
  port_ = listener_->port();
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  if (options_.metrics && options_.admission) {
    shed_counter_ = &options_.metrics->counter("rpc.server.requests_shed");
    queue_shed_counter_ = &options_.metrics->counter("rpc.server.queue_shed");
    admission_limit_gauge_ = &options_.metrics->gauge("rpc.server.admission_limit");
    brownout_gauge_ = &options_.metrics->gauge("rpc.server.brownout");
  }
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  return port_;
}

void RpcServer::stop() {
  if (!running_.exchange(false)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (listener_) listener_->close();
  if (acceptor_.joinable()) acceptor_.join();
  {
    // Kick workers out of blocking reads on kept-alive connections.
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (Stream* stream : active_conns_) stream->shutdown_both();
  }
  if (pool_) pool_->shutdown(false);
}

void RpcServer::register_connection(Stream* stream) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  active_conns_.insert(stream);
}

void RpcServer::unregister_connection(Stream* stream) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  active_conns_.erase(stream);
}

void RpcServer::accept_loop() {
  const std::size_t max_in_flight =
      options_.max_in_flight > 0 ? options_.max_in_flight : 2 * options_.num_workers;
  while (running_.load()) {
    auto stream = listener_->accept();
    if (!stream.is_ok()) {
      if (running_.load()) {
        GAE_LOG(Warn) << "rpc accept failed: " << stream.status();
      }
      return;
    }
    // Admission control: beyond the in-flight cap every further connection
    // would only deepen the worker queue (slowloris amplification), so shed
    // it at the door instead.
    if (in_flight_.load(std::memory_order_relaxed) >= max_in_flight) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      if (options_.metrics) {
        options_.metrics->counter("rpc.server.connections_rejected").inc();
      }
      continue;  // stream destructor closes the socket
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    // Stamp the accept instant: serve_connection charges the time the
    // connection spends waiting for a worker against both the CoDel queue
    // bound and the first request's deadline budget.
    const std::int64_t accepted_at_us = steady_now_us();
    std::shared_ptr<Stream> conn = std::move(stream).value();
    const bool ok = pool_->submit([this, conn, accepted_at_us]() mutable {
      serve_connection(*conn, accepted_at_us);
      const auto remaining = in_flight_.fetch_sub(1, std::memory_order_relaxed) - 1;
      if (options_.metrics) {
        options_.metrics->gauge("rpc.server.connections")
            .set(static_cast<std::int64_t>(remaining));
      }
    });
    if (!ok) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    if (options_.metrics) {
      // Queue depth right after admission is the moment it peaks: every
      // admitted connection beyond the worker count is sitting in the pool
      // queue (the fig-6 knee the paper measures).
      options_.metrics->gauge("rpc.server.queue_depth")
          .set(static_cast<std::int64_t>(pool_->queued()));
      options_.metrics->gauge("rpc.server.connections")
          .set(static_cast<std::int64_t>(in_flight_.load(std::memory_order_relaxed)));
    }
  }
}

void RpcServer::serve_connection(Stream& stream, std::int64_t accepted_at_us) {
  stream.set_no_delay(true);
  if (options_.recv_timeout_ms > 0) stream.set_recv_timeout_ms(options_.recv_timeout_ms);
  register_connection(&stream);
  // Unregister before the caller releases the stream, so stop() never calls
  // shutdown_both() on a destroyed object.
  struct Deregister {
    RpcServer* server;
    Stream* stream;
    ~Deregister() { server->unregister_connection(stream); }
  } deregister{this, &stream};

  const http::ReadLimits limits{options_.max_header_bytes, options_.max_body_bytes};
  bool first_request = true;
  while (running_.load()) {
    auto reqr = http::read_request(stream, limits);
    if (!reqr.is_ok()) {
      if (reqr.status().code() == StatusCode::kDeadlineExceeded) {
        // Peer sat silent past the receive timeout; reclaim the worker.
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics) {
          options_.metrics->counter("rpc.server.connections_timed_out").inc();
        }
      } else if (reqr.status().code() == StatusCode::kInvalidArgument) {
        // Malformed framing (bad request line, unparseable content-length,
        // oversized header/body). Tell the peer why before closing — a
        // best-effort 400; a write failure here changes nothing, the
        // connection is closing either way.
        GAE_LOG(Debug) << "rpc request framing error: " << reqr.status();
        if (options_.metrics) {
          options_.metrics->counter("rpc.server.bad_requests").inc();
        }
        http::Response bad;
        bad.status_code = 400;
        bad.reason = "Bad Request";
        bad.headers["content-type"] = "text/plain";
        bad.body = reqr.status().message() + "\n";
        (void)http::write_response(stream, bad, /*keep_alive=*/false);
      } else if (reqr.status().code() != StatusCode::kUnavailable) {
        // Clean close of a kept-alive connection is routine; anything else
        // is worth a log line.
        GAE_LOG(Debug) << "rpc request framing error: " << reqr.status();
      }
      return;
    }
    http::Request req = std::move(reqr).value();
    const bool keep_alive = req.keep_alive();
    const bool is_json = rpc_request_is_json(req);

    // The first request on a connection additionally pays for the time its
    // bytes sat in the acceptor queue — the budget kept draining while the
    // connection waited for a worker, and the client-side clock that stamped
    // the deadline header cannot see that wait.
    const std::int64_t picked_up_us = steady_now_us();
    const std::int64_t queue_delay_us =
        first_request && picked_up_us > accepted_at_us ? picked_up_us - accepted_at_us : 0;
    CallContext ctx = rpc_context_from_request(req, picked_up_us, queue_delay_us);

    // Admission: a first request whose connection sat in the acceptor queue
    // past the CoDel bound is shed and its connection closed (closing is
    // what drains the queue); every other request must take a concurrency
    // ticket, refused by criticality tier once the limiter is at capacity.
    bool shed = false;
    bool close_after_shed = false;
    bool holds_ticket = false;
    if (options_.admission) {
      if (first_request && options_.admission->queue_overloaded(
                               static_cast<std::uint64_t>(queue_delay_us))) {
        shed = true;
        close_after_shed = true;
        if (queue_shed_counter_) queue_shed_counter_->inc();
      } else if (!options_.admission->try_admit(ctx.tier)) {
        shed = true;
      } else {
        holds_ticket = true;
      }
    }
    first_request = false;

    if (shed) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (shed_counter_) shed_counter_->inc();
      requests_.fetch_add(1, std::memory_order_relaxed);
      const bool shed_keep_alive = keep_alive && !close_after_shed;
      if (!http::write_response(stream, rpc_shed_response(is_json), shed_keep_alive).is_ok()) {
        return;
      }
      if (!shed_keep_alive) return;
      continue;
    }

    // Ticket released by RAII so a decode fault (no dispatch) cannot leak
    // admission capacity.
    struct Ticket {
      AdmissionController* ctrl;
      ~Ticket() {
        if (ctrl) ctrl->release();
      }
    } ticket{holds_ticket ? options_.admission : nullptr};

    // Dispatch timed at the admission layer: the sample feeds the AIMD
    // limit, and the gauges publish the limit it settled on.
    const http::Response resp = rpc_dispatch_request(
        req, ctx,
        [&](const std::string& method, const Array& params, const CallContext& call_ctx) {
          const std::int64_t start_us = steady_now_us();
          auto result = dispatcher_->dispatch(method, params, call_ctx);
          if (options_.admission) {
            options_.admission->on_sample(
                static_cast<std::uint64_t>(steady_now_us() - start_us), !result.is_ok());
            if (admission_limit_gauge_) {
              admission_limit_gauge_->set(
                  static_cast<std::int64_t>(options_.admission->limit()));
              brownout_gauge_->set(options_.admission->browned_out() ? 1 : 0);
            }
          }
          return result;
        });

    requests_.fetch_add(1, std::memory_order_relaxed);
    if (!http::write_response(stream, resp, keep_alive).is_ok()) return;
    if (!keep_alive) return;
  }
}

}  // namespace gae::rpc
