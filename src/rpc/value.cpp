#include "rpc/value.h"

#include <sstream>
#include <stdexcept>

namespace gae::rpc {

Value::Type Value::type() const {
  return static_cast<Type>(data_.index());
}

const char* Value::type_name() const {
  switch (type()) {
    case Type::kNil: return "nil";
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kDouble: return "double";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kStruct: return "struct";
  }
  return "?";
}

namespace {
[[noreturn]] void type_error(const char* want, const char* got) {
  throw std::runtime_error(std::string("rpc value type mismatch: wanted ") + want +
                           ", got " + got);
}
}  // namespace

bool Value::as_bool() const {
  if (auto* p = std::get_if<bool>(&data_)) return *p;
  type_error("bool", type_name());
}

std::int64_t Value::as_int() const {
  if (auto* p = std::get_if<std::int64_t>(&data_)) return *p;
  type_error("int", type_name());
}

double Value::as_double() const {
  if (auto* p = std::get_if<double>(&data_)) return *p;
  if (auto* p = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*p);
  type_error("double", type_name());
}

const std::string& Value::as_string() const {
  if (auto* p = std::get_if<std::string>(&data_)) return *p;
  type_error("string", type_name());
}

const Array& Value::as_array() const {
  if (auto* p = std::get_if<Array>(&data_)) return *p;
  type_error("array", type_name());
}

const Struct& Value::as_struct() const {
  if (auto* p = std::get_if<Struct>(&data_)) return *p;
  type_error("struct", type_name());
}

Array& Value::as_array() {
  if (auto* p = std::get_if<Array>(&data_)) return *p;
  type_error("array", type_name());
}

Struct& Value::as_struct() {
  if (auto* p = std::get_if<Struct>(&data_)) return *p;
  type_error("struct", type_name());
}

bool Value::has(const std::string& key) const { return as_struct().count(key) != 0; }

const Value& Value::at(const std::string& key) const {
  const Struct& s = as_struct();
  auto it = s.find(key);
  if (it == s.end()) throw std::runtime_error("rpc struct missing member: " + key);
  return it->second;
}

std::int64_t Value::get_int(const std::string& key, std::int64_t fallback) const {
  const Struct& s = as_struct();
  auto it = s.find(key);
  return it == s.end() ? fallback : it->second.as_int();
}

double Value::get_double(const std::string& key, double fallback) const {
  const Struct& s = as_struct();
  auto it = s.find(key);
  return it == s.end() ? fallback : it->second.as_double();
}

std::string Value::get_string(const std::string& key, const std::string& fallback) const {
  const Struct& s = as_struct();
  auto it = s.find(key);
  return it == s.end() ? fallback : it->second.as_string();
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Struct& s = as_struct();
  auto it = s.find(key);
  return it == s.end() ? fallback : it->second.as_bool();
}

namespace {

void escape_into(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
  out << '"';
}

void debug_into(std::ostringstream& out, const Value& v) {
  switch (v.type()) {
    case Value::Type::kNil: out << "null"; break;
    case Value::Type::kBool: out << (v.as_bool() ? "true" : "false"); break;
    case Value::Type::kInt: out << v.as_int(); break;
    case Value::Type::kDouble: out << v.as_double(); break;
    case Value::Type::kString: escape_into(out, v.as_string()); break;
    case Value::Type::kArray: {
      out << '[';
      bool first = true;
      for (const auto& e : v.as_array()) {
        if (!first) out << ',';
        first = false;
        debug_into(out, e);
      }
      out << ']';
      break;
    }
    case Value::Type::kStruct: {
      out << '{';
      bool first = true;
      for (const auto& [k, e] : v.as_struct()) {
        if (!first) out << ',';
        first = false;
        escape_into(out, k);
        out << ':';
        debug_into(out, e);
      }
      out << '}';
      break;
    }
  }
}

}  // namespace

std::string Value::debug_string() const {
  std::ostringstream out;
  debug_into(out, *this);
  return out.str();
}

}  // namespace gae::rpc
