// JSON codec + JSON-RPC 2.0 framing, the second content type the service
// host speaks (the paper's Clarens exposed both SOAP/XML-RPC and JSON-ish
// clients; we pair XML-RPC with JSON-RPC).
#pragma once

#include <string>

#include "common/status.h"
#include "rpc/value.h"

namespace gae::rpc::json {

/// Serialises a Value as JSON text (ints as integers, nil as null).
std::string encode(const Value& v);

/// Parses JSON text into a Value. All JSON numbers with a '.', 'e' or 'E'
/// become doubles; others become 64-bit ints.
Result<Value> decode(const std::string& text);

}  // namespace gae::rpc::json

namespace gae::rpc::jsonrpc {

struct Call {
  std::string method;
  Array params;
  std::int64_t id = 0;
  /// Reserved trace metadata (telemetry::format_trace triple; "" = none).
  std::string trace;
};

struct Response {
  bool is_fault = false;
  Value result;
  int fault_code = 0;
  std::string fault_string;
  std::int64_t id = 0;
};

/// `trace` (optional) is carried in a reserved top-level "trace" member so
/// the context survives proxies that strip the x-gae-trace header.
std::string encode_call(const std::string& method, const Array& params, std::int64_t id,
                        const std::string& trace = "");
std::string encode_response(const Value& result, std::int64_t id);
std::string encode_fault(int code, const std::string& message, std::int64_t id);

Result<Call> decode_call(const std::string& text);
Result<Response> decode_response(const std::string& text);

}  // namespace gae::rpc::jsonrpc
