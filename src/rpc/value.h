// Language-neutral value model shared by the XML-RPC and JSON-RPC codecs.
// Mirrors the XML-RPC type system: nil, boolean, int, double, string,
// array, struct.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace gae::rpc {

class Value;

using Array = std::vector<Value>;
using Struct = std::map<std::string, Value>;

/// A dynamically typed RPC value.
class Value {
 public:
  enum class Type { kNil, kBool, kInt, kDouble, kString, kArray, kStruct };

  Value() : data_(Nil{}) {}
  Value(bool b) : data_(b) {}                        // NOLINT
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(std::int64_t i) : data_(i) {}                // NOLINT
  Value(double d) : data_(d) {}                      // NOLINT
  Value(const char* s) : data_(std::string(s)) {}    // NOLINT
  Value(std::string s) : data_(std::move(s)) {}      // NOLINT
  Value(Array a) : data_(std::move(a)) {}            // NOLINT
  Value(Struct s) : data_(std::move(s)) {}           // NOLINT

  Type type() const;
  const char* type_name() const;

  bool is_nil() const { return type() == Type::kNil; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_struct() const { return type() == Type::kStruct; }
  /// True for int or double.
  bool is_number() const { return is_int() || is_double(); }

  // Checked accessors: throw std::runtime_error on type mismatch. The RPC
  // dispatcher catches and converts these into INVALID_ARGUMENT faults, so
  // handlers can destructure parameters without boilerplate.
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Accepts int or double.
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Struct& as_struct() const;
  Array& as_array();
  Struct& as_struct();

  // Struct conveniences (throw if not a struct).
  bool has(const std::string& key) const;
  /// Throws std::runtime_error when missing.
  const Value& at(const std::string& key) const;
  /// Fallback helpers for optional struct members.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Deep equality.
  friend bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Compact JSON-ish rendering for logs and test failure messages.
  std::string debug_string() const;

 private:
  struct Nil {
    friend bool operator==(const Nil&, const Nil&) { return true; }
  };
  std::variant<Nil, bool, std::int64_t, double, std::string, Array, Struct> data_;
};

}  // namespace gae::rpc
