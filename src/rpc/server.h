// RPC server: accepts TCP connections, frames HTTP, decodes XML-RPC or
// JSON-RPC by content type, and dispatches to a registered handler set.
//
// Concurrency model: one acceptor thread plus a fixed worker pool; each live
// connection occupies a worker for its keep-alive duration. This mirrors the
// JClarens servlet-container deployment the paper benchmarked in fig. 6 —
// response time stays flat until concurrent clients exceed the worker count,
// then grows as connections queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "net/socket.h"
#include "rpc/value.h"

namespace gae::rpc {

/// Per-call metadata available to handlers.
struct CallContext {
  /// Value of the x-clarens-session header ("" when absent).
  std::string session_token;
  /// "xmlrpc" or "jsonrpc".
  std::string protocol;
};

/// A method implementation. Return a Status error to send an RPC fault.
using Method = std::function<Result<Value>(const Array& params, const CallContext& ctx)>;

/// Routes calls to methods; shared by the live server and the in-process
/// transport used under simulation.
class Dispatcher {
 public:
  /// Registers `name` (e.g. "jobmon.status"). Last registration wins.
  void register_method(const std::string& name, Method method);

  bool has_method(const std::string& name) const;
  std::vector<std::string> method_names() const;

  /// Invokes a method; NOT_FOUND for unknown names, INVALID_ARGUMENT when a
  /// handler throws (bad parameter shapes).
  Result<Value> dispatch(const std::string& method, const Array& params,
                         const CallContext& ctx) const;

  /// Middleware: runs before every dispatch; an error short-circuits.
  using Interceptor = std::function<Status(const std::string& method, const CallContext& ctx)>;
  void add_interceptor(Interceptor interceptor);

 private:
  std::map<std::string, Method> methods_;
  std::vector<Interceptor> interceptors_;
};

/// Converts service Status codes to wire fault codes and back, so a client
/// sees the same StatusCode the handler returned.
int status_to_fault_code(StatusCode code);
StatusCode fault_code_to_status(int fault_code);

struct ServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral
  std::size_t num_workers = 8;
};

class RpcServer {
 public:
  RpcServer(std::shared_ptr<Dispatcher> dispatcher, ServerOptions options);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds and starts the acceptor; returns the bound port.
  Result<std::uint16_t> start();

  /// Stops accepting and joins all threads. Idempotent.
  void stop();

  std::uint16_t port() const { return port_; }

  /// Total requests served (all connections).
  std::uint64_t requests_served() const { return requests_.load(); }

 private:
  void accept_loop();
  void serve_connection(net::TcpStream stream);

  /// Live-connection registry so stop() can unblock workers parked in recv
  /// on kept-alive connections.
  void register_connection(int fd);
  void unregister_connection(int fd);

  std::shared_ptr<Dispatcher> dispatcher_;
  ServerOptions options_;
  net::TcpListener listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::uint16_t port_ = 0;
  std::mutex conns_mutex_;
  std::set<int> active_conns_;
};

}  // namespace gae::rpc
