// RPC server: accepts TCP connections, frames HTTP, decodes XML-RPC or
// JSON-RPC by content type, and dispatches to a registered handler set.
//
// Concurrency model: one acceptor thread plus a fixed worker pool; each live
// connection occupies a worker for its keep-alive duration. This mirrors the
// JClarens servlet-container deployment the paper benchmarked in fig. 6 —
// response time stays flat until concurrent clients exceed the worker count,
// then grows as connections queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/admission.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "rpc/http.h"
#include "rpc/transport.h"
#include "rpc/value.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gae::rpc {

/// Per-call metadata available to handlers.
struct CallContext {
  /// Value of the x-clarens-session header ("" when absent).
  std::string session_token;
  /// "xmlrpc", "jsonrpc" or "local".
  std::string protocol;
  /// Propagated trace triple off the wire (x-gae-trace header, or the
  /// body's reserved trace field when the header is absent). "" = none.
  std::string trace;
  /// Absolute steady-clock deadline (µs, per rpc/deadline.h) for this call;
  /// 0 = none. Derived from the x-gae-deadline header. dispatch() rejects
  /// already-expired work before the handler runs, and installs the rest as
  /// the handler thread's ambient deadline so downstream client calls
  /// inherit what is left of the budget.
  std::int64_t deadline_us = 0;
  /// Criticality off the x-gae-tier header; absent defaults to kStatus.
  Criticality tier = Criticality::kStatus;
};

/// A method implementation. Return a Status error to send an RPC fault.
using Method = std::function<Result<Value>(const Array& params, const CallContext& ctx)>;

/// Routes calls to methods; shared by the live server and the in-process
/// transport used under simulation.
class Dispatcher {
 public:
  /// Registers `name` (e.g. "jobmon.status"). Last registration wins.
  void register_method(const std::string& name, Method method);

  bool has_method(const std::string& name) const;
  std::vector<std::string> method_names() const;

  /// Invokes a method; NOT_FOUND for unknown names, INVALID_ARGUMENT when a
  /// handler throws (bad parameter shapes).
  Result<Value> dispatch(const std::string& method, const Array& params,
                         const CallContext& ctx) const;

  /// Middleware: runs before every dispatch; an error short-circuits.
  using Interceptor = std::function<Status(const std::string& method, const CallContext& ctx)>;
  void add_interceptor(Interceptor interceptor);

  /// Registers the "rpc.batch" multi-call method: params = [[{method,
  /// params}, ...]], result = one {ok, result | code+message} struct per
  /// item, in order. The batch rides one wire exchange and one admission
  /// ticket (the client stamps the x-gae-tier header with the most critical
  /// item's tier); each item then dispatches through the normal pipeline —
  /// interceptors, per-method metrics, and a per-item server span chained to
  /// the batch's span. Items past `max_items` are refused, as is a nested
  /// rpc.batch. The call's remaining deadline applies to every item, so
  /// items after the budget runs out are pre-rejected, not silently skipped.
  void enable_batch(std::size_t max_items = 64);

  /// Arms telemetry on every dispatch, whichever transport it arrives by
  /// (TCP worker or in-process call): a "server" span per request — child of
  /// the wire context in ctx.trace, or of the ambient span for in-process
  /// hops — plus per-method rpc.server.<method>.{calls,errors,in_flight,
  /// latency_us} metrics. Either pointer may be null; both must outlive the
  /// dispatcher.
  void set_telemetry(telemetry::MetricsRegistry* metrics, telemetry::Tracer* tracer,
                     std::string service_name);

 private:
  /// A registered method plus its pre-resolved metric handles. Handles are
  /// resolved once (at registration or set_telemetry, whichever comes last)
  /// so the dispatch hot path records without building metric names or
  /// taking registry locks.
  struct MethodEntry {
    Method fn;
    telemetry::Counter* calls = nullptr;
    telemetry::Counter* errors = nullptr;
    telemetry::Counter* deadline_expired = nullptr;
    telemetry::Gauge* in_flight = nullptr;
    telemetry::Histogram* latency = nullptr;
  };

  void arm_method_metrics(const std::string& name, MethodEntry& entry);

  std::map<std::string, MethodEntry> methods_;
  std::vector<Interceptor> interceptors_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Tracer* tracer_ = nullptr;
  std::string service_name_ = "rpc";
};

/// Converts service Status codes to wire fault codes and back, so a client
/// sees the same StatusCode the handler returned.
int status_to_fault_code(StatusCode code);
StatusCode fault_code_to_status(int fault_code);

// -- The shared per-request pipeline ----------------------------------------
//
// Everything between "one framed HTTP request" and "one framed HTTP
// response" is transport-independent; the TCP worker loop below and the
// deterministic-simulation host (dst::SimHost) both drive these.

/// True when the request's content type selects the JSON-RPC codec.
bool rpc_request_is_json(const http::Request& req);

/// Builds the per-call context from the request's transport fields.
/// `picked_up_us` is the steady instant the request started being served;
/// `queue_delay_us` (acceptor-queue wait, first request only) is charged
/// against the arriving deadline budget — the client's clock could not see
/// that wait.
CallContext rpc_context_from_request(const http::Request& req, std::int64_t picked_up_us,
                                     std::int64_t queue_delay_us);

/// Decodes the body (codec by content type), dispatches through `dispatch`
/// (invoked at most once, for a well-formed call), and encodes the reply —
/// faults included — into a complete Response. The body's reserved trace
/// field is applied to `ctx` as a fallback when the header carried none.
http::Response rpc_dispatch_request(
    const http::Request& req, CallContext ctx,
    const std::function<Result<Value>(const std::string& method, const Array& params,
                                      const CallContext& ctx)>& dispatch);

/// The well-formed 503 fault an admission shed answers with, in the
/// request's own protocol (clients map it to RESOURCE_EXHAUSTED and retry
/// with backoff; a silent close would read as an outage and trigger
/// reconnect storms).
http::Response rpc_shed_response(bool is_json);

struct ServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral
  std::size_t num_workers = 8;
  /// Per-connection receive timeout: a connection that stays silent this
  /// long (slowloris, wedged peer) is closed and its worker freed. 0
  /// disables — workers then block on silent peers forever.
  int recv_timeout_ms = 30'000;
  /// Request framing caps (oversized peers get INVALID_ARGUMENT + close).
  std::size_t max_header_bytes = 1u << 20;
  std::size_t max_body_bytes = 64u << 20;
  /// Connections admitted concurrently (accepted but not yet finished);
  /// excess connections are closed at accept. 0 = 2 * num_workers.
  std::size_t max_in_flight = 0;
  /// Byte transport to listen on; null = the process-wide TCP transport.
  /// Must outlive the server.
  Transport* transport = nullptr;
  /// When set, the server keeps rpc.server.queue_depth (worker-pool backlog)
  /// and rpc.server.connections gauges current, and counts
  /// rpc.server.connections_{rejected,timed_out}. Per-method metrics live on
  /// the Dispatcher (set_telemetry). Must outlive the server.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Adaptive per-request admission control. When set, every request must
  /// take a ticket from the controller before its body is decoded; refused
  /// requests get a well-formed 503 fault in the request's own protocol
  /// (clients classify it RESOURCE_EXHAUSTED and retry with backoff) instead
  /// of a silently dropped connection. The CoDel queue bound also engages:
  /// connections that sat too long in the acceptor queue are answered with a
  /// 503 and closed. The static max_in_flight connection cap still applies
  /// as the outer backstop. Must outlive the server.
  AdmissionController* admission = nullptr;
};

class RpcServer {
 public:
  RpcServer(std::shared_ptr<Dispatcher> dispatcher, ServerOptions options);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds and starts the acceptor; returns the bound port.
  Result<std::uint16_t> start();

  /// Stops accepting and joins all threads. Idempotent.
  void stop();

  std::uint16_t port() const { return port_; }

  /// Total requests served (all connections).
  std::uint64_t requests_served() const { return requests_.load(); }

  /// Connections dropped at accept because max_in_flight was reached.
  std::uint64_t connections_rejected() const { return rejected_.load(); }

  /// Connections closed because the peer went silent past recv_timeout_ms.
  std::uint64_t connections_timed_out() const { return timeouts_.load(); }

  /// Requests refused by the admission controller (per-request 503 sheds,
  /// including CoDel queue sheds). 0 unless ServerOptions::admission is set.
  std::uint64_t requests_shed() const { return shed_.load(); }

 private:
  void accept_loop();
  void serve_connection(Stream& stream, std::int64_t accepted_at_us);

  /// Live-connection registry so stop() can unblock workers parked in recv
  /// on kept-alive connections.
  void register_connection(Stream* stream);
  void unregister_connection(Stream* stream);

  std::shared_ptr<Dispatcher> dispatcher_;
  ServerOptions options_;
  std::unique_ptr<Listener> listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::uint16_t port_ = 0;
  /// Pre-resolved admission telemetry (start() arms these when both metrics
  /// and admission are configured) so the shed path never builds names.
  telemetry::Counter* shed_counter_ = nullptr;
  telemetry::Counter* queue_shed_counter_ = nullptr;
  telemetry::Gauge* admission_limit_gauge_ = nullptr;
  telemetry::Gauge* brownout_gauge_ = nullptr;
  std::mutex conns_mutex_;
  std::set<Stream*> active_conns_;
};

}  // namespace gae::rpc
