#include "rpc/transport.h"

#include <sys/socket.h>

#include <cerrno>

namespace gae::rpc {

Status Stream::read_exact(void* buf, std::size_t len) {
  char* out = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < len) {
    auto r = read_some(out + got, len - got);
    if (!r.is_ok()) return r.status();
    if (r.value() == 0) return unavailable_error("connection closed mid-read");
    got += r.value();
  }
  return Status::ok();
}

bool tcp_socket_healthy(const net::TcpStream& stream) {
  if (!stream.valid()) return false;
  // A non-blocking one-byte peek distinguishes the three states of a parked
  // keep-alive connection: EAGAIN = quiet and open (healthy), 0 = the peer
  // closed it while parked, >0 = unread bytes from a desynced exchange.
  char probe = 0;
  const ssize_t n = ::recv(stream.fd(), &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n < 0) return errno == EAGAIN || errno == EWOULDBLOCK;
  return false;
}

Result<std::unique_ptr<Stream>> TcpListener::accept() {
  auto stream = listener_.accept();
  if (!stream.is_ok()) return stream.status();
  return std::unique_ptr<Stream>(new TcpSocketStream(std::move(stream).value()));
}

Result<std::unique_ptr<Stream>> TcpTransport::connect(const std::string& host,
                                                      std::uint16_t port) {
  auto stream = net::TcpStream::connect(host, port);
  if (!stream.is_ok()) return stream.status();
  return std::unique_ptr<Stream>(new TcpSocketStream(std::move(stream).value()));
}

Result<std::unique_ptr<Listener>> TcpTransport::listen(std::uint16_t port) {
  auto listener = net::TcpListener::bind(port);
  if (!listener.is_ok()) return listener.status();
  return std::unique_ptr<Listener>(new TcpListener(std::move(listener).value()));
}

Transport& tcp_transport() {
  static TcpTransport transport;
  return transport;
}

}  // namespace gae::rpc
