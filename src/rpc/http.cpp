#include "rpc/http.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace gae::rpc::http {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Reads from the stream until "\r\n\r\n"; returns header block + any body
/// bytes already pulled off the socket.
struct HeadAndSpill {
  std::string head;
  std::string spill;
};

Result<HeadAndSpill> read_head(Stream& stream, std::size_t max_header_bytes) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const auto marker = buf.find("\r\n\r\n");
    if (marker != std::string::npos) {
      HeadAndSpill out;
      out.head = buf.substr(0, marker);
      out.spill = buf.substr(marker + 4);
      return out;
    }
    auto r = stream.read_some(chunk, sizeof(chunk));
    if (!r.is_ok()) return r.status();
    if (r.value() == 0) {
      if (buf.empty()) return unavailable_error("connection closed");
      return invalid_argument_error("http: truncated header block");
    }
    buf.append(chunk, r.value());
    if (buf.size() > max_header_bytes) {
      return invalid_argument_error("http: header block too large");
    }
  }
}

/// True when the header name in line[0, colon) is `name` (lower-case),
/// ignoring case and surrounding whitespace. Allocation-free.
bool header_name_is(const std::string& line, std::size_t colon, const char* name) {
  std::size_t b = 0, e = colon;
  while (b < e && std::isspace(static_cast<unsigned char>(line[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(line[e - 1]))) --e;
  for (std::size_t i = 0; i < e - b; ++i, ++name) {
    if (std::tolower(static_cast<unsigned char>(line[b + i])) != *name) return false;
  }
  return *name == '\0';
}

/// Parses the value in line[colon+1, end) as a non-negative decimal int
/// (clamped to INT_MAX), ignoring surrounding whitespace. Allocation-free.
/// Returns -1 on empty or non-numeric values — callers treat that as absent.
int header_value_int(const std::string& line, std::size_t colon) {
  std::size_t b = colon + 1, e = line.size();
  while (b < e && std::isspace(static_cast<unsigned char>(line[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(line[e - 1]))) --e;
  if (b == e) return -1;
  long long value = 0;
  for (std::size_t i = b; i < e; ++i) {
    const char c = line[i];
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
    if (value > 2'000'000'000LL) return 2'000'000'000;
  }
  return static_cast<int>(value);
}

/// `trace_out`, when non-null, receives the x-gae-trace value directly and
/// keeps that header out of the generic map (hot-path allocation trim); the
/// same applies to `deadline_out` / `tier_out` for x-gae-deadline and
/// x-gae-tier (request-only headers).
Status parse_headers(std::istringstream& lines, std::map<std::string, std::string>& out,
                     std::string* trace_out = nullptr, int* deadline_out = nullptr,
                     int* tier_out = nullptr) {
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) return invalid_argument_error("http: malformed header: " + line);
    if (trace_out && header_name_is(line, colon, "x-gae-trace")) {
      std::size_t b = colon + 1, e = line.size();
      while (b < e && std::isspace(static_cast<unsigned char>(line[b]))) ++b;
      while (e > b && std::isspace(static_cast<unsigned char>(line[e - 1]))) --e;
      trace_out->assign(line, b, e - b);
      continue;
    }
    if (deadline_out && header_name_is(line, colon, "x-gae-deadline")) {
      *deadline_out = header_value_int(line, colon);
      continue;
    }
    if (tier_out && header_name_is(line, colon, "x-gae-tier")) {
      *tier_out = header_value_int(line, colon);
      continue;
    }
    out[to_lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
  }
  return Status::ok();
}

Result<std::string> read_body(Stream& stream, std::string spill,
                              const std::map<std::string, std::string>& headers,
                              std::size_t max_body_bytes) {
  std::size_t content_length = 0;
  auto it = headers.find("content-length");
  if (it != headers.end()) {
    // Strict parse: digits only, every byte checked, range-checked against
    // the body cap as the digits accumulate (so "999...9" cannot wrap).
    // stoull would silently accept a partial parse ("123abc" -> 123) and a
    // leading sign ("-1" -> huge), desyncing the framing from what the peer
    // actually sent.
    const std::string& text = it->second;
    if (text.empty()) {
      return invalid_argument_error("http: bad content-length: empty");
    }
    for (const char c : text) {
      if (c < '0' || c > '9') {
        return invalid_argument_error("http: bad content-length: " + text);
      }
      content_length = content_length * 10 + static_cast<std::size_t>(c - '0');
      if (content_length > max_body_bytes) {
        return invalid_argument_error("http: body too large");
      }
    }
  }
  if (content_length > max_body_bytes) return invalid_argument_error("http: body too large");
  if (spill.size() > content_length) {
    // Pipelined extra bytes are unsupported by this minimal framing.
    return invalid_argument_error("http: unexpected bytes after body");
  }
  std::string body = std::move(spill);
  const std::size_t remaining = content_length - body.size();
  if (remaining > 0) {
    std::string rest(remaining, '\0');
    const Status s = stream.read_exact(rest.data(), remaining);
    if (!s.is_ok()) return s;
    body += rest;
  }
  return body;
}

}  // namespace

std::string Request::header(const std::string& key, const std::string& fallback) const {
  auto it = headers.find(to_lower(key));
  return it == headers.end() ? fallback : it->second;
}

bool Request::keep_alive() const {
  return to_lower(header("connection", "keep-alive")) != "close";
}

std::string Response::header(const std::string& key, const std::string& fallback) const {
  auto it = headers.find(to_lower(key));
  return it == headers.end() ? fallback : it->second;
}

Result<Request> read_request(Stream& stream, const ReadLimits& limits) {
  auto head = read_head(stream, limits.max_header_bytes);
  if (!head.is_ok()) return head.status();

  std::istringstream lines(head.value().head);
  std::string request_line;
  if (!std::getline(lines, request_line)) return invalid_argument_error("http: empty request");
  if (!request_line.empty() && request_line.back() == '\r') request_line.pop_back();

  Request req;
  std::istringstream rl(request_line);
  std::string version;
  if (!(rl >> req.method >> req.path >> version)) {
    return invalid_argument_error("http: malformed request line: " + request_line);
  }
  const Status hs =
      parse_headers(lines, req.headers, &req.trace, &req.deadline_ms, &req.tier);
  if (!hs.is_ok()) return hs;

  auto body = read_body(stream, std::move(head.value().spill), req.headers,
                        limits.max_body_bytes);
  if (!body.is_ok()) return body.status();
  req.body = std::move(body).value();
  return req;
}

Status write_request(Stream& stream, const Request& req) {
  std::ostringstream out;
  out << req.method << ' ' << req.path << " HTTP/1.1\r\n";
  bool have_host = false;
  for (const auto& [k, v] : req.headers) {
    // A caller-supplied content-length that disagrees with the body would
    // desync framing on the persistent connection (the peer reads too few or
    // too many bytes, corrupting every later exchange) — always emit the
    // actual size, as write_response already does.
    if (k == "content-length") continue;
    out << k << ": " << v << "\r\n";
    if (k == "host") have_host = true;
  }
  if (!have_host) out << "host: localhost\r\n";
  if (!req.trace.empty()) out << "x-gae-trace: " << req.trace << "\r\n";
  if (req.deadline_ms >= 0) out << "x-gae-deadline: " << req.deadline_ms << "\r\n";
  if (req.tier >= 0) out << "x-gae-tier: " << req.tier << "\r\n";
  out << "content-length: " << req.body.size() << "\r\n";
  out << "\r\n" << req.body;
  return stream.write_all(out.str());
}

Result<Response> read_response(Stream& stream, const ReadLimits& limits) {
  auto head = read_head(stream, limits.max_header_bytes);
  if (!head.is_ok()) return head.status();

  std::istringstream lines(head.value().head);
  std::string status_line;
  if (!std::getline(lines, status_line)) return invalid_argument_error("http: empty response");
  if (!status_line.empty() && status_line.back() == '\r') status_line.pop_back();

  Response resp;
  std::istringstream sl(status_line);
  std::string version;
  if (!(sl >> version >> resp.status_code)) {
    return invalid_argument_error("http: malformed status line: " + status_line);
  }
  std::getline(sl, resp.reason);
  resp.reason = trim(resp.reason);

  const Status hs = parse_headers(lines, resp.headers);
  if (!hs.is_ok()) return hs;

  auto body = read_body(stream, std::move(head.value().spill), resp.headers,
                        limits.max_body_bytes);
  if (!body.is_ok()) return body.status();
  resp.body = std::move(body).value();
  return resp;
}

Status write_response(Stream& stream, const Response& resp, bool keep_alive) {
  std::ostringstream out;
  out << "HTTP/1.1 " << resp.status_code << ' ' << resp.reason << "\r\n";
  for (const auto& [k, v] : resp.headers) {
    if (k == "content-length" || k == "connection") continue;
    out << k << ": " << v << "\r\n";
  }
  out << "connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n";
  out << "content-length: " << resp.body.size() << "\r\n\r\n";
  out << resp.body;
  return stream.write_all(out.str());
}

}  // namespace gae::rpc::http
