// RpcClient::call_many — the client half of rpc.batch (the server half is
// Dispatcher::enable_batch). Lives apart from client.cpp because it is pure
// coalescing policy over the public call() path: wire formatting of the
// embedded items, tier folding, and the per-item result fan-out.
#include "rpc/batch.h"

#include "rpc/server.h"  // fault-code <-> StatusCode mapping

namespace gae::rpc {

namespace {

/// Unpacks one {ok, result | code+message} entry of an rpc.batch response.
Result<Value> decode_batch_entry(const Value& entry) {
  if (!entry.is_struct()) {
    return Status(StatusCode::kInternal,
                  "malformed rpc.batch response entry: " + entry.debug_string());
  }
  if (entry.get_bool("ok", false)) {
    return entry.has("result") ? entry.at("result") : Value();
  }
  const int code = static_cast<int>(
      entry.get_int("code", status_to_fault_code(StatusCode::kInternal)));
  return Status(fault_code_to_status(code),
                entry.get_string("message", "batch item failed"));
}

}  // namespace

std::vector<Result<Value>> RpcClient::call_many(const std::vector<BatchItem>& items) {
  return call_many(items, options_.default_call);
}

std::vector<Result<Value>> RpcClient::call_many(const std::vector<BatchItem>& items,
                                                const CallOptions& options) {
  std::vector<Result<Value>> results;
  results.reserve(items.size());
  if (items.empty()) return results;

  const auto item_options = [&](const BatchItem& item) {
    CallOptions o = options;
    o.tier = item.tier;
    return o;
  };

  // A batch of one gains nothing from the envelope — skip it.
  if (items.size() == 1) {
    results.push_back(call(items[0].method, items[0].params, item_options(items[0])));
    return results;
  }

  Array embedded;
  embedded.reserve(items.size());
  Criticality tier = items[0].tier;
  for (const BatchItem& item : items) {
    tier = more_critical(tier, item.tier);
    Struct entry;
    entry["method"] = item.method;
    entry["params"] = Value(item.params);
    embedded.push_back(Value(std::move(entry)));
  }
  CallOptions batch_options = options;
  // The envelope rides at the most critical item's tier: shedding the whole
  // batch because a bulk item rode along would invert the shed order.
  batch_options.tier = tier;

  auto batched = call("rpc.batch", Array{Value(std::move(embedded))}, batch_options);
  if (batched.is_ok()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.batches;
      stats_.batched_items += items.size();
    }
    const Value& body = batched.value();
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!body.is_array() || i >= body.as_array().size()) {
        results.push_back(Status(StatusCode::kInternal,
                                 "rpc.batch response lacks entry " + std::to_string(i) +
                                     " for " + items[i].method));
        continue;
      }
      results.push_back(decode_batch_entry(body.as_array()[i]));
    }
    return results;
  }

  if (batched.status().code() == StatusCode::kNotFound) {
    // Old peer without rpc.batch: degrade to one call per item so mixed-
    // version deployments keep working through a rollout.
    for (const BatchItem& item : items) {
      results.push_back(call(item.method, item.params, item_options(item)));
    }
    return results;
  }

  // The batch itself failed (transport, deadline, shed): every item shares
  // that fate — none of them reached a handler.
  for (std::size_t i = 0; i < items.size(); ++i) results.push_back(batched.status());
  return results;
}

}  // namespace gae::rpc
