// Client-side multi-call batching: BatchBuilder accumulates calls and
// flushes them through RpcClient::call_many, which coalesces N invocations
// into one rpc.batch round trip — one wire exchange, one server admission
// ticket at the criticality of the most critical item — and returns one
// Result per item, in order.
//
// Degradations are transparent: a single-item batch becomes a plain call,
// and a server that does not know rpc.batch (NOT_FOUND) is retried
// item-by-item so old peers keep working.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "rpc/client.h"

namespace gae::rpc {

/// Fluent accumulator over RpcClient::call_many:
///
///   BatchBuilder batch(client);
///   batch.add("jobmon.status", {Value(job_a)})
///        .add("jobmon.status", {Value(job_b)})
///        .add("estimator.query", {...}, Criticality::kBulk);
///   auto results = batch.send();  // one round trip, 3 results
///
/// send() clears the builder, so one builder can flush successive batches.
/// Not thread-safe; the client it flushes through is.
class BatchBuilder {
 public:
  explicit BatchBuilder(RpcClient& client) : client_(&client) {}

  BatchBuilder& add(std::string method, Array params = {},
                    Criticality tier = Criticality::kStatus) {
    items_.push_back({std::move(method), std::move(params), tier});
    return *this;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const std::vector<BatchItem>& items() const { return items_; }

  /// Flushes with the client's default CallOptions (tier overridden per the
  /// batch's most critical item) and resets the builder.
  std::vector<Result<Value>> send() {
    auto results = client_->call_many(items_);
    items_.clear();
    return results;
  }

  /// Flushes with explicit options and resets the builder.
  std::vector<Result<Value>> send(const CallOptions& options) {
    auto results = client_->call_many(items_, options);
    items_.clear();
    return results;
  }

 private:
  RpcClient* client_;
  std::vector<BatchItem> items_;
};

}  // namespace gae::rpc
