// The transport seam: every byte the RPC layer moves crosses one of these
// interfaces. The live path is TcpTransport (loopback TCP, exactly the
// sockets net/socket.h always provided); the deterministic-simulation
// harness (src/dst) substitutes an in-memory SimTransport so the whole
// cluster — client pools, keep-alive framing, servers — runs single-threaded
// on a virtual clock with seeded latency, drops, duplicates and partitions.
//
// The seam is intentionally byte-stream shaped (connect/accept/read/write/
// close), not message shaped: HTTP framing, keep-alive reuse and the pool's
// health probe all behave identically over both transports, so a bug found
// under simulation is a bug on the wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/socket.h"

namespace gae::rpc {

/// A connected byte stream (one side of a connection).
class Stream {
 public:
  virtual ~Stream() = default;

  virtual bool valid() const = 0;

  /// Writes the whole buffer; UNAVAILABLE on a broken connection.
  virtual Status write_all(const void* data, std::size_t len) = 0;
  Status write_all(const std::string& data) { return write_all(data.data(), data.size()); }

  /// Reads up to len bytes; 0 return means orderly EOF; DEADLINE_EXCEEDED
  /// when the receive timeout expires first.
  virtual Result<std::size_t> read_some(void* buf, std::size_t len) = 0;

  /// Reads exactly len bytes; UNAVAILABLE on premature EOF.
  virtual Status read_exact(void* buf, std::size_t len);

  /// Receive timeout; 0 disables.
  virtual Status set_recv_timeout_ms(int ms) = 0;

  /// Disables Nagle on transports that have one; a no-op elsewhere.
  virtual Status set_no_delay(bool on) {
    (void)on;
    return Status::ok();
  }

  /// True when a parked keep-alive connection is still usable: the peer has
  /// not closed it and no unread bytes are pending (unread bytes mean a
  /// desynced exchange). The pool's checkout health probe.
  virtual bool healthy() const = 0;

  /// Shuts down both directions; unblocks a thread sitting in a read on
  /// this stream without destroying it (the server's stop() path).
  virtual void shutdown_both() = 0;

  virtual void close() = 0;
};

/// A listening endpoint.
class Listener {
 public:
  virtual ~Listener() = default;

  virtual bool valid() const = 0;

  /// Blocks for the next connection. UNAVAILABLE once closed.
  virtual Result<std::unique_ptr<Stream>> accept() = 0;

  /// The actually bound port (useful after binding port 0).
  virtual std::uint16_t port() const = 0;

  /// Unblocks pending accept() calls; they return UNAVAILABLE.
  virtual void close() = 0;
};

/// Factory for both ends of a connection. Implementations must be safe to
/// share between threads (TcpTransport is stateless; SimTransport is
/// single-threaded by construction).
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<std::unique_ptr<Stream>> connect(const std::string& host,
                                                  std::uint16_t port) = 0;

  virtual Result<std::unique_ptr<Listener>> listen(std::uint16_t port) = 0;
};

/// The pool's keep-alive health probe for a raw TCP socket: a non-blocking
/// one-byte peek distinguishes quiet-and-open (healthy) from closed-while-
/// parked and unread-bytes-pending (both evicted).
bool tcp_socket_healthy(const net::TcpStream& stream);

/// Stream over an owned TCP socket (what TcpTransport hands out).
class TcpSocketStream final : public Stream {
 public:
  explicit TcpSocketStream(net::TcpStream stream) : stream_(std::move(stream)) {}

  bool valid() const override { return stream_.valid(); }
  Status write_all(const void* data, std::size_t len) override {
    return stream_.write_all(data, len);
  }
  using Stream::write_all;
  Result<std::size_t> read_some(void* buf, std::size_t len) override {
    return stream_.read_some(buf, len);
  }
  Status read_exact(void* buf, std::size_t len) override {
    return stream_.read_exact(buf, len);
  }
  Status set_recv_timeout_ms(int ms) override { return stream_.set_recv_timeout_ms(ms); }
  Status set_no_delay(bool on) override { return stream_.set_no_delay(on); }
  bool healthy() const override { return tcp_socket_healthy(stream_); }
  void shutdown_both() override { stream_.shutdown_both(); }
  void close() override { stream_.close(); }

  net::TcpStream& socket() { return stream_; }

 private:
  net::TcpStream stream_;
};

/// Stream over a *borrowed* TCP socket — keeps raw-socket call sites (tests,
/// the fault-injecting proxy) usable with Stream-taking APIs without giving
/// up ownership. The caller keeps the socket alive for the adapter's life.
class BorrowedTcpStream final : public Stream {
 public:
  explicit BorrowedTcpStream(net::TcpStream& stream) : stream_(&stream) {}

  bool valid() const override { return stream_->valid(); }
  Status write_all(const void* data, std::size_t len) override {
    return stream_->write_all(data, len);
  }
  using Stream::write_all;
  Result<std::size_t> read_some(void* buf, std::size_t len) override {
    return stream_->read_some(buf, len);
  }
  Status read_exact(void* buf, std::size_t len) override {
    return stream_->read_exact(buf, len);
  }
  Status set_recv_timeout_ms(int ms) override { return stream_->set_recv_timeout_ms(ms); }
  Status set_no_delay(bool on) override { return stream_->set_no_delay(on); }
  bool healthy() const override { return tcp_socket_healthy(*stream_); }
  void shutdown_both() override { stream_->shutdown_both(); }
  void close() override { stream_->close(); }

 private:
  net::TcpStream* stream_;
};

class TcpListener final : public Listener {
 public:
  explicit TcpListener(net::TcpListener listener) : listener_(std::move(listener)) {}

  bool valid() const override { return listener_.valid(); }
  Result<std::unique_ptr<Stream>> accept() override;
  std::uint16_t port() const override { return listener_.port(); }
  void close() override { listener_.close(); }

 private:
  net::TcpListener listener_;
};

/// The live loopback-TCP transport. Stateless.
class TcpTransport final : public Transport {
 public:
  Result<std::unique_ptr<Stream>> connect(const std::string& host,
                                          std::uint16_t port) override;
  Result<std::unique_ptr<Listener>> listen(std::uint16_t port) override;
};

/// The process-wide TcpTransport instance (what a null Transport* in
/// PoolOptions / ClientOptions / ServerOptions resolves to).
Transport& tcp_transport();

}  // namespace gae::rpc
