// Per-endpoint pools of keep-alive TCP connections, so N in-flight RPC
// calls ride N sockets instead of serialising on one persistent stream
// (the fig-6 scaling axis: response time versus concurrent clients).
//
// The pool is transport-only: it dials, parks, health-checks and reaps
// sockets. Which endpoint to dial — breakers, failover order, leader
// hints — stays the caller's (RpcClient's) decision. Thread-safe; the
// checkout/checkin hot path takes one mutex but never holds it across
// connect() or any other syscall that can block on the network.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "rpc/transport.h"
#include "telemetry/metrics.h"

namespace gae::rpc {

struct PoolOptions {
  /// Idle connections retained per endpoint; a checkin beyond this closes
  /// the socket instead of parking it.
  std::size_t max_idle = 8;
  /// Hard cap on live (idle + checked-out) connections per endpoint.
  /// Checkouts beyond it still dial — admission control bounds request
  /// concurrency, not the pool — but the connection is marked overflow and
  /// closed on checkin rather than parked.
  std::size_t max_size = 64;
  /// Idle connections older than this are reaped (closed) instead of
  /// reused; 0 disables reaping. Keep-alive peers and NAT boxes drop silent
  /// connections eventually — reaping first keeps checkout failures rare.
  int idle_timeout_ms = 30'000;
  /// Peek the socket on checkout: a pooled connection whose peer already
  /// closed (or that has unread bytes — a desynced exchange) is evicted
  /// instead of handed out.
  bool health_check = true;
  /// Time source for idle ages; null = a shared wall clock.
  const Clock* clock = nullptr;
  /// Byte transport the pool dials through; null = the process-wide TCP
  /// transport. The simulation harness injects its SimTransport here. Must
  /// outlive the pool.
  Transport* transport = nullptr;
  /// When set, the pool keeps rpc.pool.{dials,reuses,health_evictions,
  /// idle_reaped,discards,overflow} counters and an rpc.pool.idle gauge.
  /// Must outlive the pool.
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// Counters exposed for monitoring and tests.
struct PoolStats {
  std::uint64_t dials = 0;            // fresh connections established
  std::uint64_t reuses = 0;           // checkouts served from the idle list
  std::uint64_t health_evictions = 0; // idle conns found dead/desynced at checkout
  std::uint64_t idle_reaped = 0;      // idle conns dropped by the idle timeout
  std::uint64_t discards = 0;         // checked-out conns returned broken
  std::uint64_t overflow = 0;         // checkouts dialled beyond max_size
};

class ConnectionPool {
 public:
  explicit ConnectionPool(PoolOptions options = {});

  /// A checked-out connection. Return it with checkin() after a clean
  /// exchange or discard() after any transport error; destroying it
  /// without either simply closes the socket (counted as a discard).
  struct Conn {
    std::unique_ptr<Stream> stream;
    /// True when the connection came off the idle list — a request that
    /// fails instantly on a reused connection may have raced the peer's
    /// keep-alive close, so callers treat that failure as retryable even
    /// for non-idempotent calls (no bytes reached a live server).
    bool reused = false;

   private:
    friend class ConnectionPool;
    std::string key;        // "host:port"
    bool overflow = false;  // dialled past max_size; never parked
  };

  /// Pops a healthy idle connection for host:port, or dials a new one.
  /// Errors surface the dial failure (the caller charges its breaker).
  Result<Conn> checkout(const std::string& host, std::uint16_t port);

  /// Parks a healthy connection for reuse (closed instead when the idle
  /// list is full or the connection was an overflow dial).
  void checkin(Conn conn);

  /// Closes a connection that failed mid-exchange; its slot is freed.
  void discard(Conn conn);

  /// Drops every idle connection (all endpoints). Checked-out connections
  /// are unaffected — they are closed on their eventual checkin/discard.
  void clear();

  /// Closes idle connections past the idle timeout. Runs opportunistically
  /// inside checkout/checkin too; exposed for deterministic tests.
  void reap_idle();

  std::size_t idle_count(const std::string& host, std::uint16_t port) const;
  /// Idle + checked-out connections for one endpoint.
  std::size_t live_count(const std::string& host, std::uint16_t port) const;

  PoolStats stats() const;

 private:
  struct IdleConn {
    std::unique_ptr<Stream> stream;
    SimTime parked_at = 0;
  };
  struct EndpointPool {
    std::deque<IdleConn> idle;      // most recently parked at the back
    std::size_t checked_out = 0;
  };

  void reap_idle_locked(SimTime now);
  void arm_metrics();

  PoolOptions options_;
  std::shared_ptr<Clock> owned_clock_;  // when no clock injected
  const Clock* clock_ = nullptr;
  Transport* transport_ = nullptr;

  mutable std::mutex mutex_;
  std::map<std::string, EndpointPool> pools_;
  PoolStats stats_;
  SimTime last_reap_ = 0;

  telemetry::Counter* m_dials_ = nullptr;
  telemetry::Counter* m_reuses_ = nullptr;
  telemetry::Counter* m_health_evictions_ = nullptr;
  telemetry::Counter* m_idle_reaped_ = nullptr;
  telemetry::Counter* m_discards_ = nullptr;
  telemetry::Counter* m_overflow_ = nullptr;
  telemetry::Gauge* m_idle_gauge_ = nullptr;
};

}  // namespace gae::rpc
