#include "rpc/pool.h"

namespace gae::rpc {

namespace {

std::string endpoint_key(const std::string& host, std::uint16_t port) {
  return host + ":" + std::to_string(port);
}

}  // namespace

ConnectionPool::ConnectionPool(PoolOptions options) : options_(options) {
  if (options_.clock) {
    clock_ = options_.clock;
  } else {
    owned_clock_ = std::make_shared<WallClock>();
    clock_ = owned_clock_.get();
  }
  transport_ = options_.transport ? options_.transport : &tcp_transport();
  arm_metrics();
}

void ConnectionPool::arm_metrics() {
  if (!options_.metrics) return;
  m_dials_ = &options_.metrics->counter("rpc.pool.dials");
  m_reuses_ = &options_.metrics->counter("rpc.pool.reuses");
  m_health_evictions_ = &options_.metrics->counter("rpc.pool.health_evictions");
  m_idle_reaped_ = &options_.metrics->counter("rpc.pool.idle_reaped");
  m_discards_ = &options_.metrics->counter("rpc.pool.discards");
  m_overflow_ = &options_.metrics->counter("rpc.pool.overflow");
  m_idle_gauge_ = &options_.metrics->gauge("rpc.pool.idle");
}

Result<ConnectionPool::Conn> ConnectionPool::checkout(const std::string& host,
                                                      std::uint16_t port) {
  const std::string key = endpoint_key(host, port);
  const SimTime now = clock_->now();
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    reap_idle_locked(now);
    EndpointPool& pool = pools_[key];
    // Most recently parked first: the freshest connection is the least
    // likely to have been closed by the peer's keep-alive timeout.
    while (!pool.idle.empty()) {
      IdleConn parked = std::move(pool.idle.back());
      pool.idle.pop_back();
      if (m_idle_gauge_) m_idle_gauge_->add(-1);
      if (options_.health_check && !parked.stream->healthy()) {
        ++stats_.health_evictions;
        if (m_health_evictions_) m_health_evictions_->inc();
        continue;  // destructor closes the dead socket
      }
      ++pool.checked_out;
      ++stats_.reuses;
      if (m_reuses_) m_reuses_->inc();
      Conn conn;
      conn.stream = std::move(parked.stream);
      conn.key = key;
      conn.reused = true;
      return conn;
    }
    if (pool.checked_out >= options_.max_size) {
      overflow = true;
      ++stats_.overflow;
      if (m_overflow_) m_overflow_->inc();
    } else {
      ++pool.checked_out;  // reserve the slot before the unlocked dial
    }
  }

  auto stream = transport_->connect(host, port);
  if (!stream.is_ok()) {
    if (!overflow) {
      std::lock_guard<std::mutex> lock(mutex_);
      --pools_[key].checked_out;
    }
    return stream.status();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.dials;
  }
  if (m_dials_) m_dials_->inc();
  Conn conn;
  conn.stream = std::move(stream).value();
  conn.stream->set_no_delay(true);
  conn.key = key;
  conn.overflow = overflow;
  return conn;
}

void ConnectionPool::checkin(Conn conn) {
  if (!conn.stream || !conn.stream->valid()) return;
  const SimTime now = clock_->now();
  std::lock_guard<std::mutex> lock(mutex_);
  EndpointPool& pool = pools_[conn.key];
  if (!conn.overflow && pool.checked_out > 0) --pool.checked_out;
  reap_idle_locked(now);
  if (conn.overflow || pool.idle.size() >= options_.max_idle) {
    ++stats_.discards;
    if (m_discards_) m_discards_->inc();
    return;  // destructor closes it
  }
  pool.idle.push_back({std::move(conn.stream), now});
  if (m_idle_gauge_) m_idle_gauge_->add(1);
}

void ConnectionPool::discard(Conn conn) {
  std::lock_guard<std::mutex> lock(mutex_);
  EndpointPool& pool = pools_[conn.key];
  if (!conn.overflow && pool.checked_out > 0) --pool.checked_out;
  ++stats_.discards;
  if (m_discards_) m_discards_->inc();
  // conn.stream closes as the argument goes out of scope.
}

void ConnectionPool::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, pool] : pools_) {
    if (m_idle_gauge_) m_idle_gauge_->add(-static_cast<std::int64_t>(pool.idle.size()));
    pool.idle.clear();
  }
}

void ConnectionPool::reap_idle() {
  std::lock_guard<std::mutex> lock(mutex_);
  reap_idle_locked(clock_->now());
}

void ConnectionPool::reap_idle_locked(SimTime now) {
  if (options_.idle_timeout_ms <= 0) return;
  // Bound the sweep rate: at most once per 1/4 timeout, so the hot path
  // usually pays one comparison.
  const SimTime cutoff_age = static_cast<SimTime>(options_.idle_timeout_ms) * 1000;
  if (last_reap_ != 0 && now - last_reap_ < cutoff_age / 4) return;
  last_reap_ = now;
  for (auto& [key, pool] : pools_) {
    while (!pool.idle.empty() && now - pool.idle.front().parked_at > cutoff_age) {
      pool.idle.pop_front();
      ++stats_.idle_reaped;
      if (m_idle_reaped_) m_idle_reaped_->inc();
      if (m_idle_gauge_) m_idle_gauge_->add(-1);
    }
  }
}

std::size_t ConnectionPool::idle_count(const std::string& host, std::uint16_t port) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pools_.find(endpoint_key(host, port));
  return it == pools_.end() ? 0 : it->second.idle.size();
}

std::size_t ConnectionPool::live_count(const std::string& host, std::uint16_t port) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pools_.find(endpoint_key(host, port));
  return it == pools_.end() ? 0 : it->second.idle.size() + it->second.checked_out;
}

PoolStats ConnectionPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace gae::rpc
