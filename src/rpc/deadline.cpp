#include "rpc/deadline.h"

#include <atomic>
#include <chrono>

namespace gae::rpc {

namespace {

thread_local std::int64_t g_ambient_deadline_us = 0;

std::atomic<const Clock*> g_steady_override{nullptr};

}  // namespace

std::int64_t steady_now_us() {
  if (const Clock* clock = g_steady_override.load(std::memory_order_relaxed)) {
    return clock->now();
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_steady_clock_override(const Clock* clock) {
  g_steady_override.store(clock, std::memory_order_relaxed);
}

std::int64_t ambient_deadline_us() { return g_ambient_deadline_us; }

int ambient_deadline_remaining_ms() {
  const std::int64_t deadline = g_ambient_deadline_us;
  if (deadline == 0) return -1;
  const std::int64_t remaining_us = deadline - steady_now_us();
  if (remaining_us <= 0) return 0;
  // Round down but never to 0 — 0 means expired, and a sub-millisecond
  // budget is still a (barely) live one.
  const std::int64_t ms = remaining_us / 1000;
  return ms > 0 ? static_cast<int>(ms) : 1;
}

DeadlineScope::DeadlineScope(std::int64_t deadline_us)
    : previous_(g_ambient_deadline_us) {
  if (deadline_us != 0 &&
      (previous_ == 0 || deadline_us < previous_)) {
    g_ambient_deadline_us = deadline_us;
  }
}

DeadlineScope::~DeadlineScope() { g_ambient_deadline_us = previous_; }

}  // namespace gae::rpc
