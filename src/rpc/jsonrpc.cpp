#include "rpc/jsonrpc.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace gae::rpc::json {

namespace {

void encode_into(std::ostringstream& out, const Value& v);

void encode_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << static_cast<char>(c);
        }
    }
  }
  out << '"';
}

void encode_into(std::ostringstream& out, const Value& v) {
  switch (v.type()) {
    case Value::Type::kNil: out << "null"; break;
    case Value::Type::kBool: out << (v.as_bool() ? "true" : "false"); break;
    case Value::Type::kInt: out << v.as_int(); break;
    case Value::Type::kDouble: {
      const double d = v.as_double();
      if (std::isfinite(d)) {
        std::ostringstream num;
        num.precision(17);
        num << d;
        std::string s = num.str();
        // Keep doubles round-trippable as doubles.
        if (s.find_first_of(".eE") == std::string::npos) s += ".0";
        out << s;
      } else {
        out << "null";  // JSON has no NaN/Inf
      }
      break;
    }
    case Value::Type::kString: encode_string(out, v.as_string()); break;
    case Value::Type::kArray: {
      out << '[';
      bool first = true;
      for (const auto& e : v.as_array()) {
        if (!first) out << ',';
        first = false;
        encode_into(out, e);
      }
      out << ']';
      break;
    }
    case Value::Type::kStruct: {
      out << '{';
      bool first = true;
      for (const auto& [k, e] : v.as_struct()) {
        if (!first) out << ',';
        first = false;
        encode_string(out, k);
        out << ':';
        encode_into(out, e);
      }
      out << '}';
      break;
    }
  }
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& in) : in_(in) {}

  Result<Value> parse() {
    auto v = parse_value();
    if (!v.is_ok()) return v;
    skip_ws();
    if (pos_ != in_.size()) {
      return invalid_argument_error("json: trailing garbage at offset " + std::to_string(pos_));
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < in_.size() && std::isspace(static_cast<unsigned char>(in_[pos_]))) ++pos_;
  }

  Status err(const std::string& what) {
    return invalid_argument_error("json: " + what + " at offset " + std::to_string(pos_));
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> parse_value() {
    skip_ws();
    if (pos_ >= in_.size()) return err("unexpected end of input");
    const char c = in_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.is_ok()) return s.status();
      return Value(std::move(s).value());
    }
    if (c == 't') {
      if (!consume_keyword("true")) return err("bad literal");
      return Value(true);
    }
    if (c == 'f') {
      if (!consume_keyword("false")) return err("bad literal");
      return Value(false);
    }
    if (c == 'n') {
      if (!consume_keyword("null")) return err("bad literal");
      return Value();
    }
    return parse_number();
  }

  bool consume_keyword(const char* kw) {
    const std::size_t n = std::char_traits<char>::length(kw);
    if (in_.compare(pos_, n, kw) != 0) return false;
    pos_ += n;
    return true;
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < in_.size() && (in_[pos_] == '-' || in_[pos_] == '+')) ++pos_;
    bool is_double = false;
    while (pos_ < in_.size()) {
      const char c = in_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_double = true;
        ++pos_;
        if (pos_ < in_.size() && (in_[pos_] == '-' || in_[pos_] == '+')) ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return err("expected number");
    const std::string tok = in_.substr(start, pos_ - start);
    try {
      if (is_double) return Value(std::stod(tok));
      return Value(static_cast<std::int64_t>(std::stoll(tok)));
    } catch (...) {
      return invalid_argument_error("json: bad number '" + tok + "'");
    }
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return err("expected string");
    std::string out;
    while (pos_ < in_.size()) {
      const char c = in_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= in_.size()) return err("unterminated escape");
      const char e = in_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > in_.size()) return err("bad \\u escape");
          // Exactly four hex digits, each validated. stoul would accept a
          // partial parse ("12g3" -> 0x12) plus whitespace/sign prefixes,
          // silently decoding garbage instead of rejecting it.
          unsigned code = 0;
          for (std::size_t i = 0; i < 4; ++i) {
            const char h = in_[pos_ + i];
            unsigned digit = 0;
            if (h >= '0' && h <= '9') {
              digit = static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              digit = static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              digit = static_cast<unsigned>(h - 'A') + 10;
            } else {
              return err("bad \\u escape");
            }
            code = (code << 4) | digit;
          }
          pos_ += 4;
          // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return err("unknown escape");
      }
    }
    return err("unterminated string");
  }

  Result<Value> parse_array() {
    consume('[');
    Array arr;
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    for (;;) {
      auto v = parse_value();
      if (!v.is_ok()) return v;
      arr.push_back(std::move(v).value());
      if (consume(']')) return Value(std::move(arr));
      if (!consume(',')) return err("expected ',' or ']'");
    }
  }

  Result<Value> parse_object() {
    consume('{');
    Struct obj;
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    for (;;) {
      skip_ws();
      auto k = parse_string();
      if (!k.is_ok()) return k.status();
      if (!consume(':')) return err("expected ':'");
      auto v = parse_value();
      if (!v.is_ok()) return v;
      obj[std::move(k).value()] = std::move(v).value();
      if (consume('}')) return Value(std::move(obj));
      if (!consume(',')) return err("expected ',' or '}'");
    }
  }

  const std::string& in_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode(const Value& v) {
  std::ostringstream out;
  encode_into(out, v);
  return out.str();
}

Result<Value> decode(const std::string& text) { return JsonParser(text).parse(); }

}  // namespace gae::rpc::json

namespace gae::rpc::jsonrpc {

std::string encode_call(const std::string& method, const Array& params, std::int64_t id,
                        const std::string& trace) {
  Struct msg;
  msg["jsonrpc"] = Value("2.0");
  msg["method"] = Value(method);
  msg["params"] = Value(params);
  msg["id"] = Value(id);
  if (!trace.empty()) msg["trace"] = Value(trace);
  return json::encode(Value(std::move(msg)));
}

std::string encode_response(const Value& result, std::int64_t id) {
  Struct msg;
  msg["jsonrpc"] = Value("2.0");
  msg["result"] = result;
  msg["id"] = Value(id);
  return json::encode(Value(std::move(msg)));
}

std::string encode_fault(int code, const std::string& message, std::int64_t id) {
  Struct error;
  error["code"] = Value(static_cast<std::int64_t>(code));
  error["message"] = Value(message);
  Struct msg;
  msg["jsonrpc"] = Value("2.0");
  msg["error"] = Value(std::move(error));
  msg["id"] = Value(id);
  return json::encode(Value(std::move(msg)));
}

Result<Call> decode_call(const std::string& text) {
  auto parsed = json::decode(text);
  if (!parsed.is_ok()) return parsed.status();
  const Value v = std::move(parsed).value();
  if (!v.is_struct()) return invalid_argument_error("jsonrpc: request must be an object");
  Call call;
  call.method = v.get_string("method", "");
  if (call.method.empty()) return invalid_argument_error("jsonrpc: missing method");
  call.id = v.get_int("id", 0);
  call.trace = v.get_string("trace", "");
  if (v.has("params")) {
    const Value& p = v.at("params");
    if (!p.is_array()) return invalid_argument_error("jsonrpc: params must be an array");
    call.params = p.as_array();
  }
  return call;
}

Result<Response> decode_response(const std::string& text) {
  auto parsed = json::decode(text);
  if (!parsed.is_ok()) return parsed.status();
  const Value v = std::move(parsed).value();
  if (!v.is_struct()) return invalid_argument_error("jsonrpc: response must be an object");
  Response resp;
  resp.id = v.get_int("id", 0);
  if (v.has("error") && !v.at("error").is_nil()) {
    const Value& e = v.at("error");
    resp.is_fault = true;
    resp.fault_code = static_cast<int>(e.get_int("code", 0));
    resp.fault_string = e.get_string("message", "");
    return resp;
  }
  if (!v.has("result")) return invalid_argument_error("jsonrpc: response missing result");
  resp.result = v.at("result");
  return resp;
}

}  // namespace gae::rpc::jsonrpc
