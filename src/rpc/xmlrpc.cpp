#include "rpc/xmlrpc.h"

#include <cctype>
#include <memory>
#include <sstream>
#include <vector>

namespace gae::rpc::xmlrpc {

namespace {

// ---------------------------------------------------------------------------
// Tiny XML DOM (elements + text only; attributes are skipped, which is all
// XML-RPC requires).
// ---------------------------------------------------------------------------

struct XmlNode {
  std::string name;
  std::string text;  // concatenated character data directly inside this node
  std::vector<XmlNode> children;

  const XmlNode* child(const std::string& tag) const {
    for (const auto& c : children) {
      if (c.name == tag) return &c;
    }
    return nullptr;
  }
};

std::string xml_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      continue;
    }
    const auto semi = s.find(';', i);
    if (semi == std::string::npos) {
      out.push_back(s[i]);
      continue;
    }
    const std::string ent = s.substr(i + 1, semi - i - 1);
    if (ent == "lt") out.push_back('<');
    else if (ent == "gt") out.push_back('>');
    else if (ent == "amp") out.push_back('&');
    else if (ent == "quot") out.push_back('"');
    else if (ent == "apos") out.push_back('\'');
    else if (!ent.empty() && ent[0] == '#') {
      // numeric character reference (decimal or hex); ASCII only
      try {
        const long code = (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X'))
                              ? std::stol(ent.substr(2), nullptr, 16)
                              : std::stol(ent.substr(1));
        if (code >= 0 && code < 128) out.push_back(static_cast<char>(code));
      } catch (...) {
        // ignore malformed reference
      }
    } else {
      out.append(s, i, semi - i + 1);  // unknown entity: keep verbatim
    }
    i = semi;
  }
  return out;
}

/// Recursive-descent parser over the XML-RPC XML subset.
class XmlParser {
 public:
  explicit XmlParser(const std::string& input) : in_(input) {}

  Result<XmlNode> parse() {
    skip_prolog();
    auto node = parse_element();
    if (!node.is_ok()) return node.status();
    skip_ws();
    return node;
  }

 private:
  void skip_ws() {
    while (pos_ < in_.size() && std::isspace(static_cast<unsigned char>(in_[pos_]))) ++pos_;
  }

  void skip_prolog() {
    skip_ws();
    // <?xml ... ?> declaration and comments before the root element
    for (;;) {
      if (in_.compare(pos_, 5, "<?xml") == 0) {
        const auto end = in_.find("?>", pos_);
        pos_ = (end == std::string::npos) ? in_.size() : end + 2;
      } else if (in_.compare(pos_, 4, "<!--") == 0) {
        const auto end = in_.find("-->", pos_);
        pos_ = (end == std::string::npos) ? in_.size() : end + 3;
      } else {
        break;
      }
      skip_ws();
    }
  }

  Result<XmlNode> parse_element() {
    skip_ws();
    if (pos_ >= in_.size() || in_[pos_] != '<') {
      return invalid_argument_error("xml: expected '<' at offset " + std::to_string(pos_));
    }
    ++pos_;
    XmlNode node;
    while (pos_ < in_.size() && !std::isspace(static_cast<unsigned char>(in_[pos_])) &&
           in_[pos_] != '>' && in_[pos_] != '/') {
      node.name.push_back(in_[pos_++]);
    }
    if (node.name.empty()) return invalid_argument_error("xml: empty tag name");
    // Skip attributes up to '>' or '/>'.
    while (pos_ < in_.size() && in_[pos_] != '>' && in_[pos_] != '/') ++pos_;
    if (pos_ < in_.size() && in_[pos_] == '/') {
      ++pos_;
      if (pos_ >= in_.size() || in_[pos_] != '>') {
        return invalid_argument_error("xml: malformed self-closing tag <" + node.name);
      }
      ++pos_;
      return node;  // <tag/>
    }
    if (pos_ >= in_.size()) return invalid_argument_error("xml: unterminated tag <" + node.name);
    ++pos_;  // consume '>'

    // Content: interleaved text and child elements until </name>.
    for (;;) {
      if (pos_ >= in_.size()) {
        return invalid_argument_error("xml: missing close tag for <" + node.name + ">");
      }
      if (in_[pos_] == '<') {
        if (in_.compare(pos_, 4, "<!--") == 0) {
          const auto end = in_.find("-->", pos_);
          if (end == std::string::npos) return invalid_argument_error("xml: unterminated comment");
          pos_ = end + 3;
          continue;
        }
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '/') {
          pos_ += 2;
          std::string close;
          while (pos_ < in_.size() && in_[pos_] != '>') close.push_back(in_[pos_++]);
          if (pos_ >= in_.size()) return invalid_argument_error("xml: unterminated close tag");
          ++pos_;
          if (close != node.name) {
            return invalid_argument_error("xml: mismatched close tag </" + close +
                                          "> for <" + node.name + ">");
          }
          node.text = xml_unescape(node.text);
          return node;
        }
        auto child = parse_element();
        if (!child.is_ok()) return child.status();
        node.children.push_back(std::move(child).value());
      } else {
        node.text.push_back(in_[pos_++]);
      }
    }
  }

  const std::string& in_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Value encoding
// ---------------------------------------------------------------------------

void encode_value(std::ostringstream& out, const Value& v);

void encode_value_body(std::ostringstream& out, const Value& v) {
  switch (v.type()) {
    case Value::Type::kNil:
      out << "<nil/>";
      break;
    case Value::Type::kBool:
      out << "<boolean>" << (v.as_bool() ? 1 : 0) << "</boolean>";
      break;
    case Value::Type::kInt:
      out << "<i8>" << v.as_int() << "</i8>";
      break;
    case Value::Type::kDouble: {
      std::ostringstream num;
      num.precision(17);
      num << v.as_double();
      out << "<double>" << num.str() << "</double>";
      break;
    }
    case Value::Type::kString:
      out << "<string>" << xml_escape(v.as_string()) << "</string>";
      break;
    case Value::Type::kArray:
      out << "<array><data>";
      for (const auto& e : v.as_array()) encode_value(out, e);
      out << "</data></array>";
      break;
    case Value::Type::kStruct:
      out << "<struct>";
      for (const auto& [name, member] : v.as_struct()) {
        out << "<member><name>" << xml_escape(name) << "</name>";
        encode_value(out, member);
        out << "</member>";
      }
      out << "</struct>";
      break;
  }
}

void encode_value(std::ostringstream& out, const Value& v) {
  out << "<value>";
  encode_value_body(out, v);
  out << "</value>";
}

// ---------------------------------------------------------------------------
// Value decoding
// ---------------------------------------------------------------------------

Result<Value> decode_value(const XmlNode& value_node);

Result<Value> decode_typed(const XmlNode& t) {
  if (t.name == "nil") return Value();
  if (t.name == "boolean") {
    const std::string& s = t.text;
    if (s == "1" || s == "true") return Value(true);
    if (s == "0" || s == "false") return Value(false);
    return invalid_argument_error("xmlrpc: bad boolean '" + s + "'");
  }
  if (t.name == "int" || t.name == "i4" || t.name == "i8") {
    try {
      return Value(static_cast<std::int64_t>(std::stoll(t.text)));
    } catch (...) {
      return invalid_argument_error("xmlrpc: bad int '" + t.text + "'");
    }
  }
  if (t.name == "double") {
    try {
      return Value(std::stod(t.text));
    } catch (...) {
      return invalid_argument_error("xmlrpc: bad double '" + t.text + "'");
    }
  }
  if (t.name == "string") return Value(t.text);
  if (t.name == "array") {
    const XmlNode* data = t.child("data");
    if (!data) return invalid_argument_error("xmlrpc: array without <data>");
    Array arr;
    for (const auto& c : data->children) {
      if (c.name != "value") continue;
      auto e = decode_value(c);
      if (!e.is_ok()) return e.status();
      arr.push_back(std::move(e).value());
    }
    return Value(std::move(arr));
  }
  if (t.name == "struct") {
    Struct st;
    for (const auto& m : t.children) {
      if (m.name != "member") continue;
      const XmlNode* name = m.child("name");
      const XmlNode* val = m.child("value");
      if (!name || !val) return invalid_argument_error("xmlrpc: malformed struct member");
      auto e = decode_value(*val);
      if (!e.is_ok()) return e.status();
      st.emplace(name->text, std::move(e).value());
    }
    return Value(std::move(st));
  }
  return invalid_argument_error("xmlrpc: unknown value type <" + t.name + ">");
}

Result<Value> decode_value(const XmlNode& value_node) {
  // <value>text</value> with no type element means string.
  for (const auto& c : value_node.children) return decode_typed(c);
  return Value(value_node.text);
}

}  // namespace

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string encode_call(const std::string& method, const Array& params,
                        const std::string& trace) {
  std::ostringstream out;
  out << "<?xml version=\"1.0\"?><methodCall><methodName>" << xml_escape(method)
      << "</methodName>";
  if (!trace.empty()) out << "<trace>" << xml_escape(trace) << "</trace>";
  out << "<params>";
  for (const auto& p : params) {
    out << "<param>";
    encode_value(out, p);
    out << "</param>";
  }
  out << "</params></methodCall>";
  return out.str();
}

std::string encode_response(const Value& result) {
  std::ostringstream out;
  out << "<?xml version=\"1.0\"?><methodResponse><params><param>";
  encode_value(out, result);
  out << "</param></params></methodResponse>";
  return out.str();
}

std::string encode_fault(int code, const std::string& message) {
  std::ostringstream out;
  out << "<?xml version=\"1.0\"?><methodResponse><fault>";
  Struct fault;
  fault.emplace("faultCode", Value(static_cast<std::int64_t>(code)));
  fault.emplace("faultString", Value(message));
  encode_value(out, Value(std::move(fault)));
  out << "</fault></methodResponse>";
  return out.str();
}

Result<Call> decode_call(const std::string& xml) {
  XmlParser parser(xml);
  auto rootr = parser.parse();
  if (!rootr.is_ok()) return rootr.status();
  const XmlNode root = std::move(rootr).value();
  if (root.name != "methodCall") {
    return invalid_argument_error("xmlrpc: expected <methodCall>, got <" + root.name + ">");
  }
  const XmlNode* name = root.child("methodName");
  if (!name) return invalid_argument_error("xmlrpc: missing <methodName>");
  Call call;
  call.method = name->text;
  if (const XmlNode* trace = root.child("trace")) call.trace = trace->text;
  if (const XmlNode* params = root.child("params")) {
    for (const auto& p : params->children) {
      if (p.name != "param") continue;
      const XmlNode* v = p.child("value");
      if (!v) return invalid_argument_error("xmlrpc: <param> without <value>");
      auto e = decode_value(*v);
      if (!e.is_ok()) return e.status();
      call.params.push_back(std::move(e).value());
    }
  }
  return call;
}

Result<Response> decode_response(const std::string& xml) {
  XmlParser parser(xml);
  auto rootr = parser.parse();
  if (!rootr.is_ok()) return rootr.status();
  const XmlNode root = std::move(rootr).value();
  if (root.name != "methodResponse") {
    return invalid_argument_error("xmlrpc: expected <methodResponse>, got <" + root.name + ">");
  }
  Response resp;
  if (const XmlNode* fault = root.child("fault")) {
    const XmlNode* v = fault->child("value");
    if (!v) return invalid_argument_error("xmlrpc: <fault> without <value>");
    auto e = decode_value(*v);
    if (!e.is_ok()) return e.status();
    const Value fv = std::move(e).value();
    resp.is_fault = true;
    resp.fault_code = static_cast<int>(fv.get_int("faultCode", 0));
    resp.fault_string = fv.get_string("faultString", "");
    return resp;
  }
  const XmlNode* params = root.child("params");
  if (!params) return invalid_argument_error("xmlrpc: response without <params> or <fault>");
  const XmlNode* param = params->child("param");
  if (!param) return invalid_argument_error("xmlrpc: response <params> without <param>");
  const XmlNode* v = param->child("value");
  if (!v) return invalid_argument_error("xmlrpc: response <param> without <value>");
  auto e = decode_value(*v);
  if (!e.is_ok()) return e.status();
  resp.result = std::move(e).value();
  return resp;
}

}  // namespace gae::rpc::xmlrpc
