// Minimal HTTP/1.1 framing: enough for POST-based RPC with keep-alive and
// Content-Length bodies. Not a general web server.
#pragma once

#include <map>
#include <string>

#include "common/status.h"
#include "net/socket.h"

namespace gae::rpc::http {

struct Request {
  std::string method = "POST";
  std::string path = "/";
  std::map<std::string, std::string> headers;  // keys lower-cased
  std::string body;

  std::string header(const std::string& key, const std::string& fallback = "") const;
  bool keep_alive() const;
};

struct Response {
  int status_code = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;  // keys lower-cased
  std::string body;

  std::string header(const std::string& key, const std::string& fallback = "") const;
};

/// Reads one request from the stream. UNAVAILABLE on clean EOF before any
/// bytes (peer closed a kept-alive connection), INVALID_ARGUMENT on garbage.
Result<Request> read_request(net::TcpStream& stream);

Status write_request(net::TcpStream& stream, const Request& req);

Result<Response> read_response(net::TcpStream& stream);

Status write_response(net::TcpStream& stream, const Response& resp, bool keep_alive);

}  // namespace gae::rpc::http
