// Minimal HTTP/1.1 framing: enough for POST-based RPC with keep-alive and
// Content-Length bodies. Not a general web server.
#pragma once

#include <map>
#include <string>

#include "common/status.h"
#include "rpc/transport.h"

namespace gae::rpc::http {

struct Request {
  std::string method = "POST";
  std::string path = "/";
  std::map<std::string, std::string> headers;  // keys lower-cased
  std::string body;
  /// The x-gae-trace header, carried outside the generic map: it is on the
  /// hot path of every traced RPC, and the map costs a node allocation plus
  /// several string temporaries per message. Set this instead of
  /// headers["x-gae-trace"]; readers find wire values here, never in the map.
  std::string trace;
  /// The x-gae-deadline header (remaining whole-call budget in milliseconds
  /// at send time), same dedicated-slot design as `trace`. -1 = absent.
  int deadline_ms = -1;
  /// The x-gae-tier header (request criticality, 0 = most critical). Same
  /// dedicated-slot design. -1 = absent.
  int tier = -1;

  std::string header(const std::string& key, const std::string& fallback = "") const;
  bool keep_alive() const;
};

struct Response {
  int status_code = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;  // keys lower-cased
  std::string body;

  std::string header(const std::string& key, const std::string& fallback = "") const;
};

/// Size caps applied while reading a message off the wire; a peer exceeding
/// them gets INVALID_ARGUMENT instead of unbounded buffering.
struct ReadLimits {
  std::size_t max_header_bytes = 1u << 20;
  std::size_t max_body_bytes = 64u << 20;
};

/// Reads one request from the stream. UNAVAILABLE on clean EOF before any
/// bytes (peer closed a kept-alive connection), INVALID_ARGUMENT on garbage,
/// DEADLINE_EXCEEDED when the stream's receive timeout expires.
Result<Request> read_request(Stream& stream, const ReadLimits& limits = {});

Status write_request(Stream& stream, const Request& req);

Result<Response> read_response(Stream& stream, const ReadLimits& limits = {});

Status write_response(Stream& stream, const Response& resp, bool keep_alive);

// Raw-socket overloads for call sites that hold a bare net::TcpStream
// (tests, the fault-injecting proxy): same framing through a borrowed
// Stream adapter.
inline Result<Request> read_request(net::TcpStream& stream, const ReadLimits& limits = {}) {
  BorrowedTcpStream adapter(stream);
  return read_request(static_cast<Stream&>(adapter), limits);
}
inline Status write_request(net::TcpStream& stream, const Request& req) {
  BorrowedTcpStream adapter(stream);
  return write_request(static_cast<Stream&>(adapter), req);
}
inline Result<Response> read_response(net::TcpStream& stream, const ReadLimits& limits = {}) {
  BorrowedTcpStream adapter(stream);
  return read_response(static_cast<Stream&>(adapter), limits);
}
inline Status write_response(net::TcpStream& stream, const Response& resp, bool keep_alive) {
  BorrowedTcpStream adapter(stream);
  return write_response(static_cast<Stream&>(adapter), resp, keep_alive);
}

}  // namespace gae::rpc::http
