// End-to-end deadline propagation. A caller's whole-call budget rides the
// x-gae-deadline header as *remaining milliseconds at send time* (an absolute
// instant cannot cross machines without clock sync). Server-side, the
// Dispatcher installs the arriving budget as the thread's ambient deadline;
// any RpcClient call the handler makes clamps its own budget to what is left
// of the ambient one, so the remaining budget — minus the time the handler
// already spent — is what goes back on the wire for the downstream hop.
//
// The ambient mechanism mirrors the trace context in telemetry/trace.h: a
// thread-local holding an absolute steady-clock instant, pushed by a scoped
// RAII guard and read by the client at call time.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace gae::rpc {

/// Monotonic microseconds (std::chrono::steady_clock by default). The
/// deadline plane uses one process-wide time source rather than per-object
/// injected Clocks because it must agree across every component — 
/// dispatcher, handler, client. The deterministic-simulation harness
/// substitutes its virtual clock process-wide via set_steady_clock_override.
std::int64_t steady_now_us();

/// Routes steady_now_us() through `clock` (null restores the real steady
/// clock). For the DST harness only: install before any traffic, from the
/// simulation's single thread; `clock` must outlive the override.
void set_steady_clock_override(const Clock* clock);

/// The calling thread's ambient deadline as an absolute steady instant
/// (µs); 0 = no deadline in scope.
std::int64_t ambient_deadline_us();

/// Milliseconds left of the ambient deadline: -1 = no deadline in scope,
/// 0 = expired, otherwise the remaining budget (rounded down, min 1).
int ambient_deadline_remaining_ms();

/// RAII: installs `deadline_us` (absolute steady µs) as the thread's ambient
/// deadline for the scope's lifetime. 0 is a no-op; a nested scope can only
/// tighten — the effective deadline is min(enclosing, installed).
class DeadlineScope {
 public:
  explicit DeadlineScope(std::int64_t deadline_us);
  ~DeadlineScope();

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  std::int64_t previous_;
};

}  // namespace gae::rpc
