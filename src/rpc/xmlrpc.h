// XML-RPC codec: the wire format the paper's Clarens services spoke.
// Implements the subset of XML needed by XML-RPC (no attributes carry
// meaning, no namespaces, entity escaping for the five XML entities).
#pragma once

#include <string>
#include <utility>

#include "common/status.h"
#include "rpc/value.h"

namespace gae::rpc::xmlrpc {

/// A decoded <methodCall>.
struct Call {
  std::string method;
  Array params;
  /// Reserved trace metadata (telemetry::format_trace triple; "" = none),
  /// carried in a non-standard <trace> element that standard decoders skip.
  std::string trace;
};

/// A decoded <methodResponse>: either a value or a fault.
struct Response {
  bool is_fault = false;
  Value result;       // set when !is_fault
  int fault_code = 0; // set when is_fault
  std::string fault_string;
};

std::string encode_call(const std::string& method, const Array& params,
                        const std::string& trace = "");
std::string encode_response(const Value& result);
std::string encode_fault(int code, const std::string& message);

Result<Call> decode_call(const std::string& xml);
Result<Response> decode_response(const std::string& xml);

/// Escapes &, <, >, ", ' for embedding in XML text.
std::string xml_escape(const std::string& s);

}  // namespace gae::rpc::xmlrpc
