// dst::explore — randomized schedule search over dst::Cluster.
//
// Each seed deterministically derives a fault schedule (kills, restarts,
// partitions, clock skew, bit rot) and a workload interleaving; run_seed
// plays it against a fresh cluster and returns every invariant violation.
// explore() sweeps a seed range — thousands of distinct whole-cluster
// schedules in seconds of wall time, because everything runs on virtual
// time. A failing seed reproduces bit-identically: same seed, same binary,
// same trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dst/cluster.h"

namespace gae::dst {

struct ExploreOptions {
  /// Faulted ticks per schedule (50ms of virtual time each by default).
  int ticks = 40;
  /// Probability that any given tick boundary injects a fault.
  double action_prob = 0.15;
  /// Quiet ticks after healing every partition, long enough for a pending
  /// failover to complete (lease lapse + promotion) so the final invariant
  /// checks run against a settled cluster.
  int settle_ticks = 40;
  /// Template for each run; `seed` is overridden per seed.
  ClusterOptions cluster;
};

struct SeedResult {
  std::uint64_t seed = 0;
  bool ok = true;
  std::vector<std::string> violations;
  std::vector<std::string> actions;
  std::uint64_t invariant_checks = 0;
  std::uint64_t writes_acked = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_err = 0;
  bool promoted = false;
};

struct ExploreReport {
  std::uint64_t seeds_run = 0;
  std::uint64_t total_invariant_checks = 0;
  std::uint64_t total_writes_acked = 0;
  std::vector<SeedResult> failures;
};

/// Draws the next scripted fault from a schedule RNG (the per-seed action
/// distribution; exposed so tests can bias it).
Action draw_action(Rng& rng);

/// Plays seed's schedule against a fresh cluster; never throws on
/// violations — they come back in the result for the caller to report.
SeedResult run_seed(std::uint64_t seed, const ExploreOptions& options = {});

/// Runs every seed in [begin, end).
ExploreReport explore(std::uint64_t begin, std::uint64_t end,
                      const ExploreOptions& options = {});

/// Human-readable failure block: seed, action schedule, violations, and the
/// replay command.
std::string format_failure(const SeedResult& result);

}  // namespace gae::dst
