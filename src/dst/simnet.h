// The simulated network behind the rpc::Transport seam.
//
// One SimNetwork replaces every socket in the process: each node gets a
// SimTransport whose streams move bytes through a single (time, seq)-ordered
// event heap over the cluster's shared ManualClock. All nondeterminism comes
// from one seeded Rng, so a schedule replays bit-identically from its seed.
//
// The fault model is TCP-honest:
//  - delivery within one connection direction is FIFO
//    (arrival = max(previous arrival, now + sampled latency)); the reorder
//    window only jitters *across* connections, the way real packet reorder
//    surfaces above a reliable stream;
//  - a dropped segment on a stream with no retransmission is a dead
//    connection, so drop_prob breaks the connection at delivery time instead
//    of silently losing bytes (silent loss would corrupt HTTP framing in a
//    way no real TCP stack exhibits);
//  - dup_prob redelivers a chunk, desyncing framing the way a confused
//    middlebox does — exercising the robustness path, not the happy path;
//  - a directed partition blackholes at delivery time (the reader times out
//    on virtual time) and refuses at connect time.
//
// Blocking semantics under virtual time: a read with no buffered bytes pumps
// the event heap, advancing the clock event-by-event, until data/EOF/break
// arrives or the stream's receive timeout expires (the clock jumps to the
// deadline and the read returns DEADLINE_EXCEEDED). A read that could never
// complete — heap drained, no timeout — returns UNAVAILABLE instead of
// hanging, so a wedged schedule surfaces as an error, never a stuck process.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/time_types.h"
#include "rpc/transport.h"

namespace gae::dst {

class SimNetwork;
class SimStream;
class SimListener;
class SimTransport;

/// Per-link fault/latency parameters (applied to every chunk sent).
struct LinkOptions {
  SimDuration base_latency_us = 200;
  /// Uniform extra latency in [0, jitter_us].
  SimDuration jitter_us = 300;
  /// Extra uniform jitter window: raises cross-connection reordering without
  /// violating per-connection FIFO.
  SimDuration reorder_window_us = 0;
  /// Probability a chunk is "lost": the connection breaks at delivery time.
  double drop_prob = 0.0;
  /// Probability a chunk is delivered twice (framing desync).
  double dup_prob = 0.0;
};

/// The seeded in-memory network. Single-threaded by construction: every
/// stream/listener it hands out must be used from the simulation thread.
class SimNetwork {
 public:
  SimNetwork(ManualClock& clock, std::uint64_t seed);
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  SimTime now() const { return clock_.now(); }
  ManualClock& clock() { return clock_; }

  /// The rpc::Transport a given node dials and listens through (lazily
  /// created; stable for the network's lifetime).
  rpc::Transport& transport_for(const std::string& node);

  LinkOptions& link() { return link_; }

  // -- Faults --------------------------------------------------------------

  /// Directed partition: chunks from -> to blackhole at delivery; connects
  /// from -> to are refused. Idempotent.
  void partition(const std::string& from, const std::string& to);
  void partition_both(const std::string& a, const std::string& b);
  void heal(const std::string& from, const std::string& to);
  void heal_both(const std::string& a, const std::string& b);
  void heal_all();
  bool partitioned(const std::string& from, const std::string& to) const;

  /// Breaks every connection touching `node` (peers see a reset after one
  /// link latency) and closes its listeners. Models a process kill.
  void kill_node(const std::string& node);

  // -- Time ----------------------------------------------------------------

  /// Fires every delivery due within dt, then lands the clock at now + dt.
  void run_for(SimDuration dt);

  /// Fires events until the heap is empty (bounded by max_events).
  void drain(std::size_t max_events = 1'000'000);

  // -- Server-push listening (SimHost) -------------------------------------

  /// Like listen(), but each arriving connection is handed to `cb` at its
  /// delivery instant instead of queueing for accept(). Returns the bound
  /// port (auto-assigned when 0).
  Result<std::uint16_t> listen_push(const std::string& node, std::uint16_t port,
                                    std::function<void(std::unique_ptr<SimStream>)> cb);
  void close_port(const std::string& node, std::uint16_t port);

  // -- Introspection -------------------------------------------------------

  /// When enabled, every network-visible event (connect, deliver, drop, dup,
  /// blackhole, break, eof) appends one line; same seed + same schedule =>
  /// byte-identical trace.
  void set_trace_enabled(bool on) { trace_enabled_ = on; }
  const std::vector<std::string>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t dups() const { return dups_; }
  std::uint64_t blackholes() const { return blackholes_; }
  std::uint64_t connects() const { return connects_; }
  std::uint64_t events_fired() const { return events_fired_; }

 private:
  friend class SimStream;
  friend class SimListener;
  friend class SimTransport;

  /// One side of a connection. Owned by shared_ptr: the SimStream holds one
  /// reference, in-flight delivery closures hold others.
  struct Endpoint {
    std::uint64_t conn_id = 0;
    std::string node;       // the node this endpoint lives on
    std::string peer_node;  // where the other side lives
    std::string rbuf;       // delivered, not yet read
    bool eof = false;       // peer closed cleanly (FIN delivered)
    bool broken = false;    // connection reset
    bool closed = false;    // this side closed
    int recv_timeout_ms = 0;
    /// FIFO floor: no chunk addressed to this endpoint may arrive earlier
    /// than the previous one.
    SimTime arrival_floor = 0;
    std::weak_ptr<Endpoint> peer;
    /// SimHost data callback; fired at delivery when set.
    std::function<void()> on_readable;
    /// Guards re-entrant on_readable: while a handler for this connection is
    /// running, further deliveries just append to rbuf.
    bool in_handler = false;
  };

  struct PortState {
    std::string node;
    std::uint16_t port = 0;
    bool open = true;
    std::deque<std::shared_ptr<Endpoint>> pending;  // awaiting accept()
    std::function<void(std::unique_ptr<SimStream>)> on_connection;
  };

  struct Event {
    SimTime at = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Transport entry points (called by SimStream / SimListener / SimTransport).
  Result<std::unique_ptr<rpc::Stream>> connect(const std::string& from_node,
                                               const std::string& host, std::uint16_t port);
  Result<std::unique_ptr<rpc::Listener>> listen(const std::string& node, std::uint16_t port);
  Result<std::unique_ptr<rpc::Stream>> accept(const std::shared_ptr<PortState>& ps);
  Status send(const std::shared_ptr<Endpoint>& from, const void* data, std::size_t len);
  Result<std::size_t> read_some(const std::shared_ptr<Endpoint>& ep, void* buf, std::size_t len);
  bool endpoint_healthy(const Endpoint& ep) const;
  void shutdown_endpoint(const std::shared_ptr<Endpoint>& ep);
  void close_endpoint(const std::shared_ptr<Endpoint>& ep);

  void schedule(SimTime at, std::function<void()> fn);
  void pump_one();
  void deliver(const std::shared_ptr<Endpoint>& to, const std::string& chunk, bool is_dup);
  void deliver_fin(const std::shared_ptr<Endpoint>& to);
  void break_pair(const std::shared_ptr<Endpoint>& ep);
  void fire_readable(const std::shared_ptr<Endpoint>& ep);
  SimDuration sample_latency();
  void trace_line(const std::string& line);
  std::shared_ptr<PortState> find_port(const std::string& node, std::uint16_t port);

  ManualClock& clock_;
  Rng rng_;
  LinkOptions link_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::uint16_t next_auto_port_ = 40'000;
  std::map<std::string, std::unique_ptr<SimTransport>> transports_;
  std::map<std::pair<std::string, std::uint16_t>, std::shared_ptr<PortState>> ports_;
  std::set<std::pair<std::string, std::string>> partitions_;
  std::vector<std::weak_ptr<Endpoint>> endpoints_;
  bool trace_enabled_ = false;
  std::vector<std::string> trace_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t dups_ = 0;
  std::uint64_t blackholes_ = 0;
  std::uint64_t connects_ = 0;
  std::uint64_t events_fired_ = 0;
};

/// rpc::Stream over a simulated connection endpoint.
class SimStream final : public rpc::Stream {
 public:
  SimStream(SimNetwork* net, std::shared_ptr<SimNetwork::Endpoint> ep)
      : net_(net), ep_(std::move(ep)) {}
  ~SimStream() override { close(); }

  bool valid() const override { return ep_ != nullptr && !ep_->closed; }
  Status write_all(const void* data, std::size_t len) override { return net_->send(ep_, data, len); }
  using rpc::Stream::write_all;
  Result<std::size_t> read_some(void* buf, std::size_t len) override {
    return net_->read_some(ep_, buf, len);
  }
  Status set_recv_timeout_ms(int ms) override {
    ep_->recv_timeout_ms = ms;
    return Status::ok();
  }
  bool healthy() const override { return net_->endpoint_healthy(*ep_); }
  void shutdown_both() override { net_->shutdown_endpoint(ep_); }
  void close() override {
    if (ep_) net_->close_endpoint(ep_);
  }

  /// Bytes delivered but not yet read (SimHost's keep-alive loop condition).
  bool has_buffered() const { return !ep_->rbuf.empty(); }
  bool peer_gone() const { return ep_->eof || ep_->broken || ep_->closed; }
  /// SimHost wiring: fired at each delivery to this endpoint.
  void set_on_readable(std::function<void()> fn) { ep_->on_readable = std::move(fn); }
  std::uint64_t conn_id() const { return ep_->conn_id; }

 private:
  SimNetwork* net_;
  std::shared_ptr<SimNetwork::Endpoint> ep_;
};

class SimListener final : public rpc::Listener {
 public:
  SimListener(SimNetwork* net, std::shared_ptr<SimNetwork::PortState> ps)
      : net_(net), ps_(std::move(ps)) {}
  ~SimListener() override { close(); }

  bool valid() const override { return ps_ != nullptr && ps_->open; }
  Result<std::unique_ptr<rpc::Stream>> accept() override { return net_->accept(ps_); }
  std::uint16_t port() const override { return ps_->port; }
  void close() override {
    if (ps_) net_->close_port(ps_->node, ps_->port);
  }

 private:
  SimNetwork* net_;
  std::shared_ptr<SimNetwork::PortState> ps_;
};

/// The rpc::Transport a single simulated node sees. Dials by node name
/// ("host" = node), listens on that node's ports.
class SimTransport final : public rpc::Transport {
 public:
  SimTransport(SimNetwork* net, std::string node) : net_(net), node_(std::move(node)) {}

  const std::string& node() const { return node_; }

  Result<std::unique_ptr<rpc::Stream>> connect(const std::string& host,
                                               std::uint16_t port) override {
    return net_->connect(node_, host, port);
  }
  Result<std::unique_ptr<rpc::Listener>> listen(std::uint16_t port) override {
    return net_->listen(node_, port);
  }

 private:
  SimNetwork* net_;
  std::string node_;
};

}  // namespace gae::dst
