// dst::Cluster — the whole GAE service fabric in one deterministic process.
//
// One seeded SimNetwork carries every RPC (monitoring reads, steering
// commands, estimator queries, WAL shipping) between simulated nodes:
//
//   jobmon-a      primary Job Monitoring Service: Clarens host + read cache
//                 + admission, DBManager over a WAL that replicates
//                 synchronously to jobmon-b through the simulated network.
//   jobmon-b      hot standby: ha.* apply plane + a cold JMS promoted by the
//                 supervision plane when jobmon-a dies.
//   estimator-1   Estimator Service (runtime/queue/transfer estimates).
//   steering-1    Steering Service driving the sphinx scheduler.
//   client-1      workload: submissions, monitoring reads, steering ops.
//   arbiter       (implicit) registry + failure detector + supervisor; a
//                 partition from "arbiter" suppresses heartbeats/renewals.
//
// Everything shares one ManualClock. The execution grid (sim::Simulation)
// is slaved to it: after each network advance the grid's event loop is run
// up to the master clock, so task progress, the collector and the RPC plane
// interleave on one timeline. Per-node SkewClock wrappers let a schedule
// skew an individual host's view of time without touching the master.
//
// Between ticks the cluster checks the invariant set from the issue:
//   I1 no acked-write loss: every update acknowledged while the primary's
//      store was healthy must be present (same-or-later progress, same
//      terminal state) on whichever node currently serves as primary;
//   I2 no two primaries in one fencing epoch;
//   I3 registry primary-lease epochs never decrease;
//   I4 the jobmon read cache never serves a state older than the service's
//      current truth (transitions invalidate synchronously);
//   I5 admission control never deadlocks: zero tickets in flight at every
//      tick boundary, limit never collapses to zero.
//
// Violations are recorded (not thrown) so a sweep can report the seed and
// its full action trace, then replay it bit-identically.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "clarens/host.h"
#include "clarens/registry.h"
#include "common/admission.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/wal.h"
#include "dst/sim_host.h"
#include "dst/simnet.h"
#include "estimators/estimate_db.h"
#include "estimators/recorder.h"
#include "estimators/runtime_estimator.h"
#include "estimators/service.h"
#include "exec/execution_service.h"
#include "ha/failover.h"
#include "ha/replication.h"
#include "ha/rpc_binding.h"
#include "jobmon/db_manager.h"
#include "jobmon/read_cache.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "rpc/client.h"
#include "sim/engine.h"
#include "sim/grid.h"
#include "sphinx/scheduler.h"
#include "steering/service.h"
#include "storage/faulty_storage.h"
#include "storage/health.h"
#include "supervision/failure_detector.h"
#include "supervision/supervisor.h"
#include "telemetry/metrics.h"

namespace gae::dst {

/// A per-node clock: the master clock plus an adjustable offset, so a
/// schedule can skew one host's sense of "now" (lease math, cache TTLs)
/// without forking the timeline.
class SkewClock final : public Clock {
 public:
  explicit SkewClock(const Clock& base) : base_(base) {}
  SimTime now() const override { return base_.now() + offset_; }
  void set_offset(SimDuration offset) { offset_ = offset; }
  SimDuration offset() const { return offset_; }

 private:
  const Clock& base_;
  SimDuration offset_ = 0;
};

/// One scripted fault, applied at a tick boundary.
struct Action {
  enum class Kind {
    kNone,
    kKillPrimary,              // kill jobmon-a (process death; stays dead until restart)
    kRestartPrimary,           // revive jobmon-a (possibly as a fenced zombie)
    kPartitionPrimaryStandby,  // jobmon-a <-/-> jobmon-b
    kPartitionPrimaryArbiter,  // heartbeats/renewals stop arriving
    kPartitionClientPrimary,   // client-1 <-/-> current primary
    kHealAll,                  // heal every partition (killed nodes stay dark)
    kSkewPrimaryClock,         // add amount_us to jobmon-a's clock offset
    kRotStandbyWalByte,        // at-rest bit rot in jobmon-b's log
  };
  Kind kind = Kind::kNone;
  SimDuration amount_us = 0;  // kSkewPrimaryClock
  std::size_t offset = 0;     // kRotStandbyWalByte

  std::string describe() const;
};

struct ClusterOptions {
  std::uint64_t seed = 1;
  LinkOptions link;
  /// Record the network event trace (determinism tests compare it).
  bool trace = false;
  /// Virtual time per tick().
  SimDuration tick = from_millis(50);
  int submits_per_tick = 1;
  int reads_per_tick = 2;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Applies one scripted action at the current instant.
  void apply(const Action& action);

  /// One simulation step: workload (submits, reads, steering), network +
  /// grid advance, supervision plane, invariant checks.
  void tick();

  /// All invariant violations recorded so far (empty = healthy run).
  const std::vector<std::string>& violations() const { return violations_; }
  /// Chronological action log ("t=<us> <action>") for failure replay.
  const std::vector<std::string>& action_log() const { return action_log_; }

  SimNetwork& net() { return net_; }
  ManualClock& clock() { return clock_; }
  SimTime now() const { return clock_.now(); }

  bool promoted() const { return promoted_; }
  bool primary_killed() const { return primary_killed_; }
  std::uint64_t reads_ok() const { return reads_ok_; }
  std::uint64_t reads_err() const { return reads_err_; }
  std::uint64_t steer_ops() const { return steer_ops_; }
  std::uint64_t estimates_ok() const { return estimates_ok_; }
  std::uint64_t writes_acked() const { return writes_acked_; }
  std::uint64_t invariant_checks() const { return invariant_checks_; }
  std::size_t tasks_submitted() const { return task_ids_.size(); }

 private:
  static constexpr std::uint16_t kJobmonPort = 7100;
  static constexpr std::uint16_t kEstimatorPort = 7300;
  static constexpr std::uint16_t kSteeringPort = 7200;

  std::string primary_node() const { return promoted_ ? "jobmon-b" : "jobmon-a"; }
  jobmon::JobMonitoringService* primary_jms() { return promoted_ ? jms_b_.get() : jms_a_.get(); }
  clarens::ClarensHost& primary_host() { return promoted_ ? host_b_ : host_a_; }

  void build_grid();
  void build_jobmon_pair();
  void build_satellite_services();
  void build_clients();
  void on_acked_update(jobmon::JobMonitoringService* jms, storage::StoreHealth* health,
                       const std::string& task_id);
  void on_promoted();

  void maybe_submit();
  void do_reads();
  void maybe_steer();
  void heartbeat_and_renew();
  void advance(SimDuration dt);
  void check_invariants();
  void violation(const std::string& invariant, const std::string& detail);
  void apply_kill_partitions();

  ClusterOptions options_;
  ManualClock clock_;
  SimNetwork net_;
  Rng rng_;
  telemetry::MetricsRegistry metrics_;

  SkewClock clock_a_;
  SkewClock clock_b_;
  SkewClock clock_est_;
  SkewClock clock_steer_;

  // Execution grid (virtual world the services monitor/steer).
  sim::Simulation sim_;
  sim::Grid grid_;
  monalisa::Repository monitoring_;
  std::map<std::string, std::unique_ptr<exec::ExecutionService>> execs_;
  std::map<std::string, std::shared_ptr<estimators::RuntimeEstimator>> runtime_est_;
  std::vector<std::unique_ptr<estimators::SiteRuntimeRecorder>> recorders_;
  std::shared_ptr<estimators::EstimateDatabase> estimate_db_;
  std::unique_ptr<sphinx::SphinxScheduler> scheduler_;

  // Arbiter plane (registry + supervision, master clock).
  clarens::ServiceRegistry registry_;
  supervision::FailureDetector detector_;
  supervision::Supervisor supervisor_;

  // jobmon-b standby storage + apply plane.
  MemoryWalStorage store_b_inner_;
  storage::FaultyWalStorage store_b_;
  storage::StoreHealth health_b_;
  ha::StandbyReplica replica_b_;
  ha::StandbySet standbys_;

  // jobmon-a primary replication chain.
  MemoryWalStorage store_a_inner_;
  storage::FaultyWalStorage store_a_;
  storage::StoreHealth health_a_;
  std::unique_ptr<rpc::RpcClient> ship_client_;
  std::unique_ptr<ha::RpcShipperTransport> ship_transport_;
  std::unique_ptr<ha::LogShipper> shipper_;
  std::unique_ptr<ha::ReplicatedWalStorage> replicated_a_;
  std::unique_ptr<Wal> wal_a_;
  std::unique_ptr<Wal> wal_b_;
  std::unique_ptr<jobmon::JobMonitoringService> jms_a_;
  std::unique_ptr<jobmon::JobMonitoringService> jms_b_;
  std::shared_ptr<ha::PrimaryRole> role_a_;
  std::shared_ptr<ha::PrimaryRole> role_b_;
  clarens::PrimaryLease lease_a_;
  clarens::PrimaryLease lease_b_;

  // Hosts + per-host serving infrastructure.
  AdmissionController admission_a_;
  AdmissionController admission_b_;
  jobmon::ReadCache cache_a_;
  jobmon::ReadCache cache_b_;
  clarens::ClarensHost host_a_;
  clarens::ClarensHost host_b_;
  clarens::ClarensHost host_est_;
  clarens::ClarensHost host_steer_;
  std::unique_ptr<estimators::EstimatorService> estimator_svc_;
  std::unique_ptr<steering::SteeringService> steering_svc_;
  std::unique_ptr<SimHost> shost_a_;
  std::unique_ptr<SimHost> shost_b_;
  std::unique_ptr<SimHost> shost_est_;
  std::unique_ptr<SimHost> shost_steer_;

  // Workload clients (node client-1).
  std::unique_ptr<rpc::RpcClient> jobmon_client_;
  std::unique_ptr<rpc::RpcClient> steering_client_;
  std::unique_ptr<rpc::RpcClient> estimator_client_;

  // Oracle + invariant state.
  jobmon::DBManager oracle_;
  std::uint64_t last_epoch_seen_ = 0;
  std::vector<std::string> violations_;
  std::vector<std::string> action_log_;
  std::vector<std::string> task_ids_;
  int next_task_ = 0;
  bool primary_killed_ = false;
  bool promoted_ = false;
  std::uint64_t reads_ok_ = 0;
  std::uint64_t reads_err_ = 0;
  std::uint64_t steer_ops_ = 0;
  std::uint64_t estimates_ok_ = 0;
  std::uint64_t writes_acked_ = 0;
  std::uint64_t invariant_checks_ = 0;
};

}  // namespace gae::dst
