#include "dst/simnet.h"

#include <algorithm>
#include <cstring>

namespace gae::dst {

namespace {

std::string fmt_bytes(std::size_t n) { return std::to_string(n) + "B"; }

}  // namespace

SimNetwork::SimNetwork(ManualClock& clock, std::uint64_t seed) : clock_(clock), rng_(seed) {}

SimNetwork::~SimNetwork() = default;

rpc::Transport& SimNetwork::transport_for(const std::string& node) {
  auto it = transports_.find(node);
  if (it == transports_.end()) {
    it = transports_.emplace(node, std::make_unique<SimTransport>(this, node)).first;
  }
  return *it->second;
}

void SimNetwork::partition(const std::string& from, const std::string& to) {
  if (partitions_.insert({from, to}).second) {
    trace_line("t=" + std::to_string(now()) + " partition " + from + "->" + to);
  }
}

void SimNetwork::partition_both(const std::string& a, const std::string& b) {
  partition(a, b);
  partition(b, a);
}

void SimNetwork::heal(const std::string& from, const std::string& to) {
  if (partitions_.erase({from, to}) > 0) {
    trace_line("t=" + std::to_string(now()) + " heal " + from + "->" + to);
  }
}

void SimNetwork::heal_both(const std::string& a, const std::string& b) {
  heal(a, b);
  heal(b, a);
}

void SimNetwork::heal_all() {
  if (!partitions_.empty()) {
    partitions_.clear();
    trace_line("t=" + std::to_string(now()) + " heal all");
  }
}

bool SimNetwork::partitioned(const std::string& from, const std::string& to) const {
  return partitions_.count({from, to}) > 0;
}

void SimNetwork::kill_node(const std::string& node) {
  trace_line("t=" + std::to_string(now()) + " kill " + node);
  // Close the node's listeners (pending, un-accepted connections break).
  for (auto& [key, ps] : ports_) {
    if (key.first != node || !ps->open) continue;
    ps->open = false;
    for (auto& pending : ps->pending) break_pair(pending);
    ps->pending.clear();
  }
  // Break every live connection touching the node. The local side dies now;
  // the remote side learns after one link latency (the RST has to travel).
  std::vector<std::weak_ptr<Endpoint>> kept;
  kept.reserve(endpoints_.size());
  for (auto& weak : endpoints_) {
    auto ep = weak.lock();
    if (!ep) continue;
    kept.push_back(weak);
    if (ep->node != node || ep->broken || ep->closed) continue;
    ep->broken = true;
    ep->rbuf.clear();
    if (auto peer = ep->peer.lock()) {
      SimTime at = std::max(peer->arrival_floor, now() + sample_latency());
      peer->arrival_floor = at;
      std::weak_ptr<Endpoint> weak_peer = peer;
      schedule(at, [this, weak_peer] {
        if (auto p = weak_peer.lock()) break_pair(p);
      });
    }
  }
  endpoints_ = std::move(kept);
}

void SimNetwork::run_for(SimDuration dt) {
  const SimTime until = clock_.now() + dt;
  while (!events_.empty() && events_.top().at <= until) pump_one();
  clock_.advance_to(until);
}

void SimNetwork::drain(std::size_t max_events) {
  while (!events_.empty() && max_events-- > 0) pump_one();
}

Result<std::uint16_t> SimNetwork::listen_push(const std::string& node, std::uint16_t port,
                                              std::function<void(std::unique_ptr<SimStream>)> cb) {
  if (port == 0) port = next_auto_port_++;
  auto key = std::make_pair(node, port);
  auto it = ports_.find(key);
  if (it != ports_.end() && it->second->open) {
    return invalid_argument_error("port already bound: " + node + ":" + std::to_string(port));
  }
  auto ps = std::make_shared<PortState>();
  ps->node = node;
  ps->port = port;
  ps->on_connection = std::move(cb);
  ports_[key] = ps;
  return port;
}

void SimNetwork::close_port(const std::string& node, std::uint16_t port) {
  auto it = ports_.find({node, port});
  if (it == ports_.end() || !it->second->open) return;
  it->second->open = false;
  for (auto& pending : it->second->pending) break_pair(pending);
  it->second->pending.clear();
  it->second->on_connection = nullptr;
}

// -- Transport entry points --------------------------------------------------

Result<std::unique_ptr<rpc::Stream>> SimNetwork::connect(const std::string& from_node,
                                                         const std::string& host,
                                                         std::uint16_t port) {
  auto ps = find_port(host, port);
  if (!ps) {
    return unavailable_error("connection refused: " + host + ":" + std::to_string(port));
  }
  // The handshake needs both directions; a directed partition either way
  // refuses the connect (the SYN or the SYN-ACK never lands).
  if (partitioned(from_node, host) || partitioned(host, from_node)) {
    return unavailable_error("connection refused (partitioned): " + from_node + "->" + host);
  }

  auto client = std::make_shared<Endpoint>();
  auto server = std::make_shared<Endpoint>();
  const std::uint64_t id = next_conn_id_++;
  client->conn_id = server->conn_id = id;
  client->node = from_node;
  client->peer_node = host;
  server->node = host;
  server->peer_node = from_node;
  client->peer = server;
  server->peer = client;
  endpoints_.push_back(client);
  endpoints_.push_back(server);
  ++connects_;

  // The connection reaches the listener after one link latency; data chunks
  // written meanwhile are floored behind it.
  const SimTime arrival = now() + sample_latency();
  server->arrival_floor = arrival;
  trace_line("t=" + std::to_string(now()) + " conn#" + std::to_string(id) + " connect " +
             from_node + "->" + host + ":" + std::to_string(port));
  std::weak_ptr<PortState> weak_ps = ps;
  schedule(arrival, [this, weak_ps, server, from_node, host] {
    auto port_state = weak_ps.lock();
    if (!port_state || !port_state->open || partitioned(from_node, host)) {
      break_pair(server);
      return;
    }
    trace_line("t=" + std::to_string(now()) + " conn#" + std::to_string(server->conn_id) +
               " accepted on " + host);
    if (port_state->on_connection) {
      port_state->on_connection(std::make_unique<SimStream>(this, server));
    } else {
      port_state->pending.push_back(server);
    }
  });
  return std::unique_ptr<rpc::Stream>(new SimStream(this, client));
}

Result<std::unique_ptr<rpc::Listener>> SimNetwork::listen(const std::string& node,
                                                          std::uint16_t port) {
  if (port == 0) port = next_auto_port_++;
  auto key = std::make_pair(node, port);
  auto it = ports_.find(key);
  if (it != ports_.end() && it->second->open) {
    return invalid_argument_error("port already bound: " + node + ":" + std::to_string(port));
  }
  auto ps = std::make_shared<PortState>();
  ps->node = node;
  ps->port = port;
  ports_[key] = ps;
  return std::unique_ptr<rpc::Listener>(new SimListener(this, ps));
}

Result<std::unique_ptr<rpc::Stream>> SimNetwork::accept(const std::shared_ptr<PortState>& ps) {
  for (;;) {
    if (!ps->open) return unavailable_error("listener closed");
    if (!ps->pending.empty()) {
      auto ep = ps->pending.front();
      ps->pending.pop_front();
      return std::unique_ptr<rpc::Stream>(new SimStream(this, ep));
    }
    if (events_.empty()) {
      return unavailable_error("simulated accept would block forever (no pending connects)");
    }
    pump_one();
  }
}

Status SimNetwork::send(const std::shared_ptr<Endpoint>& from, const void* data,
                        std::size_t len) {
  if (!from || from->closed) return unavailable_error("write on closed stream");
  if (from->broken) return unavailable_error("connection reset (sim)");
  auto to = from->peer.lock();
  if (!to) return unavailable_error("connection reset (sim)");
  if (len == 0) return Status::ok();

  std::string chunk(static_cast<const char*>(data), len);
  // Fixed draw order (latency, drop, dup) keeps the rng stream — and so the
  // whole schedule — identical whether or not a given fault fires.
  const SimDuration latency = sample_latency();
  const bool drop = rng_.bernoulli(link_.drop_prob);
  const bool dup = rng_.bernoulli(link_.dup_prob);
  const SimTime arrival = std::max(to->arrival_floor, now() + latency);
  to->arrival_floor = arrival;

  if (drop) {
    // A lost segment on a no-retransmit reliable stream kills the
    // connection at the instant the bytes should have landed.
    ++drops_;
    trace_line("t=" + std::to_string(now()) + " conn#" + std::to_string(from->conn_id) +
               " drop " + fmt_bytes(len) + " (breaks at t=" + std::to_string(arrival) + ")");
    schedule(arrival, [this, to] { break_pair(to); });
    return Status::ok();  // the writer cannot see the loss yet
  }

  trace_line("t=" + std::to_string(now()) + " conn#" + std::to_string(from->conn_id) + " send " +
             from->node + "->" + to->node + " " + fmt_bytes(len) + " arrives t=" +
             std::to_string(arrival));
  schedule(arrival, [this, to, chunk] { deliver(to, chunk, false); });
  if (dup) {
    ++dups_;
    const SimTime dup_at = std::max(to->arrival_floor, arrival + 1 + sample_latency());
    to->arrival_floor = dup_at;
    schedule(dup_at, [this, to, chunk] { deliver(to, chunk, true); });
  }
  return Status::ok();
}

Result<std::size_t> SimNetwork::read_some(const std::shared_ptr<Endpoint>& ep, void* buf,
                                          std::size_t len) {
  if (!ep || ep->closed) return unavailable_error("read on closed stream");
  const SimTime deadline =
      ep->recv_timeout_ms > 0 ? now() + static_cast<SimTime>(ep->recv_timeout_ms) * 1000 : -1;
  for (;;) {
    if (!ep->rbuf.empty()) {
      const std::size_t n = std::min(len, ep->rbuf.size());
      std::memcpy(buf, ep->rbuf.data(), n);
      ep->rbuf.erase(0, n);
      return n;
    }
    if (ep->broken) return unavailable_error("connection reset (sim)");
    if (ep->eof) return static_cast<std::size_t>(0);
    if (ep->closed) return unavailable_error("read on closed stream");
    if (events_.empty() || (deadline >= 0 && events_.top().at > deadline)) {
      if (deadline >= 0) {
        // Nothing can arrive before the receive timeout: virtual time jumps
        // straight to the deadline. This is where blocked reads "wait".
        clock_.advance_to(deadline);
        return deadline_exceeded_error("simulated recv timeout");
      }
      return unavailable_error(
          "simulated read would block forever (no pending deliveries, no recv timeout)");
    }
    pump_one();
  }
}

bool SimNetwork::endpoint_healthy(const Endpoint& ep) const {
  // Mirrors the TCP MSG_PEEK probe: healthy = open, quiet, no unread bytes.
  return !ep.closed && !ep.broken && !ep.eof && ep.rbuf.empty();
}

void SimNetwork::shutdown_endpoint(const std::shared_ptr<Endpoint>& ep) {
  if (!ep || ep->closed || ep->broken) return;
  // Both directions go down: this side reads EOF immediately, the peer sees
  // EOF after one link latency.
  ep->eof = true;
  if (auto peer = ep->peer.lock()) {
    const SimTime at = std::max(peer->arrival_floor, now() + sample_latency());
    peer->arrival_floor = at;
    std::weak_ptr<Endpoint> weak_peer = peer;
    schedule(at, [this, weak_peer] {
      if (auto p = weak_peer.lock()) deliver_fin(p);
    });
  }
}

void SimNetwork::close_endpoint(const std::shared_ptr<Endpoint>& ep) {
  if (!ep || ep->closed) return;
  ep->closed = true;
  ep->on_readable = nullptr;
  ep->rbuf.clear();
  if (!ep->broken) {
    if (auto peer = ep->peer.lock()) {
      const SimTime at = std::max(peer->arrival_floor, now() + sample_latency());
      peer->arrival_floor = at;
      std::weak_ptr<Endpoint> weak_peer = peer;
      schedule(at, [this, weak_peer] {
        if (auto p = weak_peer.lock()) deliver_fin(p);
      });
    }
  }
}

// -- Internals ---------------------------------------------------------------

void SimNetwork::schedule(SimTime at, std::function<void()> fn) {
  events_.push(Event{std::max(at, now()), next_seq_++, std::move(fn)});
}

void SimNetwork::pump_one() {
  // priority_queue::top is const; the event is copied cheaply (shared_ptr
  // captures) and popped before firing so re-entrant pumps see a consistent
  // heap.
  Event ev = events_.top();
  events_.pop();
  clock_.advance_to(ev.at);
  ++events_fired_;
  ev.fn();
}

void SimNetwork::deliver(const std::shared_ptr<Endpoint>& to, const std::string& chunk,
                         bool is_dup) {
  if (to->closed || to->broken) return;
  if (partitioned(to->peer_node, to->node)) {
    ++blackholes_;
    trace_line("t=" + std::to_string(now()) + " conn#" + std::to_string(to->conn_id) +
               " blackhole " + fmt_bytes(chunk.size()) + " (" + to->peer_node + "->" + to->node +
               ")");
    return;
  }
  ++deliveries_;
  to->rbuf += chunk;
  trace_line("t=" + std::to_string(now()) + " conn#" + std::to_string(to->conn_id) +
             (is_dup ? " deliver-dup " : " deliver ") + fmt_bytes(chunk.size()) + " to " +
             to->node);
  fire_readable(to);
}

void SimNetwork::deliver_fin(const std::shared_ptr<Endpoint>& to) {
  if (to->closed || to->broken || to->eof) return;
  // A FIN travels in-band; a partition blackholes it too (the peer just
  // never learns, and times out).
  if (partitioned(to->peer_node, to->node)) {
    ++blackholes_;
    return;
  }
  to->eof = true;
  trace_line("t=" + std::to_string(now()) + " conn#" + std::to_string(to->conn_id) + " eof at " +
             to->node);
  fire_readable(to);
}

void SimNetwork::break_pair(const std::shared_ptr<Endpoint>& ep) {
  auto peer = ep->peer.lock();
  for (const auto& side : {ep, peer}) {
    if (!side || side->broken) continue;
    side->broken = true;
    side->rbuf.clear();
    trace_line("t=" + std::to_string(now()) + " conn#" + std::to_string(side->conn_id) +
               " reset at " + side->node);
    fire_readable(side);
  }
}

void SimNetwork::fire_readable(const std::shared_ptr<Endpoint>& ep) {
  if (!ep->on_readable || ep->in_handler) return;
  ep->in_handler = true;
  // The callback may close the stream (clearing on_readable) or pump further
  // events re-entrantly; the shared_ptr keeps the endpoint alive throughout.
  auto cb = ep->on_readable;
  cb();
  ep->in_handler = false;
}

SimDuration SimNetwork::sample_latency() {
  SimDuration lat = link_.base_latency_us;
  if (link_.jitter_us > 0) lat += rng_.uniform_int(0, link_.jitter_us);
  if (link_.reorder_window_us > 0) lat += rng_.uniform_int(0, link_.reorder_window_us);
  return lat;
}

void SimNetwork::trace_line(const std::string& line) {
  if (trace_enabled_) trace_.push_back(line);
}

std::shared_ptr<SimNetwork::PortState> SimNetwork::find_port(const std::string& node,
                                                             std::uint16_t port) {
  auto it = ports_.find({node, port});
  if (it == ports_.end() || !it->second->open) return nullptr;
  return it->second;
}

}  // namespace gae::dst
