// An event-driven RPC server for the simulated network: serves a
// rpc::Dispatcher over SimNetwork connections with no acceptor thread and no
// worker pool. Connections arrive by push (SimNetwork::listen_push) and each
// delivery drives the shared per-request pipeline (rpc_dispatch_request et
// al from rpc/server.h) synchronously — the whole server is a set of
// callbacks on the simulation's single thread.
//
// Semantics match RpcServer where it matters to clients: same framing, same
// fault encoding, same admission 503s, same keep-alive reuse. What it drops
// is the concurrency model (fig-6 worker-pool queueing) — DST explores
// message interleavings, not thread interleavings.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>

#include "common/admission.h"
#include "common/status.h"
#include "dst/simnet.h"
#include "rpc/server.h"

namespace gae::dst {

struct SimHostOptions {
  std::uint16_t port = 0;  // 0 = auto-assigned by the network
  /// Receive timeout for partially delivered requests (virtual ms): a read
  /// mid-request pumps the network at most this far before giving up.
  int recv_timeout_ms = 5'000;
  std::size_t max_header_bytes = 1u << 20;
  std::size_t max_body_bytes = 64u << 20;
  /// Per-request admission control (same contract as ServerOptions).
  AdmissionController* admission = nullptr;
};

class SimHost {
 public:
  /// `node` is the simulated host name peers dial. The dispatcher must
  /// outlive the host.
  SimHost(SimNetwork& net, std::string node, std::shared_ptr<rpc::Dispatcher> dispatcher,
          SimHostOptions options = {});
  ~SimHost();

  SimHost(const SimHost&) = delete;
  SimHost& operator=(const SimHost&) = delete;

  /// Binds the port and starts taking connections.
  Status start();

  /// Closes the port and every live connection. Idempotent. A stopped host
  /// models a killed process (restart by constructing a new SimHost).
  void stop();

  const std::string& node() const { return node_; }
  std::uint16_t port() const { return options_.port; }
  bool running() const { return running_; }

  std::uint64_t requests_served() const { return requests_; }
  std::uint64_t requests_shed() const { return shed_; }

 private:
  struct Conn {
    std::unique_ptr<SimStream> stream;
    bool in_service = false;
  };

  void on_connection(std::unique_ptr<SimStream> stream);
  void service_conn(Conn* conn);

  SimNetwork& net_;
  std::string node_;
  std::shared_ptr<rpc::Dispatcher> dispatcher_;
  SimHostOptions options_;
  bool running_ = false;
  std::list<Conn> conns_;
  std::uint64_t requests_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace gae::dst
