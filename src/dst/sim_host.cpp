#include "dst/sim_host.h"

#include <utility>

#include "rpc/deadline.h"
#include "rpc/http.h"

namespace gae::dst {

SimHost::SimHost(SimNetwork& net, std::string node, std::shared_ptr<rpc::Dispatcher> dispatcher,
                 SimHostOptions options)
    : net_(net), node_(std::move(node)), dispatcher_(std::move(dispatcher)),
      options_(options) {}

SimHost::~SimHost() { stop(); }

Status SimHost::start() {
  if (running_) return Status::ok();
  auto bound = net_.listen_push(node_, options_.port, [this](std::unique_ptr<SimStream> stream) {
    on_connection(std::move(stream));
  });
  if (!bound.is_ok()) return bound.status();
  options_.port = bound.value();
  running_ = true;
  return Status::ok();
}

void SimHost::stop() {
  if (!running_) return;
  running_ = false;
  net_.close_port(node_, options_.port);
  conns_.clear();  // destroys streams -> closes endpoints
}

void SimHost::on_connection(std::unique_ptr<SimStream> stream) {
  if (!running_) return;
  stream->set_recv_timeout_ms(options_.recv_timeout_ms);
  conns_.emplace_back();
  Conn* conn = &conns_.back();
  conn->stream = std::move(stream);
  conn->stream->set_on_readable([this, conn] { service_conn(conn); });
}

void SimHost::service_conn(Conn* conn) {
  // A handler mid-request pumps the network re-entrantly; further
  // deliveries to this connection must only append bytes, not start a
  // second handler.
  if (conn->in_service) return;
  conn->in_service = true;

  const rpc::http::ReadLimits limits{options_.max_header_bytes, options_.max_body_bytes};
  bool close_conn = false;
  while (running_ && !close_conn && conn->stream->has_buffered()) {
    auto req = rpc::http::read_request(*conn->stream, limits);
    if (!req.is_ok()) {
      // Clean close, reset, garbage, or a request whose tail never arrived
      // before the receive timeout: the connection is done either way.
      close_conn = true;
      break;
    }
    const std::int64_t picked_up_us = rpc::steady_now_us();
    rpc::CallContext ctx = rpc::rpc_context_from_request(req.value(), picked_up_us, 0);
    const bool keep = req.value().keep_alive();

    rpc::http::Response resp;
    if (options_.admission != nullptr && !options_.admission->try_admit(ctx.tier)) {
      ++shed_;
      resp = rpc::rpc_shed_response(rpc::rpc_request_is_json(req.value()));
    } else {
      const bool holds_ticket = options_.admission != nullptr;
      resp = rpc::rpc_dispatch_request(
          req.value(), ctx,
          [this](const std::string& method, const rpc::Array& params,
                 const rpc::CallContext& call_ctx) {
            ++requests_;
            return dispatcher_->dispatch(method, params, call_ctx);
          });
      if (holds_ticket) {
        options_.admission->on_sample(
            static_cast<std::uint64_t>(rpc::steady_now_us() - picked_up_us),
            resp.status_code >= 500);
        options_.admission->release();
      }
    }
    if (!rpc::http::write_response(*conn->stream, resp, keep).is_ok() || !keep) close_conn = true;
  }
  if (!close_conn && conn->stream->peer_gone()) close_conn = true;

  if (close_conn) {
    for (auto it = conns_.begin(); it != conns_.end(); ++it) {
      if (&*it == conn) {
        conns_.erase(it);  // destroys the stream; conn is dangling from here
        return;
      }
    }
    return;
  }
  conn->in_service = false;
}

}  // namespace gae::dst
