#include "dst/cluster.h"

#include <utility>

#include "estimators/history.h"
#include "estimators/rpc_binding.h"
#include "estimators/transfer_estimator.h"
#include "exec/job.h"
#include "jobmon/rpc_binding.h"
#include "rpc/deadline.h"
#include "sim/load.h"
#include "steering/rpc_binding.h"

namespace gae::dst {

namespace {

// Detector cadence: generous relative to the tick so a partitioned client
// read (which burns virtual time inside one tick) does not starve a live
// primary of heartbeats and trigger spurious failovers.
constexpr int kDeadAfterMissed = 30;

clarens::HostOptions open_host() {
  clarens::HostOptions options;
  options.require_auth = false;
  return options;
}

clarens::RegistryOptions registry_options(SimDuration ttl) {
  clarens::RegistryOptions options;
  options.default_ttl = ttl;
  return options;
}

supervision::FailureDetectorOptions detector_options(SimDuration tick) {
  supervision::FailureDetectorOptions options;
  options.heartbeat_interval = tick;
  options.suspect_after_missed = kDeadAfterMissed / 2;
  options.dead_after_missed = kDeadAfterMissed;
  return options;
}

supervision::SupervisorOptions supervisor_options() {
  supervision::SupervisorOptions options;
  options.restart_backoff = RetryPolicy{/*max_attempts=*/1000, /*initial_backoff_ms=*/25,
                                        /*backoff_multiplier=*/1.5, /*max_backoff_ms=*/200,
                                        /*jitter_fraction=*/0.0, /*jitter_seed=*/1};
  return options;
}

const std::vector<std::string>& other_nodes() {
  static const std::vector<std::string> nodes = {"jobmon-b", "estimator-1", "steering-1",
                                                 "client-1", "arbiter"};
  return nodes;
}

}  // namespace

std::string Action::describe() const {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kKillPrimary: return "kill jobmon-a";
    case Kind::kRestartPrimary: return "restart jobmon-a";
    case Kind::kPartitionPrimaryStandby: return "partition jobmon-a <-> jobmon-b";
    case Kind::kPartitionPrimaryArbiter: return "partition jobmon-a <-> arbiter";
    case Kind::kPartitionClientPrimary: return "partition client-1 <-> primary";
    case Kind::kHealAll: return "heal all partitions";
    case Kind::kSkewPrimaryClock:
      return "skew jobmon-a clock by " + std::to_string(amount_us) + "us";
    case Kind::kRotStandbyWalByte:
      return "bit-rot standby wal byte " + std::to_string(offset);
  }
  return "unknown";
}

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      clock_(/*start=*/1'000'000),
      net_(clock_, options.seed),
      rng_(Rng(options.seed).fork("cluster")),
      clock_a_(clock_),
      clock_b_(clock_),
      clock_est_(clock_),
      clock_steer_(clock_),
      registry_("arbiter", &clock_, registry_options(kDeadAfterMissed * options.tick)),
      detector_(clock_, detector_options(options.tick)),
      supervisor_(clock_, supervisor_options()),
      store_b_(&store_b_inner_),
      health_b_("jobmon-b", &metrics_),
      replica_b_("jobmon", &store_b_),
      store_a_(&store_a_inner_),
      health_a_("jobmon-a", &metrics_),
      role_a_(std::make_shared<ha::PrimaryRole>()),
      role_b_(std::make_shared<ha::PrimaryRole>()),
      admission_a_(clock_),
      admission_b_(clock_),
      host_a_("jobmon-a", clock_a_, open_host()),
      host_b_("jobmon-b", clock_b_, open_host()),
      host_est_("estimator-1", clock_est_, open_host()),
      host_steer_("steering-1", clock_steer_, open_host()),
      oracle_(nullptr, nullptr) {
  net_.link() = options_.link;
  net_.set_trace_enabled(options_.trace);
  // All deadline math (client budgets, cache TTLs, admission CoDel) runs on
  // virtual time for the cluster's lifetime.
  rpc::set_steady_clock_override(&clock_);

  build_grid();
  build_jobmon_pair();
  build_satellite_services();
  build_clients();
}

Cluster::~Cluster() {
  // Tear hosts down before the network/dispatchers they reference.
  shost_a_.reset();
  shost_b_.reset();
  shost_est_.reset();
  shost_steer_.reset();
  rpc::set_steady_clock_override(nullptr);
}

void Cluster::build_grid() {
  grid_.add_site("cern").add_node("cern-0", 1.0, std::make_shared<sim::ConstantLoad>(0.85));
  grid_.site("cern").add_node("cern-1", 1.0, std::make_shared<sim::ConstantLoad>(0.85));
  grid_.add_site("caltech").add_node("ct-0", 1.0, nullptr);
  grid_.add_site("nust").add_node("nu-0", 0.8, nullptr);
  grid_.set_default_link({100e6, from_millis(30)});

  for (const auto& name : grid_.site_names()) {
    execs_[name] = std::make_unique<exec::ExecutionService>(sim_, grid_, name);
    runtime_est_[name] = std::make_shared<estimators::RuntimeEstimator>(
        std::make_shared<estimators::TaskHistoryStore>());
    recorders_.push_back(
        std::make_unique<estimators::SiteRuntimeRecorder>(*execs_[name], runtime_est_[name]));
  }
  estimate_db_ = std::make_shared<estimators::EstimateDatabase>();
  scheduler_ = std::make_unique<sphinx::SphinxScheduler>(sim_, grid_, &monitoring_, estimate_db_);
  for (const auto& name : grid_.site_names()) {
    scheduler_->add_site(name, {execs_[name].get(), runtime_est_[name]});
  }

  // Seed runtime history so the estimator plane has something to say.
  const std::map<std::string, std::string> attrs = {
      {"executable", "reco"}, {"login", "alice"}, {"queue", "q"}, {"nodes", "1"}};
  for (auto& [name, est] : runtime_est_) {
    (void)name;
    for (int i = 0; i < 5; ++i) est->record(attrs, 20.0, 0);
  }
}

void Cluster::build_jobmon_pair() {
  // Primary lease + roles.
  const SimDuration ttl = kDeadAfterMissed * options_.tick;
  auto lease = registry_.acquire_primary("jobmon", ttl);
  lease_a_ = lease.value();
  role_a_->make_primary(lease_a_.epoch);

  // a -> b sync WAL shipping over the simulated network.
  rpc::ClientOptions ship_opts;
  ship_opts.clock = &clock_;
  ship_opts.transport = &net_.transport_for("jobmon-a");
  ship_opts.sleep_ms = [this](int ms) { net_.run_for(static_cast<SimDuration>(ms) * 1000); };
  ship_opts.default_call.retry =
      RetryPolicy{/*max_attempts=*/2, /*initial_backoff_ms=*/20, /*backoff_multiplier=*/2.0,
                  /*max_backoff_ms=*/100, /*jitter_fraction=*/0.0, /*jitter_seed=*/7};
  ship_client_ = std::make_unique<rpc::RpcClient>(
      std::vector<rpc::Endpoint>{{"jobmon-b", kJobmonPort}}, rpc::Protocol::kXmlRpc, ship_opts);
  ship_transport_ = std::make_unique<ha::RpcShipperTransport>(ship_client_.get(),
                                                              /*deadline_ms=*/800);
  ha::ShipperOptions shipper_options;
  shipper_options.mode = ha::ReplicationMode::kSync;
  shipper_options.leader_host = "jobmon-a";
  shipper_options.leader_port = kJobmonPort;
  shipper_options.metrics = &metrics_;
  shipper_ = std::make_unique<ha::LogShipper>("jobmon", shipper_options);
  shipper_->add_standby(ship_transport_.get());
  shipper_->set_epoch(lease_a_.epoch);
  shipper_->set_on_deposed(
      [this] { role_a_->depose(ha::format_leader_hint("jobmon-b", kJobmonPort)); });

  replicated_a_ = std::make_unique<ha::ReplicatedWalStorage>(&store_a_, shipper_.get());
  wal_a_ = std::make_unique<Wal>(replicated_a_.get());
  jms_a_ = std::make_unique<jobmon::JobMonitoringService>(clock_a_, &monitoring_, estimate_db_,
                                                          wal_a_.get());
  jms_a_->mutable_db().attach_health(&health_a_);
  for (const auto& name : grid_.site_names()) jms_a_->attach_site(name, execs_[name].get());
  jms_a_->add_update_listener([this](const std::string& task_id, exec::TaskState) {
    on_acked_update(jms_a_.get(), &health_a_, task_id);
  });

  // Standby: ha.* apply plane plus a cold JMS over the replica's log.
  standbys_.add(&replica_b_);
  ha::register_ha_methods(host_b_, standbys_);
  wal_b_ = std::make_unique<Wal>(&store_b_);
  jms_b_ = std::make_unique<jobmon::JobMonitoringService>(clock_b_, &monitoring_, estimate_db_,
                                                          wal_b_.get());
  jms_b_->mutable_db().attach_health(&health_b_);
  jms_b_->add_update_listener([this](const std::string& task_id, exec::TaskState) {
    if (promoted_) on_acked_update(jms_b_.get(), &health_b_, task_id);
  });

  jobmon::register_jobmon_methods(host_a_, *jms_a_, nullptr, &metrics_, &admission_a_,
                                  /*staleness_ms=*/2000, &cache_a_);
  jobmon::register_jobmon_methods(host_b_, *jms_b_, nullptr, &metrics_, &admission_b_,
                                  /*staleness_ms=*/2000, &cache_b_);

  // Supervision: detector watches the primary's beats; a dead verdict runs
  // the promotion recipe until the standby wins the lease.
  detector_.watch("jobmon-primary");
  detector_.heartbeat("jobmon-primary");
  supervisor_.attach(detector_);
  ha::PromotionOptions promotion;
  promotion.registry = &registry_;
  promotion.service = "jobmon";
  promotion.self.name = "jobmon";
  promotion.self.host = "jobmon-b";
  promotion.self.port = kJobmonPort;
  promotion.lease_ttl = ttl;
  promotion.replica = &replica_b_;
  promotion.replay = [this] { return jms_b_->mutable_db().recover(); };
  promotion.role = role_b_;
  promotion.drop_caches = [this] { cache_b_.invalidate_all(); };
  promotion.metrics = &metrics_;
  promotion.clock = &clock_;
  supervisor_.manage(ha::make_promotion_recipe(
      "jobmon-primary", promotion, [this](const ha::Promotion& p) {
        lease_b_ = p.lease;
        on_promoted();
      }));

  SimHostOptions host_opts;
  host_opts.port = kJobmonPort;
  host_opts.recv_timeout_ms = 1000;
  host_opts.admission = &admission_a_;
  shost_a_ = std::make_unique<SimHost>(net_, "jobmon-a", host_a_.dispatcher_ptr(), host_opts);
  host_opts.admission = &admission_b_;
  shost_b_ = std::make_unique<SimHost>(net_, "jobmon-b", host_b_.dispatcher_ptr(), host_opts);
  shost_a_->start();
  shost_b_->start();
}

void Cluster::build_satellite_services() {
  estimator_svc_ = std::make_unique<estimators::EstimatorService>(
      estimate_db_, std::make_unique<estimators::FileTransferEstimator>(grid_),
      estimators::QueueTimeOptions{});
  for (const auto& name : grid_.site_names()) {
    estimator_svc_->add_site(name, runtime_est_[name], execs_[name].get());
  }
  estimators::register_estimator_methods(host_est_, *estimator_svc_, nullptr, &metrics_);

  steering::SteeringService::Deps deps;
  deps.sim = &sim_;
  deps.scheduler = scheduler_.get();
  deps.jobmon = jms_a_.get();
  for (const auto& name : grid_.site_names()) deps.services[name] = execs_[name].get();
  deps.monitoring = &monitoring_;
  steering::SteeringOptions steer_opts;
  steer_opts.auto_steer = true;
  steering_svc_ = std::make_unique<steering::SteeringService>(deps, steer_opts);
  steering::register_steering_methods(host_steer_, *steering_svc_, nullptr, &metrics_);

  SimHostOptions host_opts;
  host_opts.recv_timeout_ms = 1000;
  host_opts.port = kEstimatorPort;
  shost_est_ = std::make_unique<SimHost>(net_, "estimator-1", host_est_.dispatcher_ptr(),
                                         host_opts);
  host_opts.port = kSteeringPort;
  shost_steer_ = std::make_unique<SimHost>(net_, "steering-1", host_steer_.dispatcher_ptr(),
                                           host_opts);
  shost_est_->start();
  shost_steer_->start();
}

void Cluster::build_clients() {
  rpc::ClientOptions client_opts;
  client_opts.clock = &clock_;
  client_opts.transport = &net_.transport_for("client-1");
  client_opts.sleep_ms = [this](int ms) { net_.run_for(static_cast<SimDuration>(ms) * 1000); };
  client_opts.default_call.deadline_ms = 400;
  client_opts.default_call.retry =
      RetryPolicy{/*max_attempts=*/2, /*initial_backoff_ms=*/10, /*backoff_multiplier=*/2.0,
                  /*max_backoff_ms=*/50, /*jitter_fraction=*/0.0, /*jitter_seed=*/11};

  jobmon_client_ = std::make_unique<rpc::RpcClient>(
      std::vector<rpc::Endpoint>{{"jobmon-a", kJobmonPort}, {"jobmon-b", kJobmonPort}},
      rpc::Protocol::kXmlRpc, client_opts);
  steering_client_ = std::make_unique<rpc::RpcClient>(
      std::vector<rpc::Endpoint>{{"steering-1", kSteeringPort}}, rpc::Protocol::kJsonRpc,
      client_opts);
  estimator_client_ = std::make_unique<rpc::RpcClient>(
      std::vector<rpc::Endpoint>{{"estimator-1", kEstimatorPort}}, rpc::Protocol::kXmlRpc,
      client_opts);
}

void Cluster::on_acked_update(jobmon::JobMonitoringService* jms, storage::StoreHealth* health,
                              const std::string& task_id) {
  // A write counts as acknowledged only if the store is still healthy after
  // it: a failed append or a failed sync ship latches the store read-only
  // before control returns here, so un-replicated writes never enter the
  // oracle.
  if (!health->writable()) return;
  auto rec = jms->db().get(task_id);
  if (!rec.is_ok()) return;
  oracle_.update(task_id, rec.value().info, rec.value().site, clock_.now());
  ++writes_acked_;
}

void Cluster::on_promoted() {
  promoted_ = true;
  // The promoted standby starts collecting live task state itself.
  for (const auto& name : grid_.site_names()) jms_b_->attach_site(name, execs_[name].get());
}

void Cluster::apply_kill_partitions() {
  for (const auto& peer : other_nodes()) net_.partition_both("jobmon-a", peer);
}

void Cluster::apply(const Action& action) {
  action_log_.push_back("t=" + std::to_string(now()) + " " + action.describe());
  switch (action.kind) {
    case Action::Kind::kNone:
      break;
    case Action::Kind::kKillPrimary:
      if (primary_killed_) break;
      primary_killed_ = true;
      shost_a_->stop();
      net_.kill_node("jobmon-a");
      // A dead process neither ships nor heartbeats: partition it from
      // everything until a restart.
      apply_kill_partitions();
      break;
    case Action::Kind::kRestartPrimary: {
      if (!primary_killed_) break;
      primary_killed_ = false;
      for (const auto& peer : other_nodes()) net_.heal_both("jobmon-a", peer);
      // A clean restart replays the local log (dropping memory-only state);
      // a latched store skips replay and stays degraded, as on real media.
      if (health_a_.writable()) (void)jms_a_->mutable_db().recover();
      SimHostOptions host_opts;
      host_opts.port = kJobmonPort;
      host_opts.recv_timeout_ms = 1000;
      host_opts.admission = &admission_a_;
      shost_a_ = std::make_unique<SimHost>(net_, "jobmon-a", host_a_.dispatcher_ptr(), host_opts);
      shost_a_->start();
      break;
    }
    case Action::Kind::kPartitionPrimaryStandby:
      net_.partition_both("jobmon-a", "jobmon-b");
      break;
    case Action::Kind::kPartitionPrimaryArbiter:
      net_.partition_both("jobmon-a", "arbiter");
      break;
    case Action::Kind::kPartitionClientPrimary:
      net_.partition_both("client-1", primary_node());
      break;
    case Action::Kind::kHealAll:
      net_.heal_all();
      if (primary_killed_) apply_kill_partitions();
      break;
    case Action::Kind::kSkewPrimaryClock:
      clock_a_.set_offset(clock_a_.offset() + action.amount_us);
      break;
    case Action::Kind::kRotStandbyWalByte:
      store_b_.rot_byte(action.offset);
      break;
  }
}

void Cluster::maybe_submit() {
  exec::TaskSpec spec;
  spec.id = "t" + std::to_string(next_task_++);
  spec.owner = "alice";
  spec.work_seconds = rng_.uniform(0.5, 20.0);
  spec.attributes = {
      {"executable", "reco"}, {"login", "alice"}, {"queue", "q"}, {"nodes", "1"}};
  sphinx::JobDescription job;
  job.id = "job-" + spec.id;
  job.owner = "alice";
  job.tasks.push_back({spec, {}});
  if (scheduler_->submit(job).is_ok()) task_ids_.push_back(spec.id);
}

void Cluster::do_reads() {
  if (task_ids_.empty()) return;
  for (int i = 0; i < options_.reads_per_tick; ++i) {
    const std::string& id = rng_.pick(task_ids_);
    // The networked read exercises client failover/redirect/retry; its
    // answer may be legitimately stale (served by a fenced-but-alive
    // replica), so it feeds counters, not invariants.
    auto over_wire = jobmon_client_->call("jobmon.status", {rpc::Value(id)});
    if (over_wire.is_ok()) {
      ++reads_ok_;
    } else {
      ++reads_err_;
    }

    // I4 (cache staleness) is a property of one host's cache layer: at a
    // single instant, the dispatcher path (cache-wrapped binding) must
    // agree with the service's own answer — every job-state transition
    // invalidates synchronously, so a cached value older than the current
    // state is a bug, not a staleness allowance.
    if (primary_killed_ && !promoted_) continue;
    ++invariant_checks_;
    auto cached = primary_host().call("jobmon.status", {rpc::Value(id)});
    auto direct = primary_jms()->status(id);
    if (cached.is_ok() && direct.is_ok() && cached.value().as_string() != direct.value()) {
      violation("jobmon-cache-staleness", "task " + id + ": cache path says '" +
                                              cached.value().as_string() +
                                              "' but service truth is '" + direct.value() + "'");
    }
  }
  auto estimate = estimator_client_->call("estimator.sites", {});
  if (estimate.is_ok()) ++estimates_ok_;
}

void Cluster::maybe_steer() {
  if (task_ids_.empty() || !rng_.bernoulli(0.3)) return;
  const std::string& id = rng_.pick(task_ids_);
  const char* op = rng_.bernoulli(0.5) ? "steering.pause" : "steering.resume";
  // Steering a task that already finished (or was never watched) fails
  // NOT_FOUND; the workload only cares that the command plane stays up.
  if (steering_client_->call(op, {rpc::Value(id)}).is_ok()) ++steer_ops_;
}

void Cluster::heartbeat_and_renew() {
  if (!primary_killed_ && !net_.partitioned("jobmon-a", "arbiter")) {
    detector_.heartbeat("jobmon-primary");
    (void)registry_.renew_primary("jobmon", lease_a_.lease_id);  // fails once deposed
  }
  if (promoted_ && !net_.partitioned("jobmon-b", "arbiter")) {
    (void)registry_.renew_primary("jobmon", lease_b_.lease_id);
  }
}

void Cluster::advance(SimDuration dt) {
  net_.run_for(dt);
  // Slave the execution grid's discrete-event world to the master clock.
  sim_.run_until(clock_.now());
}

void Cluster::tick() {
  maybe_submit();
  do_reads();
  maybe_steer();
  advance(options_.tick / 2);
  heartbeat_and_renew();
  detector_.check();
  supervisor_.tick();
  registry_.sweep();
  advance(options_.tick - options_.tick / 2);
  check_invariants();
}

void Cluster::violation(const std::string& invariant, const std::string& detail) {
  violations_.push_back("t=" + std::to_string(now()) + " [" + invariant + "] " + detail);
}

void Cluster::check_invariants() {
  ++invariant_checks_;

  // I1: no *silent* acked-write loss. Every record the oracle acknowledged
  // must be present on the node currently serving as primary, at the same
  // or a later point of the task's life. Loss is tolerated only when the
  // storage layer detected damage and said so (latched read-only or
  // quarantined) — injected bit rot may legitimately destroy data, but it
  // must never do so while the store still claims to serve a trustworthy
  // view. A read-only store still answers reads, so it is still checked; a
  // quarantined one refuses them, which is detection, not silence.
  storage::StoreHealth* primary_health = promoted_ ? &health_b_ : &health_a_;
  if (!(primary_killed_ && !promoted_) && primary_health->readable()) {
    jobmon::JobMonitoringService* jms = primary_jms();
    for (const auto& orec : oracle_.all()) {
      const std::string& id = orec.info.spec.id;
      auto cur = jms->db().get(id);
      if (!cur.is_ok()) {
        violation("acked-write-loss", "acked task " + id + " missing from " + primary_node() +
                                          ": " + cur.status().message());
        continue;
      }
      const auto& cinfo = cur.value().info;
      if (exec::is_terminal(orec.info.state)) {
        if (cinfo.state != orec.info.state) {
          violation("acked-write-loss",
                    "task " + id + " acked terminal state " +
                        exec::task_state_name(orec.info.state) + " but " + primary_node() +
                        " has " + exec::task_state_name(cinfo.state));
        }
      } else if (cinfo.progress + 1e-9 < orec.info.progress) {
        violation("acked-write-loss",
                  "task " + id + " acked progress " + std::to_string(orec.info.progress) +
                      " but " + primary_node() + " regressed to " +
                      std::to_string(cinfo.progress));
      }
    }
  }

  // I2: at most one primary per fencing epoch.
  if (role_a_->is_primary() && role_b_->is_primary() && role_a_->epoch() == role_b_->epoch()) {
    violation("two-primaries",
              "jobmon-a and jobmon-b both primary in epoch " + std::to_string(role_a_->epoch()));
  }

  // I3: registry lease epochs are monotonic.
  const std::uint64_t epoch = registry_.primary_epoch("jobmon");
  if (epoch < last_epoch_seen_) {
    violation("lease-monotonicity", "primary epoch went backwards: " +
                                        std::to_string(last_epoch_seen_) + " -> " +
                                        std::to_string(epoch));
  }
  last_epoch_seen_ = epoch;

  // I5: admission control cannot deadlock — all tickets returned at every
  // tick boundary (the workload is synchronous), and the AIMD limit never
  // collapses to zero.
  for (auto* admission : {&admission_a_, &admission_b_}) {
    if (admission->in_flight() != 0) {
      violation("admission-deadlock",
                "tickets still held at tick boundary: " + std::to_string(admission->in_flight()));
    }
    if (admission->limit() == 0) {
      violation("admission-deadlock", "admission limit collapsed to zero");
    }
  }
}

}  // namespace gae::dst
