#include "dst/explore.h"

namespace gae::dst {

Action draw_action(Rng& rng) {
  Action action;
  const std::int64_t roll = rng.uniform_int(0, 99);
  if (roll < 20) {
    action.kind = Action::Kind::kKillPrimary;
  } else if (roll < 35) {
    action.kind = Action::Kind::kRestartPrimary;
  } else if (roll < 50) {
    action.kind = Action::Kind::kPartitionPrimaryStandby;
  } else if (roll < 60) {
    action.kind = Action::Kind::kPartitionPrimaryArbiter;
  } else if (roll < 70) {
    action.kind = Action::Kind::kPartitionClientPrimary;
  } else if (roll < 85) {
    action.kind = Action::Kind::kHealAll;
  } else if (roll < 95) {
    action.kind = Action::Kind::kSkewPrimaryClock;
    action.amount_us = rng.uniform_int(-100'000, 100'000);
  } else {
    action.kind = Action::Kind::kRotStandbyWalByte;
    action.offset = static_cast<std::size_t>(rng.uniform_int(0, 2000));
  }
  return action;
}

SeedResult run_seed(std::uint64_t seed, const ExploreOptions& options) {
  ClusterOptions cluster_options = options.cluster;
  cluster_options.seed = seed;
  Cluster cluster(cluster_options);

  // The schedule RNG is independent of the cluster's internal RNGs, so
  // changing the action distribution never perturbs network jitter for
  // unrelated seeds.
  Rng rng = Rng(seed).fork("schedule");
  for (int i = 0; i < options.ticks; ++i) {
    if (rng.bernoulli(options.action_prob)) cluster.apply(draw_action(rng));
    cluster.tick();
  }
  // Settle: heal everything and give a pending failover time to win the
  // lease, so the final checks interrogate whichever node ended up primary.
  cluster.apply({Action::Kind::kHealAll});
  for (int i = 0; i < options.settle_ticks; ++i) cluster.tick();

  SeedResult result;
  result.seed = seed;
  result.violations = cluster.violations();
  result.actions = cluster.action_log();
  result.ok = result.violations.empty();
  result.invariant_checks = cluster.invariant_checks();
  result.writes_acked = cluster.writes_acked();
  result.reads_ok = cluster.reads_ok();
  result.reads_err = cluster.reads_err();
  result.promoted = cluster.promoted();
  return result;
}

ExploreReport explore(std::uint64_t begin, std::uint64_t end,
                      const ExploreOptions& options) {
  ExploreReport report;
  for (std::uint64_t seed = begin; seed < end; ++seed) {
    SeedResult result = run_seed(seed, options);
    ++report.seeds_run;
    report.total_invariant_checks += result.invariant_checks;
    report.total_writes_acked += result.writes_acked;
    if (!result.ok) report.failures.push_back(std::move(result));
  }
  return report;
}

std::string format_failure(const SeedResult& result) {
  std::string out = "seed " + std::to_string(result.seed) + ": " +
                    std::to_string(result.violations.size()) + " violation(s)\n";
  out += "  schedule:\n";
  for (const auto& action : result.actions) out += "    " + action + "\n";
  out += "  violations:\n";
  for (const auto& violation : result.violations) out += "    " + violation + "\n";
  out += "  replay: dst_sweep --seed " + std::to_string(result.seed) + "\n";
  return out;
}

}  // namespace gae::dst
