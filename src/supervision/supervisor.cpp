#include "supervision/supervisor.h"

#include "common/log.h"

namespace gae::supervision {

void Supervisor::manage(SupervisedService service) {
  services_[service.name] = std::move(service);
}

void Supervisor::attach(FailureDetector& detector) {
  detector_ = &detector;
  detector.set_verdict_listener([this](const std::string& service, Liveness verdict) {
    if (verdict == Liveness::kDead) on_service_dead(service);
  });
}

void Supervisor::count(const char* what) {
  if (metrics_) metrics_->counter(std::string("supervision.") + what).inc();
}

void Supervisor::on_service_dead(const std::string& name) {
  if (!services_.count(name)) return;  // not ours to restart
  if (quarantined_.count(name)) return;  // parked until release()
  ++stats_.deaths_seen;
  count("deaths");
  if (pending_.count(name)) return;  // restart already scheduled
  Pending p;
  p.attempt = 1;
  p.next_at = clock_.now() + from_millis(options_.restart_backoff.backoff_ms(1));
  pending_[name] = p;
  publish_event(name, "restart_scheduled");
  GAE_LOG_INFO << "supervisor: " << name << " declared dead; restart scheduled";
}

std::size_t Supervisor::tick() {
  const SimTime now = clock_.now();
  std::size_t restarted = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.next_at > now) {
      ++it;
      continue;
    }
    const std::string& name = it->first;
    Pending& p = it->second;
    if (options_.crash_loop_restarts > 0) {
      auto& history = attempt_history_[name];
      while (!history.empty() &&
             now - history.front() > options_.crash_loop_window) {
        history.pop_front();
      }
      if (static_cast<int>(history.size()) >= options_.crash_loop_restarts) {
        // Crash loop: the recipe keeps running but the service keeps dying.
        // Park it — flapping forever burns the ensemble and hides the fault.
        quarantined_.insert(name);
        ++stats_.quarantined;
        count("quarantined");
        if (metrics_) {
          metrics_->counter("supervision." + name + ".quarantined").inc();
        }
        publish_event(name, "quarantined");
        GAE_LOG_ERROR << "supervisor: " << name << " crash-looping ("
                      << history.size() << " restarts inside "
                      << to_seconds(options_.crash_loop_window)
                      << "s); quarantined until release()";
        it = pending_.erase(it);
        continue;
      }
      history.push_back(now);
    }
    ++stats_.restart_attempts;
    count("restart_attempts");
    const Status s = services_[name].restart();
    if (s.is_ok()) {
      ++stats_.restarts_succeeded;
      count("restarts_succeeded");
      ++restarted;
      publish_event(name, "restarted");
      GAE_LOG_INFO << "supervisor: restarted " << name << " (attempt " << p.attempt
                   << ")";
      if (detector_) detector_->watch(name);  // fresh heartbeat baseline
      it = pending_.erase(it);
      continue;
    }
    ++stats_.restarts_failed;
    count("restarts_failed");
    GAE_LOG_WARN << "supervisor: restart of " << name << " failed (attempt "
                 << p.attempt << "): " << s.message();
    if (p.attempt >= options_.restart_backoff.max_attempts) {
      ++stats_.gave_up;
      count("gave_up");
      publish_event(name, "gave_up");
      GAE_LOG_ERROR << "supervisor: giving up on " << name << " after " << p.attempt
                    << " attempts";
      it = pending_.erase(it);
      continue;
    }
    ++p.attempt;
    p.next_at = now + from_millis(options_.restart_backoff.backoff_ms(p.attempt));
    ++it;
  }
  if (monitoring_) {
    monitoring_->publish("supervisor", "pending_restarts", now,
                         static_cast<double>(pending_.size()));
  }
  return restarted;
}

Status Supervisor::release(const std::string& name) {
  if (!quarantined_.erase(name)) {
    return not_found_error("not quarantined: " + name);
  }
  attempt_history_.erase(name);
  publish_event(name, "released");
  GAE_LOG_INFO << "supervisor: " << name << " released from quarantine";
  return Status::ok();
}

void Supervisor::publish_event(const std::string& service, const std::string& what) {
  if (!monitoring_) return;
  monitoring_->publish_event({clock_.now(), "supervisor", what, service});
}

}  // namespace gae::supervision
