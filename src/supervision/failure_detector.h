// Heartbeat-based failure detector (the liveness half of the ensemble
// supervision layer). Services — or the registry plumbing acting for them —
// call heartbeat(); check() counts how many intervals each watched service
// has gone silent and grades it alive / suspect / dead against a
// configurable suspicion threshold. Verdict transitions are published to the
// MonALISA repository (numeric liveness series per service plus a text
// event per transition) so operators watch ensemble health next to site
// load, and a listener hook feeds the Supervisor restarts.
//
// Clock-injected: under the simulator the detector is exact and
// deterministic; live deployments pass a WallClock.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/time_types.h"
#include "monalisa/repository.h"

namespace gae::supervision {

enum class Liveness { kAlive, kSuspect, kDead };

const char* liveness_name(Liveness l);

struct FailureDetectorOptions {
  /// Expected gap between heartbeats.
  SimDuration heartbeat_interval = from_seconds(5);
  /// Missed heartbeats before a service is suspected (grace for jitter).
  int suspect_after_missed = 1;
  /// Missed heartbeats before a service is declared dead.
  int dead_after_missed = 3;
  /// Consecutive check() passes that must independently grade a service dead
  /// before the verdict is published. A flapping service — one heartbeat
  /// squeaking through just as the deadline lapses — otherwise oscillates
  /// dead/alive and triggers spurious restarts (or, worse, spurious standby
  /// promotions). While debouncing, the published grade is suspect. 1 =
  /// declare on the first dead grade (the historical behaviour).
  int dead_debounce_checks = 1;
};

class FailureDetector {
 public:
  FailureDetector(const Clock& clock, FailureDetectorOptions options = {},
                  monalisa::Repository* monitoring = nullptr)
      : clock_(clock), options_(options), monitoring_(monitoring) {}

  /// Starts watching `service`; counts as a heartbeat (freshly started
  /// services are alive until they actually miss beats).
  void watch(const std::string& service);
  void forget(const std::string& service);

  /// Records a heartbeat at the current clock time.
  void heartbeat(const std::string& service);

  /// Current grade (computed against the clock; UNKNOWN names are dead).
  Liveness liveness(const std::string& service) const;

  /// Consecutive heartbeats missed as of now.
  int missed_heartbeats(const std::string& service) const;

  /// Re-grades every watched service, publishes liveness to MonALISA, and
  /// fires the verdict listener on transitions. Returns the services that
  /// just became dead (the Supervisor's restart feed).
  std::vector<std::string> check();

  /// Invoked from check() whenever a service's grade changes.
  using VerdictListener = std::function<void(const std::string& service, Liveness)>;
  void set_verdict_listener(VerdictListener listener) {
    on_verdict_ = std::move(listener);
  }

  std::size_t watched_count() const { return watched_.size(); }

 private:
  struct WatchState {
    SimTime last_heartbeat = 0;
    Liveness last_grade = Liveness::kAlive;
    /// Consecutive check() passes whose raw grade was dead (debounce state).
    int dead_streak = 0;
  };

  Liveness grade(const WatchState& w) const;

  const Clock& clock_;
  FailureDetectorOptions options_;
  monalisa::Repository* monitoring_;
  std::map<std::string, WatchState> watched_;
  VerdictListener on_verdict_;
};

}  // namespace gae::supervision
