#include "supervision/failure_detector.h"

#include "common/log.h"

namespace gae::supervision {

const char* liveness_name(Liveness l) {
  switch (l) {
    case Liveness::kAlive: return "alive";
    case Liveness::kSuspect: return "suspect";
    case Liveness::kDead: return "dead";
  }
  return "?";
}

namespace {
double liveness_metric(Liveness l) {
  switch (l) {
    case Liveness::kAlive: return 1.0;
    case Liveness::kSuspect: return 0.5;
    case Liveness::kDead: return 0.0;
  }
  return 0.0;
}
}  // namespace

void FailureDetector::watch(const std::string& service) {
  watched_[service] = WatchState{clock_.now(), Liveness::kAlive};
}

void FailureDetector::forget(const std::string& service) { watched_.erase(service); }

void FailureDetector::heartbeat(const std::string& service) {
  auto it = watched_.find(service);
  if (it == watched_.end()) {
    watch(service);
    return;
  }
  it->second.last_heartbeat = clock_.now();
  it->second.dead_streak = 0;  // any sign of life restarts the debounce
}

int FailureDetector::missed_heartbeats(const std::string& service) const {
  auto it = watched_.find(service);
  if (it == watched_.end()) return -1;
  if (options_.heartbeat_interval <= 0) return 0;
  const SimDuration silent = clock_.now() - it->second.last_heartbeat;
  return silent <= 0 ? 0 : static_cast<int>(silent / options_.heartbeat_interval);
}

Liveness FailureDetector::grade(const WatchState& w) const {
  if (options_.heartbeat_interval <= 0) return Liveness::kAlive;
  const SimDuration silent = clock_.now() - w.last_heartbeat;
  const int missed = silent <= 0 ? 0 : static_cast<int>(silent / options_.heartbeat_interval);
  if (missed >= options_.dead_after_missed) return Liveness::kDead;
  if (missed >= options_.suspect_after_missed) return Liveness::kSuspect;
  return Liveness::kAlive;
}

Liveness FailureDetector::liveness(const std::string& service) const {
  auto it = watched_.find(service);
  if (it == watched_.end()) return Liveness::kDead;
  const Liveness raw = grade(it->second);
  // Mirror check()'s debounce: death is published by check(), so a dead
  // grade that check() has not yet confirmed dead_debounce_checks times
  // reads as suspect here too.
  if (raw == Liveness::kDead &&
      it->second.dead_streak < options_.dead_debounce_checks) {
    return Liveness::kSuspect;
  }
  return raw;
}

std::vector<std::string> FailureDetector::check() {
  const SimTime now = clock_.now();
  std::vector<std::string> newly_dead;
  for (auto& [service, state] : watched_) {
    Liveness verdict = grade(state);
    if (verdict == Liveness::kDead) {
      ++state.dead_streak;
      if (state.dead_streak < options_.dead_debounce_checks) {
        verdict = Liveness::kSuspect;  // still debouncing
      }
    } else {
      state.dead_streak = 0;
    }
    if (monitoring_) {
      monitoring_->publish(service, "liveness", now, liveness_metric(verdict));
    }
    if (verdict == state.last_grade) continue;
    GAE_LOG_INFO << "failure detector: " << service << " "
                 << liveness_name(state.last_grade) << " -> " << liveness_name(verdict);
    if (monitoring_) {
      monitoring_->publish_event(
          {now, service, "liveness", std::string(liveness_name(verdict))});
    }
    if (verdict == Liveness::kDead) newly_dead.push_back(service);
    state.last_grade = verdict;
    if (on_verdict_) on_verdict_(service, verdict);
  }
  return newly_dead;
}

}  // namespace gae::supervision
