// Ensemble supervisor: owns restart recipes for the services of a GAE
// deployment and turns failure-detector death verdicts into supervised
// restarts with capped exponential backoff (reusing common::RetryPolicy for
// the schedule). A restart recipe is expected to rebuild the service,
// replay its durable state (common::Wal recover, steering journal), and
// re-register it with a fresh lease — after which the failure detector sees
// heartbeats again and the registry routes traffic back.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "common/clock.h"
#include "common/retry.h"
#include "common/status.h"
#include "monalisa/repository.h"
#include "supervision/failure_detector.h"
#include "telemetry/metrics.h"

namespace gae::supervision {

struct SupervisorOptions {
  /// Backoff schedule between restart attempts; max_attempts caps how often
  /// one death is retried before the supervisor gives up on the service.
  RetryPolicy restart_backoff{/*max_attempts=*/5, /*initial_backoff_ms=*/1000,
                              /*backoff_multiplier=*/2.0, /*max_backoff_ms=*/60'000,
                              /*jitter_fraction=*/0.0, /*jitter_seed=*/1};
  /// Crash-loop breaker: once a service has burned this many restart
  /// attempts inside crash_loop_window, the recipe is parked (quarantined)
  /// instead of retried — a recipe that keeps "succeeding" into a service
  /// that dies again is burning the ensemble, and flapping forever hides
  /// the fault from operators. A quarantined recipe ignores further death
  /// verdicts until release() is called explicitly. 0 disables the breaker.
  int crash_loop_restarts = 0;
  SimDuration crash_loop_window = from_seconds(60);
};

/// One service under supervision. `restart` does the whole resurrection:
/// rebuild, recover durable state, re-register with a fresh lease.
struct SupervisedService {
  std::string name;
  std::function<Status()> restart;
};

struct SupervisorStats {
  std::uint64_t deaths_seen = 0;
  std::uint64_t restart_attempts = 0;
  std::uint64_t restarts_succeeded = 0;
  std::uint64_t restarts_failed = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t quarantined = 0;
};

class Supervisor {
 public:
  explicit Supervisor(const Clock& clock, SupervisorOptions options = {},
                      monalisa::Repository* monitoring = nullptr,
                      telemetry::MetricsRegistry* metrics = nullptr)
      : clock_(clock), options_(options), monitoring_(monitoring), metrics_(metrics) {}

  /// Registers a restart recipe (replacing any previous one for the name).
  void manage(SupervisedService service);

  /// Wires `detector` verdicts into this supervisor: dead services get a
  /// restart scheduled, and a successful restart re-arms their watch.
  void attach(FailureDetector& detector);

  /// Schedules a restart for `name` (idempotent while one is pending).
  void on_service_dead(const std::string& name);

  /// Executes every pending restart whose backoff has elapsed. Returns the
  /// number of successful restarts this tick. Call from a periodic event
  /// (simulation) or a timer thread (live).
  std::size_t tick();

  /// True while `name` has a restart pending (scheduled but not yet done).
  bool restart_pending(const std::string& name) const {
    return pending_.count(name) != 0;
  }

  /// True while the crash-loop breaker has `name` parked: death verdicts
  /// are ignored and no restarts run until release().
  bool quarantined(const std::string& name) const {
    return quarantined_.count(name) != 0;
  }

  /// Operator action: un-parks a quarantined recipe and clears its
  /// crash-loop history so the next death verdict schedules a restart
  /// again. NOT_FOUND if `name` is not quarantined.
  Status release(const std::string& name);

  const SupervisorStats& stats() const { return stats_; }

 private:
  struct Pending {
    int attempt = 1;       // next restart attempt number (1-based)
    SimTime next_at = 0;   // earliest instant the attempt may run
  };

  void publish_event(const std::string& service, const std::string& what);
  /// Bumps the supervision.<what> counter (no-op without a registry).
  void count(const char* what);

  const Clock& clock_;
  SupervisorOptions options_;
  monalisa::Repository* monitoring_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  FailureDetector* detector_ = nullptr;
  std::map<std::string, SupervisedService> services_;
  std::map<std::string, Pending> pending_;
  /// Restart-attempt instants per service, pruned to crash_loop_window.
  std::map<std::string, std::deque<SimTime>> attempt_history_;
  std::set<std::string> quarantined_;
  SupervisorStats stats_;
};

}  // namespace gae::supervision
