#include "sphinx/scheduler.h"

#include <algorithm>

#include "common/log.h"

namespace gae::sphinx {

SphinxScheduler::SphinxScheduler(sim::Simulation& sim, sim::Grid& grid,
                                 monalisa::Repository* monitoring,
                                 std::shared_ptr<estimators::EstimateDatabase> estimate_db,
                                 SchedulerOptions options)
    : sim_(sim),
      grid_(grid),
      monitoring_(monitoring),
      estimate_db_(std::move(estimate_db)),
      options_(options) {
  if (!estimate_db_) estimate_db_ = std::make_shared<estimators::EstimateDatabase>();
}

SphinxScheduler::~SphinxScheduler() {
  for (const auto& [site, token] : subscriptions_) {
    auto it = sites_.find(site);
    if (it != sites_.end() && it->second.exec) it->second.exec->unsubscribe(token);
  }
}

void SphinxScheduler::add_site(const std::string& name, SiteBinding binding) {
  sites_[name] = binding;
  if (binding.exec) {
    const int token =
        binding.exec->subscribe([this](const exec::TaskEvent& ev) { on_task_event(ev); });
    subscriptions_.emplace_back(name, token);
  }
}

std::vector<std::string> SphinxScheduler::site_names() const {
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, _] : sites_) names.push_back(name);
  return names;
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

double SphinxScheduler::site_backlog_seconds(const SiteBinding& binding,
                                             int priority) const {
  if (!binding.exec) return 0.0;
  double backlog = 0.0;
  for (const exec::TaskInfo& t : binding.exec->list_tasks()) {
    if (exec::is_terminal(t.state) || t.state == exec::TaskState::kSuspended) continue;
    // A newly submitted task queues behind running work, higher priorities,
    // and equal priorities already in the queue (FIFO).
    const bool occupies_node =
        t.state == exec::TaskState::kRunning || t.state == exec::TaskState::kStaging;
    if (!occupies_node && t.spec.priority < priority) continue;
    const double estimated =
        estimate_db_->get(t.spec.id).value_or(options_.fallback_runtime_seconds);
    backlog += std::max(0.0, estimated - t.cpu_seconds_used);
  }
  const auto nodes = grid_.site(binding.exec->site()).node_count();
  return backlog / static_cast<double>(std::max<std::size_t>(1, nodes));
}

Result<SiteScore> SphinxScheduler::score_site(const exec::TaskSpec& spec,
                                              const std::string& name) const {
  auto it = sites_.find(name);
  if (it == sites_.end()) return not_found_error("unknown site: " + name);
  const SiteBinding& binding = it->second;
  if (!binding.exec || !binding.exec->is_up()) {
    return unavailable_error("site " + name + " is down");
  }

  SiteScore score;
  score.site = name;

  // (a)-(c) ask the site's runtime estimator.
  score.est_runtime_seconds = options_.fallback_runtime_seconds;
  if (binding.estimator) {
    auto est = binding.estimator->estimate(spec.attributes);
    if (est.is_ok()) score.est_runtime_seconds = est.value().seconds;
  }

  // (d) current load at the site, from the MonALISA repository.
  double load = 0.0;
  if (monitoring_ && !options_.load_metric.empty()) {
    auto avg = monitoring_->windowed_average(name, options_.load_metric, sim_.now(),
                                             from_seconds(options_.load_window_seconds));
    if (avg.is_ok()) load = std::clamp(avg.value(), 0.0, 1.0);
  }
  const double effective_runtime =
      score.est_runtime_seconds / std::max(options_.min_effective_speed, 1.0 - load);

  // Queue backlog ahead of this task.
  score.est_queue_seconds = site_backlog_seconds(binding, spec.priority);

  // Input staging cost.
  score.est_transfer_seconds = 0.0;
  const sim::Site& site = grid_.site(name);
  for (const auto& file : spec.input_files) {
    if (site.has_file(file)) continue;
    auto src = grid_.closest_replica(file, name, name);
    if (!src.is_ok()) {
      score.est_transfer_seconds = 1e9;  // effectively disqualifies the site
      break;
    }
    const auto bytes = grid_.site(src.value()).file_size(file).value();
    score.est_transfer_seconds += to_seconds(grid_.transfer_time(src.value(), name, bytes));
  }

  // (e) rank by total expected completion time.
  score.total_seconds =
      effective_runtime + score.est_queue_seconds + score.est_transfer_seconds;
  return score;
}

Result<std::vector<SiteScore>> SphinxScheduler::rank_sites(
    const exec::TaskSpec& spec, const std::set<std::string>& exclude) const {
  std::vector<SiteScore> scores;
  for (const auto& [name, binding] : sites_) {
    if (exclude.count(name)) continue;
    auto score = score_site(spec, name);
    if (score.is_ok()) scores.push_back(std::move(score).value());
  }
  if (scores.empty()) {
    return failed_precondition_error("no execution site available for scheduling");
  }
  std::sort(scores.begin(), scores.end(), [](const SiteScore& a, const SiteScore& b) {
    if (a.total_seconds != b.total_seconds) return a.total_seconds < b.total_seconds;
    return a.site < b.site;
  });
  return scores;
}

Result<ConcreteJobPlan> SphinxScheduler::make_plan(const JobDescription& job) const {
  if (job.id.empty()) return invalid_argument_error("job id must not be empty");
  if (job.tasks.empty()) return invalid_argument_error("job has no tasks: " + job.id);

  // Validate the DAG: known dependencies, no cycles.
  std::map<std::string, const DagTask*> by_id;
  for (const auto& t : job.tasks) {
    if (!by_id.emplace(t.spec.id, &t).second) {
      return invalid_argument_error("duplicate task id in job: " + t.spec.id);
    }
  }
  std::set<std::string> resolved;
  bool progress = true;
  while (progress && resolved.size() < by_id.size()) {
    progress = false;
    for (const auto& [id, task] : by_id) {
      if (resolved.count(id)) continue;
      bool ready = true;
      for (const auto& dep : task->depends_on) {
        if (!by_id.count(dep)) {
          return invalid_argument_error("task " + id + " depends on unknown task " + dep);
        }
        if (!resolved.count(dep)) ready = false;
      }
      if (ready) {
        resolved.insert(id);
        progress = true;
      }
    }
  }
  if (resolved.size() < by_id.size()) {
    return invalid_argument_error("job " + job.id + " has a dependency cycle");
  }

  ConcreteJobPlan plan;
  plan.job_id = job.id;
  plan.owner = job.owner;
  plan.created_at = sim_.now();
  // Earlier placements in this plan add backlog the live queues cannot show
  // yet; account for them so one plan spreads its own tasks across sites.
  std::map<std::string, double> planned_backlog;
  for (const auto& t : job.tasks) {
    auto ranked = rank_sites(t.spec);
    if (!ranked.is_ok()) return ranked.status();
    const SiteScore* best = nullptr;
    double best_total = 0;
    for (const SiteScore& score : ranked.value()) {
      const double total = score.total_seconds + planned_backlog[score.site];
      if (!best || total < best_total) {
        best = &score;
        best_total = total;
      }
    }
    SitePlacement placement;
    placement.task_id = t.spec.id;
    placement.site = best->site;
    placement.score = *best;
    placement.score.est_queue_seconds += planned_backlog[best->site];
    placement.score.total_seconds = best_total;
    const auto nodes = grid_.site(best->site).node_count();
    planned_backlog[best->site] +=
        best->est_runtime_seconds / static_cast<double>(std::max<std::size_t>(1, nodes));
    plan.placements.push_back(std::move(placement));
  }
  return plan;
}

Result<ConcreteJobPlan> SphinxScheduler::submit(const JobDescription& job) {
  if (jobs_.count(job.id)) return already_exists_error("job already submitted: " + job.id);
  auto planr = make_plan(job);
  if (!planr.is_ok()) return planr.status();
  ConcreteJobPlan plan = std::move(planr).value();

  JobRun run;
  run.desc = job;
  run.plan = plan;
  for (const auto& t : job.tasks) {
    TaskRun tr;
    tr.spec = t.spec;
    tr.spec.job_id = job.id;
    if (tr.spec.owner.empty()) tr.spec.owner = job.owner;
    tr.depends_on = t.depends_on;
    for (const auto& p : plan.placements) {
      if (p.task_id == t.spec.id) {
        tr.site = p.site;
        estimate_db_->put(t.spec.id, p.score.est_runtime_seconds);
        break;
      }
    }
    task_to_job_[t.spec.id] = job.id;
    run.tasks.emplace(t.spec.id, std::move(tr));
  }
  auto [it, _] = jobs_.emplace(job.id, std::move(run));

  // The steering service's Subscriber receives the concrete plan (§4.2.1).
  for (const auto& [__, cb] : plan_subs_) cb(it->second.desc, it->second.plan);

  submit_ready_tasks(it->second);
  return plan;
}

// ---------------------------------------------------------------------------
// Steering hooks
// ---------------------------------------------------------------------------

Result<std::string> SphinxScheduler::task_site(const std::string& task_id) const {
  auto it = task_site_.find(task_id);
  if (it == task_site_.end()) return not_found_error("unknown task: " + task_id);
  return it->second;
}

Result<SitePlacement> SphinxScheduler::reallocate(const std::string& task_id,
                                                  const std::set<std::string>& exclude,
                                                  double initial_cpu_seconds) {
  auto job_it = task_to_job_.find(task_id);
  if (job_it == task_to_job_.end()) return not_found_error("unknown task: " + task_id);
  JobRun& job = jobs_.at(job_it->second);
  TaskRun& task = job.tasks.at(task_id);

  auto ranked = rank_sites(task.spec, exclude);
  if (!ranked.is_ok()) return ranked.status();
  const SiteScore& best = ranked.value().front();

  const Status s = submit_to_site(task.spec, best.site, initial_cpu_seconds);
  if (!s.is_ok()) return s;

  task.site = best.site;
  task.submitted = true;
  task.failed = false;
  task.completed = false;
  estimate_db_->put(task_id, best.est_runtime_seconds);

  SitePlacement placement;
  placement.task_id = task_id;
  placement.site = best.site;
  placement.score = best;
  GAE_LOG(Info) << "sphinx reallocated " << task_id << " to " << best.site;
  return placement;
}

Result<SitePlacement> SphinxScheduler::place(const std::string& task_id,
                                             const std::string& site,
                                             double initial_cpu_seconds) {
  auto job_it = task_to_job_.find(task_id);
  if (job_it == task_to_job_.end()) return not_found_error("unknown task: " + task_id);
  JobRun& job = jobs_.at(job_it->second);
  TaskRun& task = job.tasks.at(task_id);

  auto score = score_site(task.spec, site);
  if (!score.is_ok()) return score.status();

  const Status s = submit_to_site(task.spec, site, initial_cpu_seconds);
  if (!s.is_ok()) return s;

  task.site = site;
  task.submitted = true;
  task.failed = false;
  task.completed = false;
  estimate_db_->put(task_id, score.value().est_runtime_seconds);

  SitePlacement placement;
  placement.task_id = task_id;
  placement.site = site;
  placement.score = std::move(score).value();
  GAE_LOG(Info) << "sphinx placed " << task_id << " at " << site << " (manual)";
  return placement;
}

Status SphinxScheduler::cancel_job(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return not_found_error("unknown job: " + job_id);
  JobRun& job = it->second;
  if (job.cancelled) return failed_precondition_error("job already cancelled: " + job_id);
  job.cancelled = true;
  for (auto& [task_id, task] : job.tasks) {
    if (!task.submitted || task.completed || task.failed) continue;
    auto site_it = sites_.find(task.site);
    if (site_it == sites_.end() || !site_it->second.exec) continue;
    site_it->second.exec->kill(task_id, "job cancelled");
  }
  GAE_LOG(Info) << "sphinx cancelled job " << job_id;
  return Status::ok();
}

Result<JobStatus> SphinxScheduler::job_status(const std::string& job_id) const {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return not_found_error("unknown job: " + job_id);
  JobStatus st;
  st.tasks_total = it->second.tasks.size();
  for (const auto& [_, t] : it->second.tasks) {
    if (t.completed) ++st.tasks_completed;
    if (t.failed) ++st.tasks_failed;
  }
  if (it->second.cancelled) {
    st.state = JobState::kCancelled;
  } else if (st.tasks_completed == st.tasks_total) {
    st.state = JobState::kCompleted;
  } else if (st.tasks_failed > 0) {
    st.state = JobState::kFailed;
  } else {
    st.state = JobState::kRunning;
  }
  return st;
}

int SphinxScheduler::subscribe_plans(PlanCallback cb) {
  const int token = next_token_++;
  plan_subs_[token] = std::move(cb);
  return token;
}

void SphinxScheduler::unsubscribe_plans(int token) { plan_subs_.erase(token); }

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void SphinxScheduler::submit_ready_tasks(JobRun& job) {
  if (job.cancelled) return;
  for (auto& [id, task] : job.tasks) {
    if (task.submitted) continue;
    bool ready = true;
    for (const auto& dep : task.depends_on) {
      if (!job.tasks.at(dep).completed) {
        ready = false;
        break;
      }
    }
    if (!ready) continue;
    const Status s = submit_to_site(task.spec, task.site, 0.0);
    if (s.is_ok()) {
      task.submitted = true;
    } else {
      GAE_LOG(Warn) << "sphinx could not submit " << id << " to " << task.site << ": " << s;
      task.failed = true;
    }
  }
}

Status SphinxScheduler::submit_to_site(const exec::TaskSpec& spec, const std::string& site,
                                       double initial_cpu_seconds) {
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.exec) {
    return not_found_error("unknown execution site: " + site);
  }
  const Status s = it->second.exec->submit(spec, initial_cpu_seconds);
  if (s.is_ok()) task_site_[spec.id] = site;
  return s;
}

void SphinxScheduler::on_task_event(const exec::TaskEvent& ev) {
  // Track flocked tasks so the location registry stays accurate.
  constexpr const char* kFlockPrefix = "flocked to ";
  if (ev.detail.rfind(kFlockPrefix, 0) == 0) {
    task_site_[ev.task_id] = ev.detail.substr(std::string(kFlockPrefix).size());
  }

  auto job_it = task_to_job_.find(ev.task_id);
  if (job_it == task_to_job_.end()) return;
  auto run_it = jobs_.find(job_it->second);
  if (run_it == jobs_.end()) return;
  JobRun& job = run_it->second;
  auto task_it = job.tasks.find(ev.task_id);
  if (task_it == job.tasks.end()) return;

  // Only trust events from the site the task currently lives on (a stale
  // copy left running after a move also emits events).
  auto loc = task_site_.find(ev.task_id);
  if (loc != task_site_.end() && loc->second != ev.site &&
      ev.detail.rfind(kFlockPrefix, 0) != 0) {
    return;
  }

  if (ev.new_state == exec::TaskState::kCompleted) {
    task_it->second.completed = true;
    task_it->second.failed = false;
    submit_ready_tasks(job);
  } else if (ev.new_state == exec::TaskState::kFailed) {
    TaskRun& task = task_it->second;
    task.failed = true;
    // Optional automatic retry away from the failing site. Carried progress
    // is preserved for checkpointable tasks.
    if (!job.cancelled && task.retries < options_.task_retry_limit) {
      ++task.retries;
      auto current = task_site_.find(ev.task_id);
      std::set<std::string> exclude;
      if (current != task_site_.end()) exclude.insert(current->second);
      double carried = 0.0;
      if (task.spec.checkpointable) {
        auto svc = sites_.find(ev.site);
        if (svc != sites_.end() && svc->second.exec && svc->second.exec->is_up()) {
          auto info = svc->second.exec->query(ev.task_id);
          if (info.is_ok()) carried = info.value().cpu_seconds_used;
        }
      }
      auto placement = reallocate(ev.task_id, exclude, carried);
      if (placement.is_ok()) {
        GAE_LOG(Info) << "sphinx auto-retried " << ev.task_id << " ("
                      << task.retries << "/" << options_.task_retry_limit << ") at "
                      << placement.value().site;
      }
    }
  }
}

}  // namespace gae::sphinx
