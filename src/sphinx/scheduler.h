// Sphinx-like scheduling middleware.
//
// Turns user job descriptions (DAGs of tasks) into *concrete job plans* —
// plans that name the execution site for every task — following the paper's
// §6.1 site-selection loop: ask every site's runtime estimator for a
// prediction, read site load from the MonALISA repository, add queue and
// file-transfer estimates, and pick the site minimising the expected
// completion time. Executes plans respecting DAG dependencies, records
// submit-time estimates into the estimate database (for the queue-time
// estimator), notifies plan subscribers (the steering service's Subscriber
// consumes these), and reallocates tasks on request (steering's move and
// Backup & Recovery paths).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "estimators/estimate_db.h"
#include "estimators/runtime_estimator.h"
#include "exec/execution_service.h"
#include "monalisa/repository.h"
#include "sim/engine.h"
#include "sim/grid.h"

namespace gae::sphinx {

/// One node of a user job DAG.
struct DagTask {
  exec::TaskSpec spec;
  /// Ids of tasks (in the same job) that must complete first.
  std::vector<std::string> depends_on;
};

/// What the user submits.
struct JobDescription {
  std::string id;
  std::string owner;
  std::vector<DagTask> tasks;
};

/// Scheduler's estimate breakdown for one site.
struct SiteScore {
  std::string site;
  double est_runtime_seconds = 0.0;   // estimator prediction, load-adjusted
  double est_queue_seconds = 0.0;     // backlog ahead of this task
  double est_transfer_seconds = 0.0;  // input staging
  double total_seconds = 0.0;
};

/// A task bound to a site, with the estimates that justified the binding.
struct SitePlacement {
  std::string task_id;
  std::string site;
  SiteScore score;
};

/// "Concrete job plan" (paper §4.2.1): every task has an execution site.
struct ConcreteJobPlan {
  std::string job_id;
  std::string owner;
  std::vector<SitePlacement> placements;
  SimTime created_at = 0;
};

/// Scheduler-side view of a job in flight.
enum class JobState { kRunning, kCompleted, kFailed, kCancelled };

struct JobStatus {
  JobState state = JobState::kRunning;
  std::size_t tasks_total = 0;
  std::size_t tasks_completed = 0;
  std::size_t tasks_failed = 0;
};

struct SchedulerOptions {
  /// MonALISA metric read for per-site load ("" disables load adjustment).
  std::string load_metric = "cpu_load";
  /// Window over which site load is averaged.
  double load_window_seconds = 300.0;
  /// Minimum effective speed under load, guards division by ~0.
  double min_effective_speed = 0.05;
  /// Used when a site estimator cannot produce a prediction yet.
  double fallback_runtime_seconds = 600.0;
  /// Automatic resubmissions of a failed task (excluding the site it failed
  /// on) before the failure sticks. 0 = the paper's behaviour: failures are
  /// surfaced and recovery is the steering service's job.
  int task_retry_limit = 0;
};

class SphinxScheduler {
 public:
  /// Everything the scheduler knows about one site.
  struct SiteBinding {
    exec::ExecutionService* exec = nullptr;
    std::shared_ptr<estimators::RuntimeEstimator> estimator;
  };

  SphinxScheduler(sim::Simulation& sim, sim::Grid& grid,
                  monalisa::Repository* monitoring,
                  std::shared_ptr<estimators::EstimateDatabase> estimate_db,
                  SchedulerOptions options = {});
  ~SphinxScheduler();

  SphinxScheduler(const SphinxScheduler&) = delete;
  SphinxScheduler& operator=(const SphinxScheduler&) = delete;

  void add_site(const std::string& name, SiteBinding binding);
  std::vector<std::string> site_names() const;

  // -- Planning --------------------------------------------------------------

  /// Ranks candidate sites for one task, best first (paper §6.1 steps a-e).
  Result<std::vector<SiteScore>> rank_sites(const exec::TaskSpec& spec,
                                            const std::set<std::string>& exclude = {}) const;

  /// The §6.1 estimate breakdown for one specific site (UNAVAILABLE when
  /// the site is down or unknown).
  Result<SiteScore> score_site(const exec::TaskSpec& spec, const std::string& site) const;

  /// Builds a concrete plan without submitting it.
  Result<ConcreteJobPlan> make_plan(const JobDescription& job) const;

  /// Plans and executes: root tasks are submitted now, dependents as their
  /// parents complete. Publishes the plan to subscribers.
  Result<ConcreteJobPlan> submit(const JobDescription& job);

  // -- Steering hooks ----------------------------------------------------------

  /// Where a task currently lives. NOT_FOUND for unknown tasks.
  Result<std::string> task_site(const std::string& task_id) const;

  /// Picks a new site (excluding `exclude`) and resubmits the task there
  /// with `initial_cpu_seconds` of carried progress. Returns the placement.
  /// Used by steering on move requests and execution-service failure.
  Result<SitePlacement> reallocate(const std::string& task_id,
                                   const std::set<std::string>& exclude,
                                   double initial_cpu_seconds);

  /// Resubmits a known task at a *specific* site (steering's manual move).
  Result<SitePlacement> place(const std::string& task_id, const std::string& site,
                              double initial_cpu_seconds);

  Result<JobStatus> job_status(const std::string& job_id) const;

  /// Kills every non-terminal task of a job and stops submitting the rest.
  Status cancel_job(const std::string& job_id);

  // -- Plan subscription (steering's Subscriber) -----------------------------

  using PlanCallback =
      std::function<void(const JobDescription&, const ConcreteJobPlan&)>;
  int subscribe_plans(PlanCallback cb);
  void unsubscribe_plans(int token);

 private:
  struct TaskRun {
    exec::TaskSpec spec;
    std::vector<std::string> depends_on;
    std::string site;
    bool submitted = false;
    bool completed = false;
    bool failed = false;
    int retries = 0;
  };
  struct JobRun {
    JobDescription desc;
    ConcreteJobPlan plan;
    std::map<std::string, TaskRun> tasks;
    bool cancelled = false;
  };

  /// Estimated seconds of backlog ahead of a new task at `site`.
  double site_backlog_seconds(const SiteBinding& binding, int priority) const;

  /// Submits every unsubmitted task whose dependencies completed.
  void submit_ready_tasks(JobRun& job);

  void on_task_event(const exec::TaskEvent& ev);

  Status submit_to_site(const exec::TaskSpec& spec, const std::string& site,
                        double initial_cpu_seconds);

  sim::Simulation& sim_;
  sim::Grid& grid_;
  monalisa::Repository* monitoring_;
  std::shared_ptr<estimators::EstimateDatabase> estimate_db_;
  SchedulerOptions options_;

  std::map<std::string, SiteBinding> sites_;
  std::vector<std::pair<std::string, int>> subscriptions_;  // (site, token)
  std::map<std::string, JobRun> jobs_;
  std::map<std::string, std::string> task_to_job_;
  std::map<std::string, std::string> task_site_;  // live location registry
  std::map<int, PlanCallback> plan_subs_;
  int next_token_ = 1;
};

}  // namespace gae::sphinx
