// RPC plumbing for hot-standby replication: the ha.* method bindings a
// standby host exposes, and the ShipperTransport that drives them from the
// primary over the existing RpcClient (deadlines, retries, breakers and
// NOT_PRIMARY classification all come for free).
//
// Wire shape: batch bytes are hex-encoded — the XML-RPC codec escapes only
// <>& so raw WAL bytes cannot ride a string parameter — and the end-to-end
// CRC travels alongside, so codec damage is caught at the replica.
#pragma once

#include <map>
#include <string>

#include "clarens/host.h"
#include "common/status.h"
#include "ha/replication.h"
#include "rpc/client.h"

namespace gae::ha {

/// The streams one host is standby for (a host may back several services —
/// jobmon, estimators, steering — each with its own replica).
class StandbySet {
 public:
  /// Keyed by replica->stream(); last add wins. The replica must outlive
  /// any dispatcher serving it.
  void add(StandbyReplica* replica);
  StandbyReplica* find(const std::string& stream) const;
  std::size_t size() const { return replicas_.size(); }

 private:
  std::map<std::string, StandbyReplica*> replicas_;
};

/// Registers ha.append / ha.snapshot / ha.status on `host`. `standbys` must
/// outlive the host's dispatcher.
void register_ha_methods(clarens::ClarensHost& host, StandbySet& standbys);

/// Ships batches to a remote standby over RPC. Appends and snapshot
/// installs are idempotent at the replica (applied prefixes are skipped),
/// so calls are marked idempotent and the client may retry them; they ride
/// the control tier — replication traffic is what makes failover lossless,
/// an overloaded standby must shed reads before it sheds these.
class RpcShipperTransport final : public ShipperTransport {
 public:
  /// `client` must outlive the transport; `deadline_ms` bounds each
  /// shipment call (retries included).
  explicit RpcShipperTransport(rpc::RpcClient* client, int deadline_ms = 2000);

  Result<ReplicaAck> append(const AppendBatch& batch) override;
  Result<ReplicaAck> snapshot(const SnapshotInstall& snap) override;
  Result<ReplicaAck> status(const std::string& stream) override;
  /// Pulls the standby's verified full log (ha.fetch) — the donor call of
  /// the storage repair path.
  Result<SnapshotInstall> fetch(const std::string& stream) override;

 private:
  static Result<ReplicaAck> parse_ack(Result<rpc::Value> reply);

  rpc::RpcClient* client_;
  rpc::CallOptions options_;
};

}  // namespace gae::ha
