#include "ha/failover.h"

#include "common/log.h"

namespace gae::ha {

bool PrimaryRole::is_primary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return primary_;
}

std::uint64_t PrimaryRole::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::string PrimaryRole::leader_hint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leader_hint_;
}

void PrimaryRole::make_primary(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  primary_ = true;
  epoch_ = epoch;
  leader_hint_.clear();
}

void PrimaryRole::depose(std::string leader_hint) {
  std::lock_guard<std::mutex> lock(mutex_);
  primary_ = false;
  leader_hint_ = std::move(leader_hint);
}

std::string format_leader_hint(const std::string& host, std::uint16_t port) {
  return host + ":" + std::to_string(port);
}

void install_fencing(rpc::Dispatcher& dispatcher, std::shared_ptr<PrimaryRole> role,
                     std::vector<std::string> mutating_prefixes) {
  dispatcher.add_interceptor(
      [role = std::move(role), prefixes = std::move(mutating_prefixes)](
          const std::string& method, const rpc::CallContext&) -> Status {
        bool mutating = false;
        for (const std::string& prefix : prefixes) {
          if (method.rfind(prefix, 0) == 0) {
            mutating = true;
            break;
          }
        }
        if (!mutating || role->is_primary()) return Status::ok();
        std::string msg = "not the primary for " + method;
        const std::string hint = role->leader_hint();
        if (!hint.empty()) msg += " leader=" + hint;
        return not_primary_error(msg);
      });
}

Result<Promotion> promote_standby(const PromotionOptions& options) {
  if (!options.registry) return invalid_argument_error("promotion needs a registry");
  const SimTime started = options.clock ? options.clock->now() : 0;

  // Replay before taking the lease: a standby whose log will not fold into
  // live state must stay a standby (and keep replicating) rather than win
  // primaryship it cannot serve.
  if (options.replay) {
    const Status replayed = options.replay();
    if (!replayed.is_ok()) {
      GAE_LOG_WARN << "ha: promotion replay failed for '" << options.service
                   << "': " << replayed.to_string();
      return replayed;
    }
  }

  auto lease = options.registry->acquire_primary(options.service, options.lease_ttl);
  if (!lease.is_ok()) return lease.status();  // old lease still live: retry later

  Promotion promotion;
  promotion.lease = lease.value();
  if (options.replica) {
    const Status fenced = options.replica->promote(promotion.lease.epoch);
    if (!fenced.is_ok()) {
      options.registry->release_primary(options.service, promotion.lease.lease_id);
      return fenced;
    }
  }
  if (options.role) options.role->make_primary(promotion.lease.epoch);
  // Caches filled while standing by hold answers from the old primary's
  // epoch; drop them before this host starts taking the traffic.
  if (options.drop_caches) options.drop_caches();
  promotion.registration =
      options.registry->register_service(options.self, options.lease_ttl);

  if (options.metrics) {
    options.metrics->gauge("ha." + options.service + ".epoch")
        .set(static_cast<std::int64_t>(promotion.lease.epoch));
    if (options.clock) {
      const SimDuration took = options.clock->now() - started;
      options.metrics->histogram("ha.promotion_ms")
          .record(static_cast<std::uint64_t>(took < 0 ? 0 : took / 1000));
    }
  }
  GAE_LOG_INFO << "ha: '" << options.service << "' promoted to primary at epoch "
               << promotion.lease.epoch;
  return promotion;
}

supervision::SupervisedService make_promotion_recipe(
    std::string watched_name, PromotionOptions options,
    std::function<void(const Promotion&)> on_promoted) {
  supervision::SupervisedService service;
  service.name = std::move(watched_name);
  service.restart = [options = std::move(options),
                     on_promoted = std::move(on_promoted)]() -> Status {
    auto promoted = promote_standby(options);
    if (!promoted.is_ok()) return promoted.status();
    if (on_promoted) on_promoted(promoted.value());
    return Status::ok();
  };
  return service;
}

}  // namespace gae::ha
