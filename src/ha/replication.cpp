#include "ha/replication.h"

#include "common/log.h"

namespace gae::ha {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
}  // namespace

std::string hex_encode(const std::string& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 0xF]);
  }
  return out;
}

Result<std::string> hex_decode(const std::string& hex) {
  if (hex.size() % 2 != 0) return invalid_argument_error("odd-length hex string");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return invalid_argument_error("non-hex character in hex string");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

// --- StandbyReplica --------------------------------------------------------

StandbyReplica::StandbyReplica(std::string stream, WalStorage* storage,
                               telemetry::MetricsRegistry* metrics)
    : stream_(std::move(stream)), storage_(storage) {
  if (metrics) {
    rejections_counter_ = &metrics->counter("ha." + stream_ + ".stale_epoch_rejections");
    next_seq_gauge_ = &metrics->gauge("ha." + stream_ + ".standby_next_seq");
  }
}

Result<ReplicaAck> StandbyReplica::apply_append(const AppendBatch& batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (batch.epoch < epoch_) {
    ++stale_epoch_rejections_;
    if (rejections_counter_) rejections_counter_->inc();
    std::string msg = "stale epoch " + std::to_string(batch.epoch) + " < " +
                      std::to_string(epoch_) + " for stream " + stream_;
    if (!leader_hint_.empty()) msg += " leader=" + leader_hint_;
    return not_primary_error(msg);
  }
  if (crc32(batch.bytes) != batch.crc) {
    return invalid_argument_error("batch crc mismatch for stream " + stream_);
  }
  const WalReadResult decoded = Wal::decode(batch.bytes);
  if (decoded.torn_tail || decoded.corrupt ||
      decoded.records.size() != batch.records) {
    return invalid_argument_error("malformed batch frames for stream " + stream_);
  }
  if (batch.base_seq > next_seq_) {
    return failed_precondition_error(
        "replication gap for stream " + stream_ + ": batch starts at " +
        std::to_string(batch.base_seq) + ", standby expects " +
        std::to_string(next_seq_));
  }
  // The epoch is accepted — a strictly newer one deposes whatever primary
  // this standby followed before.
  if (batch.epoch > epoch_) epoch_ = batch.epoch;
  if (!batch.leader_host.empty()) {
    leader_hint_ = batch.leader_host + ":" + std::to_string(batch.leader_port);
  }

  const std::uint64_t end_seq = batch.base_seq + batch.records;
  if (end_seq > next_seq_) {
    // Skip the already-applied prefix (retries and shipper re-sends overlap
    // harmlessly), append only the genuinely new frames.
    const std::size_t skip = static_cast<std::size_t>(next_seq_ - batch.base_seq);
    std::string to_append;
    if (skip == 0) {
      to_append = batch.bytes;
    } else {
      for (std::size_t i = skip; i < decoded.records.size(); ++i) {
        to_append += Wal::encode_frame(decoded.records[i].type,
                                       decoded.records[i].payload);
      }
    }
    const Status appended = storage_->append(to_append);
    if (!appended.is_ok()) return appended;
    const Status synced = storage_->sync();
    if (!synced.is_ok()) return synced;
    next_seq_ = end_seq;
    if (next_seq_gauge_) next_seq_gauge_->set(static_cast<std::int64_t>(next_seq_));
  }
  return ReplicaAck{epoch_, next_seq_};
}

Result<ReplicaAck> StandbyReplica::install_snapshot(const SnapshotInstall& snap) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (snap.epoch < epoch_) {
    ++stale_epoch_rejections_;
    if (rejections_counter_) rejections_counter_->inc();
    std::string msg = "stale epoch " + std::to_string(snap.epoch) + " < " +
                      std::to_string(epoch_) + " for stream " + stream_;
    if (!leader_hint_.empty()) msg += " leader=" + leader_hint_;
    return not_primary_error(msg);
  }
  if (crc32(snap.bytes) != snap.crc) {
    return invalid_argument_error("snapshot crc mismatch for stream " + stream_);
  }
  const WalReadResult decoded = Wal::decode(snap.bytes);
  if (decoded.torn_tail || decoded.corrupt) {
    return invalid_argument_error("malformed snapshot frames for stream " + stream_);
  }
  if (snap.epoch > epoch_) epoch_ = snap.epoch;
  if (!snap.leader_host.empty()) {
    leader_hint_ = snap.leader_host + ":" + std::to_string(snap.leader_port);
  }
  const Status replaced = storage_->replace(snap.bytes);
  if (!replaced.is_ok()) return replaced;
  next_seq_ = snap.next_seq;
  if (next_seq_gauge_) next_seq_gauge_->set(static_cast<std::int64_t>(next_seq_));
  return ReplicaAck{epoch_, next_seq_};
}

ReplicaAck StandbyReplica::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ReplicaAck{epoch_, next_seq_};
}

Result<SnapshotInstall> StandbyReplica::export_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto bytes = storage_->read_all();
  if (!bytes.is_ok()) {
    return Status(bytes.status().code(),
                  "standby log unreadable for stream " + stream_ + ": " +
                      bytes.status().message());
  }
  // A rotten donor must not heal anyone: verify framing before exporting.
  const WalReadResult decoded = Wal::decode(bytes.value());
  if (decoded.corrupt || decoded.torn_tail) {
    return failed_precondition_error(
        "standby log for stream " + stream_ + " fails verification (" +
        std::to_string(bytes.value().size() - decoded.valid_bytes) +
        " damaged bytes)");
  }
  SnapshotInstall snap;
  snap.stream = stream_;
  snap.epoch = epoch_;
  snap.next_seq = next_seq_;
  snap.bytes = std::move(bytes).value();
  snap.crc = crc32(snap.bytes);
  return snap;
}

Status StandbyReplica::promote(std::uint64_t new_epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (new_epoch <= epoch_) {
    return failed_precondition_error(
        "promotion epoch " + std::to_string(new_epoch) +
        " does not advance past " + std::to_string(epoch_));
  }
  epoch_ = new_epoch;
  leader_hint_.clear();  // this replica is the leader now
  GAE_LOG_INFO << "ha: standby for '" << stream_ << "' promoted at epoch "
               << new_epoch << " (next_seq " << next_seq_ << ")";
  return Status::ok();
}

std::uint64_t StandbyReplica::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::uint64_t StandbyReplica::next_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::string StandbyReplica::leader_hint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leader_hint_;
}

std::uint64_t StandbyReplica::stale_epoch_rejections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stale_epoch_rejections_;
}

// --- LogShipper ------------------------------------------------------------

LogShipper::LogShipper(std::string stream, ShipperOptions options)
    : stream_(std::move(stream)), options_(std::move(options)) {
  if (options_.metrics) {
    lag_gauge_ = &options_.metrics->gauge("ha." + stream_ + ".replication_lag");
    epoch_gauge_ = &options_.metrics->gauge("ha." + stream_ + ".epoch");
    batches_counter_ = &options_.metrics->counter("ha." + stream_ + ".batches_shipped");
    failures_counter_ = &options_.metrics->counter("ha." + stream_ + ".ship_failures");
  }
}

void LogShipper::add_standby(ShipperTransport* transport) {
  std::lock_guard<std::mutex> lock(mutex_);
  standbys_.push_back(Standby{transport, 0});
}

std::size_t LogShipper::standby_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return standbys_.size();
}

void LogShipper::set_epoch(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  epoch_ = epoch;
  deposed_ = false;  // a freshly granted epoch is a legitimate new reign
  if (epoch_gauge_) epoch_gauge_->set(static_cast<std::int64_t>(epoch));
}

std::uint64_t LogShipper::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

void LogShipper::set_resync_source(std::function<Result<std::string>()> source) {
  std::lock_guard<std::mutex> lock(mutex_);
  resync_source_ = std::move(source);
}

std::uint64_t LogShipper::min_acked_locked() const {
  std::uint64_t min_acked = next_seq_;
  for (const Standby& s : standbys_) {
    if (s.acked_seq < min_acked) min_acked = s.acked_seq;
  }
  return min_acked;
}

void LogShipper::update_lag_locked() {
  if (lag_gauge_) {
    lag_gauge_->set(static_cast<std::int64_t>(next_seq_ - min_acked_locked()));
  }
}

Status LogShipper::resync_locked(Standby& standby) {
  if (!resync_source_) {
    return failed_precondition_error("standby gap and no resync source for stream " +
                                     stream_);
  }
  auto full = resync_source_();
  if (!full.is_ok()) return full.status();
  SnapshotInstall snap;
  snap.stream = stream_;
  snap.epoch = epoch_;
  snap.next_seq = next_seq_;
  snap.bytes = std::move(full).value();
  snap.crc = crc32(snap.bytes);
  snap.leader_host = options_.leader_host;
  snap.leader_port = options_.leader_port;
  auto ack = standby.transport->snapshot(snap);
  if (!ack.is_ok()) return ack.status();
  standby.acked_seq = ack.value().next_seq;
  ++stats_.snapshots_shipped;
  ++stats_.resyncs;
  return Status::ok();
}

Status LogShipper::ship_to_locked(Standby& standby) {
  if (standby.acked_seq >= next_seq_) return Status::ok();
  // Frames the standby needs that have already been trimmed (it joined or
  // fell behind past the retention window) force a full resync.
  if (standby.acked_seq < frames_base_seq_) return resync_locked(standby);

  AppendBatch batch;
  batch.stream = stream_;
  batch.epoch = epoch_;
  batch.base_seq = standby.acked_seq;
  batch.records = next_seq_ - standby.acked_seq;
  const std::size_t first = static_cast<std::size_t>(standby.acked_seq - frames_base_seq_);
  for (std::size_t i = first; i < frames_.size(); ++i) batch.bytes += frames_[i];
  batch.crc = crc32(batch.bytes);
  batch.leader_host = options_.leader_host;
  batch.leader_port = options_.leader_port;

  auto ack = standby.transport->append(batch);
  if (!ack.is_ok()) {
    // A gap means this standby's log diverged from our frame window (e.g.
    // it restarted empty); heal it with a full-log install.
    if (ack.status().code() == StatusCode::kFailedPrecondition) {
      return resync_locked(standby);
    }
    return ack.status();
  }
  standby.acked_seq = ack.value().next_seq;
  ++stats_.batches_shipped;
  stats_.records_shipped += batch.records;
  if (batches_counter_) batches_counter_->inc();
  return Status::ok();
}

Status LogShipper::flush_locked() {
  Status result = Status::ok();
  for (Standby& standby : standbys_) {
    const Status s = ship_to_locked(standby);
    if (!s.is_ok()) {
      ++stats_.ship_failures;
      if (failures_counter_) failures_counter_->inc();
      if (s.code() == StatusCode::kNotPrimary) {
        deposed_ = true;
        GAE_LOG_WARN << "ha: shipper for '" << stream_
                     << "' deposed (standby reports newer epoch): " << s.message();
      }
      // NOT_PRIMARY outranks transport noise: the primary must stop.
      if (result.is_ok() || s.code() == StatusCode::kNotPrimary) result = s;
    }
  }
  const std::uint64_t min_acked = min_acked_locked();
  while (!frames_.empty() && frames_base_seq_ < min_acked) {
    buffered_bytes_ -= frames_.front().size();
    frames_.pop_front();
    ++frames_base_seq_;
  }
  return result;
}

Status LogShipper::ship_append(const std::string& frame_bytes) {
  std::function<void()> fire;
  Status result = Status::ok();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (deposed_) {
      return not_primary_error("deposed primary must not write stream " + stream_);
    }
    frames_.push_back(frame_bytes);
    buffered_bytes_ += frame_bytes.size();
    ++next_seq_;
    const bool flush_now = options_.mode == ReplicationMode::kSync ||
                           frames_.size() >= options_.batch_max_records ||
                           buffered_bytes_ >= options_.batch_max_bytes;
    if (flush_now) {
      result = flush_locked();
      if (deposed_ && on_deposed_) fire = on_deposed_;
    }
    update_lag_locked();
  }
  if (fire) fire();
  if (options_.mode == ReplicationMode::kSync) return result;
  // Async: buffered failures are retried at the next flush; only a deposal
  // must surface immediately so the old primary stops acknowledging.
  return result.code() == StatusCode::kNotPrimary ? result : Status::ok();
}

Status LogShipper::ship_replace(const std::string& log_bytes) {
  std::function<void()> fire;
  Status result = Status::ok();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (deposed_) {
      return not_primary_error("deposed primary must not write stream " + stream_);
    }
    // The snapshot subsumes every buffered frame.
    frames_.clear();
    buffered_bytes_ = 0;
    frames_base_seq_ = next_seq_;

    SnapshotInstall snap;
    snap.stream = stream_;
    snap.epoch = epoch_;
    snap.next_seq = next_seq_;
    snap.bytes = log_bytes;
    snap.crc = crc32(log_bytes);
    snap.leader_host = options_.leader_host;
    snap.leader_port = options_.leader_port;

    for (Standby& standby : standbys_) {
      auto ack = standby.transport->snapshot(snap);
      if (ack.is_ok()) {
        standby.acked_seq = ack.value().next_seq;
        ++stats_.snapshots_shipped;
        continue;
      }
      ++stats_.ship_failures;
      if (failures_counter_) failures_counter_->inc();
      if (ack.status().code() == StatusCode::kNotPrimary) deposed_ = true;
      if (result.is_ok() || ack.status().code() == StatusCode::kNotPrimary) {
        result = ack.status();
      }
    }
    if (deposed_ && on_deposed_) fire = on_deposed_;
    update_lag_locked();
  }
  if (fire) fire();
  return result;
}

Status LogShipper::flush() {
  std::function<void()> fire;
  Status result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    result = flush_locked();
    if (deposed_ && on_deposed_) fire = on_deposed_;
    update_lag_locked();
  }
  if (fire) fire();
  return result;
}

bool LogShipper::deposed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deposed_;
}

void LogShipper::set_on_deposed(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_deposed_ = std::move(fn);
}

std::uint64_t LogShipper::next_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t LogShipper::acked_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_acked_locked();
}

ShipperStats LogShipper::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// --- ReplicatedWalStorage --------------------------------------------------

ReplicatedWalStorage::ReplicatedWalStorage(WalStorage* inner, LogShipper* shipper)
    : inner_(inner), shipper_(shipper) {
  shipper_->set_resync_source([inner] { return inner->read_all(); });
}

Status ReplicatedWalStorage::append(const std::string& bytes) {
  // Local durability first (the resync source must already contain this
  // frame if a gap-healing snapshot is triggered by the shipment below).
  const Status local = inner_->append(bytes);
  if (!local.is_ok()) return local;
  return shipper_->ship_append(bytes);
}

Status ReplicatedWalStorage::replace(const std::string& bytes) {
  const Status local = inner_->replace(bytes);
  if (!local.is_ok()) return local;
  return shipper_->ship_replace(bytes);
}

// --- ReplicatedJournalSink -------------------------------------------------

ReplicatedJournalSink::ReplicatedJournalSink(steering::JournalSink* inner,
                                             LogShipper* shipper)
    : inner_(inner), shipper_(shipper) {
  shipper_->set_resync_source([this]() -> Result<std::string> {
    std::lock_guard<std::mutex> lock(mutex_);
    return framed_;
  });
}

Status ReplicatedJournalSink::append(const std::string& line) {
  const Status local = inner_->append(line);
  if (!local.is_ok()) return local;
  const std::string frame = Wal::encode_frame(WalRecord::Type::kRecord, line);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    framed_ += frame;
  }
  return shipper_->ship_append(frame);
}

Result<std::vector<std::string>> journal_lines_from_log(const std::string& log_bytes) {
  const WalReadResult decoded = Wal::decode(log_bytes);
  if (decoded.corrupt) {
    return internal_error("corrupt replicated journal log");
  }
  std::vector<std::string> lines;
  lines.reserve(decoded.records.size());
  for (const WalRecord& rec : decoded.records) {
    if (rec.type != WalRecord::Type::kRecord) {
      return internal_error("unexpected snapshot frame in replicated journal log");
    }
    lines.push_back(rec.payload);
  }
  return lines;
}

}  // namespace gae::ha
