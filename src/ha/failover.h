// Fenced failover: who is primary, how mutating RPCs are fenced while a
// host is (or becomes) a standby, and the promotion recipe that turns a
// standby into the new primary.
//
// The arbiter is the Clarens ServiceRegistry's primary lease. Promotion
// cannot race the old primary: acquire_primary refuses while the old lease
// is live, so the supervisor's backoff naturally waits out the lease TTL —
// by the time the standby wins the lease, the old primary's epoch is
// strictly older and every replica (and every fenced dispatcher) rejects
// its writes with NOT_PRIMARY carrying a leader hint. Clients follow the
// hint (RpcClient classifies NOT_PRIMARY specially: no breaker charge, no
// blind retry) and traffic converges on the new primary.
//
// Promotion timeline (see DESIGN.md §5e for the full diagram):
//   detector declares primary dead -> supervisor runs the promotion recipe
//   -> replay the replicated log into live service state -> acquire the
//   primary lease (epoch bump) -> fence the local replica -> re-register
//   the service -> clients re-resolve / follow hints.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "clarens/host.h"
#include "common/clock.h"
#include "common/status.h"
#include "ha/replication.h"
#include "supervision/supervisor.h"
#include "telemetry/metrics.h"

namespace gae::ha {

/// Shared flag a host consults on every mutating call: am I the primary
/// for my service, and if not, who is? Thread-safe; one instance is shared
/// between the fencing interceptor and the promotion/deposal paths.
class PrimaryRole {
 public:
  bool is_primary() const;
  std::uint64_t epoch() const;
  /// "host:port" of the current leader ("" when unknown or when primary).
  std::string leader_hint() const;

  void make_primary(std::uint64_t epoch);
  void depose(std::string leader_hint);

 private:
  mutable std::mutex mutex_;
  bool primary_ = false;
  std::uint64_t epoch_ = 0;
  std::string leader_hint_;
};

/// "host:port" — the hint format NOT_PRIMARY faults embed ("leader=<hint>")
/// and RpcClient's redirect parses back out.
std::string format_leader_hint(const std::string& host, std::uint16_t port);

/// Installs a dispatcher interceptor that rejects any method matching one
/// of `mutating_prefixes` with NOT_PRIMARY (plus a leader hint when known)
/// while `role` is not primary. Read-only methods keep working on a
/// standby — stale reads are the documented trade.
void install_fencing(rpc::Dispatcher& dispatcher, std::shared_ptr<PrimaryRole> role,
                     std::vector<std::string> mutating_prefixes);

/// Everything promote_standby needs. `replay` folds the replicated log
/// into live service state (DBManager::recover, restore_from_journal, ...)
/// and runs before the lease is taken — a standby that cannot replay must
/// not win the lease.
struct PromotionOptions {
  clarens::ServiceRegistry* registry = nullptr;  // the arbiter (required)
  std::string service;                           // primary-lease name
  clarens::ServiceInfo self;                     // how the new primary registers
  SimDuration lease_ttl = 0;                     // 0 = registry default
  StandbyReplica* replica = nullptr;             // fenced after the epoch bump
  std::function<Status()> replay;                // rebuild live state from the log
  std::shared_ptr<PrimaryRole> role;             // flipped on success
  /// Runs after a successful promotion, before the service re-registers:
  /// drop read caches populated while standing by (jobmon's ReadCache,
  /// snapshot caches, ...) — entries recorded under the old primary's epoch
  /// must not serve on the new one.
  std::function<void()> drop_caches;
  telemetry::MetricsRegistry* metrics = nullptr; // ha.promotion_ms histogram
  const Clock* clock = nullptr;                  // times the promotion
};

struct Promotion {
  clarens::PrimaryLease lease;   // carries the new epoch
  clarens::Lease registration;   // the re-registered service lease
};

/// One promotion attempt. ALREADY_EXISTS while the old primary's lease is
/// still live — callers (the supervisor's restart backoff) retry until the
/// lease lapses; that wait is the fencing window.
Result<Promotion> promote_standby(const PromotionOptions& options);

/// Packages promote_standby as a supervisor restart recipe: manage() this
/// and attach the failure detector watching the primary's heartbeats, and
/// a dead verdict drives promotion with backoff until the lease is won.
/// `on_promoted` (optional) runs after a successful promotion — wire epoch
/// adoption into shippers, flip client endpoints, etc.
supervision::SupervisedService make_promotion_recipe(
    std::string watched_name, PromotionOptions options,
    std::function<void(const Promotion&)> on_promoted = {});

}  // namespace gae::ha
