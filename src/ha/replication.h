// Hot-standby replication for WAL-backed services (paper §4, Backup &
// Recovery, extended from crash-restart to failover).
//
// A primary streams the exact bytes its common::Wal writes — one framed
// record per storage append — to one or more standbys, which apply them to
// their own WalStorage. Because the unit of shipment is the Wal frame, any
// service whose durability already goes through a Wal (jobmon's DBManager,
// the estimator stores, steering's recovery journal) adopts replication by
// wrapping its storage in ReplicatedWalStorage; the service itself does not
// change.
//
// Consistency model: every batch is stamped with the primary's *epoch*, the
// fencing token granted by ServiceRegistry::acquire_primary. A standby
// rejects batches from any epoch older than the newest it has seen with
// NOT_PRIMARY, so a deposed primary that is alive but partitioned cannot
// corrupt state it no longer owns. In kSync mode ship_append() does not
// return until every standby has the record on its own storage — an
// acknowledged client write survives the loss of the primary. kAsync
// buffers and ships in batches, trading the tail of unshipped records for
// lower write latency.
//
// Batches carry an end-to-end CRC over the shipped bytes, checked by the
// standby *in addition to* the per-frame Wal CRCs, so a corrupting
// transport (or the hex codec the XML-RPC binding uses) cannot smuggle a
// damaged frame into a standby log.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/wal.h"
#include "steering/journal.h"
#include "telemetry/metrics.h"

namespace gae::ha {

/// Sync: an acknowledged write is durable on every standby before the
/// primary's append returns. Async: writes are buffered and shipped in
/// batches; a primary crash loses the unshipped tail.
enum class ReplicationMode { kSync, kAsync };

/// Lower-case hex codec: XML-RPC escapes only <>& so raw WAL bytes cannot
/// ride a string parameter; hex can.
std::string hex_encode(const std::string& bytes);
Result<std::string> hex_decode(const std::string& hex);

/// A standby's reply to append/snapshot/status: where it stands.
struct ReplicaAck {
  std::uint64_t epoch = 0;     // newest epoch the standby has seen
  std::uint64_t next_seq = 0;  // next record sequence it expects
};

/// One shipment: `records` consecutive Wal frames starting at `base_seq`,
/// concatenated into `bytes`, CRC'd end-to-end, stamped with the shipping
/// primary's epoch and address (the address becomes the standby's leader
/// hint for fenced-off callers).
struct AppendBatch {
  std::string stream;
  std::uint64_t epoch = 0;
  std::uint64_t base_seq = 0;
  std::uint64_t records = 0;
  std::string bytes;
  std::uint32_t crc = 0;
  std::string leader_host;
  std::uint16_t leader_port = 0;
};

/// Full-log resync: replaces the standby's storage wholesale. Shipped when
/// the primary snapshots (Wal::write_snapshot) and when a standby reports a
/// sequence gap it cannot fill from batches alone.
struct SnapshotInstall {
  std::string stream;
  std::uint64_t epoch = 0;
  std::uint64_t next_seq = 0;  // sequence state after installing `bytes`
  std::string bytes;
  std::uint32_t crc = 0;
  std::string leader_host;
  std::uint16_t leader_port = 0;
};

/// How shipped batches reach a standby — direct pointer for tests and the
/// failover bench, RPC for deployments (rpc_binding.h).
class ShipperTransport {
 public:
  virtual ~ShipperTransport() = default;
  virtual Result<ReplicaAck> append(const AppendBatch& batch) = 0;
  virtual Result<ReplicaAck> snapshot(const SnapshotInstall& snap) = 0;
  virtual Result<ReplicaAck> status(const std::string& stream) = 0;
  /// Pulls the standby's full log back — gap-resync in reverse, used by the
  /// self-healing repair path (storage/repair.h) when the *primary's* disk
  /// is the casualty. Defaulted so existing transports keep compiling;
  /// transports that can serve repair override it.
  virtual Result<SnapshotInstall> fetch(const std::string& stream) {
    return failed_precondition_error("transport cannot serve fetch: " + stream);
  }
};

/// The receiving half: applies shipped batches to its own WalStorage.
/// Thread-safe — RPC worker threads apply concurrently with a promotion.
class StandbyReplica {
 public:
  StandbyReplica(std::string stream, WalStorage* storage,
                 telemetry::MetricsRegistry* metrics = nullptr);

  const std::string& stream() const { return stream_; }

  /// Applies one batch. NOT_PRIMARY (with a leader hint) for stale epochs;
  /// INVALID_ARGUMENT for CRC or framing damage; FAILED_PRECONDITION for a
  /// sequence gap (the shipper answers with a snapshot). Batches that
  /// overlap already-applied sequences are idempotent — the applied prefix
  /// is skipped, never re-appended.
  Result<ReplicaAck> apply_append(const AppendBatch& batch);

  /// Replaces the standby log wholesale (primary snapshotted, or resync
  /// after a gap). Same epoch/CRC discipline as apply_append.
  Result<ReplicaAck> install_snapshot(const SnapshotInstall& snap);

  ReplicaAck status() const;

  /// Exports the standby's full log as a verified image (CRC stamped, epoch
  /// and next_seq filled in) — the donor side of primary repair. The caller
  /// re-verifies the CRC and per-frame framing before installing.
  Result<SnapshotInstall> export_log() const;

  /// Fences every epoch below `new_epoch`: called on promotion, after the
  /// standby replayed its log into live service state. FAILED_PRECONDITION
  /// unless the epoch strictly advances.
  Status promote(std::uint64_t new_epoch);

  std::uint64_t epoch() const;
  std::uint64_t next_seq() const;
  /// "host:port" of the primary whose batches this standby last accepted.
  std::string leader_hint() const;
  /// Batches rejected for carrying an epoch older than the newest seen.
  std::uint64_t stale_epoch_rejections() const;

 private:
  std::string stream_;
  WalStorage* storage_;
  mutable std::mutex mutex_;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_seq_ = 0;
  std::string leader_hint_;
  std::uint64_t stale_epoch_rejections_ = 0;
  telemetry::Counter* rejections_counter_ = nullptr;
  telemetry::Gauge* next_seq_gauge_ = nullptr;
};

struct ShipperOptions {
  ReplicationMode mode = ReplicationMode::kSync;
  /// Async flush thresholds: a buffered batch ships once either is reached
  /// (or flush() is called). Sync mode ships every append immediately.
  std::size_t batch_max_records = 64;
  std::size_t batch_max_bytes = 64 * 1024;
  /// Stamped on every batch; becomes the standby's leader hint.
  std::string leader_host;
  std::uint16_t leader_port = 0;
  /// Keeps ha.<stream>.{replication_lag,epoch} gauges and shipment counters
  /// current. Must outlive the shipper.
  telemetry::MetricsRegistry* metrics = nullptr;
};

struct ShipperStats {
  std::uint64_t batches_shipped = 0;
  std::uint64_t records_shipped = 0;
  std::uint64_t snapshots_shipped = 0;
  std::uint64_t ship_failures = 0;
  /// Gap responses answered with a full-log resync.
  std::uint64_t resyncs = 0;
};

/// The sending half: assigns each appended frame a sequence number, batches
/// per mode, and ships to every standby, retaining frames until all
/// standbys acknowledge them. Thread-safe.
class LogShipper {
 public:
  explicit LogShipper(std::string stream, ShipperOptions options = {});

  const std::string& stream() const { return stream_; }

  void add_standby(ShipperTransport* transport);
  std::size_t standby_count() const;

  /// Fencing token stamped on every shipment (from acquire_primary).
  void set_epoch(std::uint64_t epoch);
  std::uint64_t epoch() const;

  /// Full-log source for gap resyncs (ReplicatedWalStorage wires this to
  /// its inner storage). Without one, a gap is a permanent ship failure.
  void set_resync_source(std::function<Result<std::string>()> source);

  /// Ships one Wal frame (`frame_bytes` must be exactly one encoded frame).
  /// Sync mode: returns only once every standby has it durably, and any
  /// standby's refusal fails the append — the caller must not acknowledge
  /// the write. Async: buffers and returns OK (failures surface in stats
  /// and on flush), except NOT_PRIMARY which always surfaces: a deposed
  /// primary must stop immediately, not at the next batch boundary.
  Status ship_append(const std::string& frame_bytes);

  /// Ships a full-log replacement (the primary snapshotted). Drops any
  /// buffered frames — the snapshot subsumes them.
  Status ship_replace(const std::string& log_bytes);

  /// Ships everything buffered (async mode's durability point).
  Status flush();

  /// True once any standby refused a shipment as NOT_PRIMARY: a newer
  /// epoch exists and this primary must stop writing.
  bool deposed() const;
  /// Runs (outside the shipper lock) when deposed flips true.
  void set_on_deposed(std::function<void()> fn);

  std::uint64_t next_seq() const;
  /// Lowest sequence every standby has acknowledged.
  std::uint64_t acked_seq() const;
  ShipperStats stats() const;

 private:
  struct Standby {
    ShipperTransport* transport = nullptr;
    std::uint64_t acked_seq = 0;
  };

  /// Ships pending frames to every lagging standby. Lock held.
  Status flush_locked();
  Status ship_to_locked(Standby& standby);
  Status resync_locked(Standby& standby);
  std::uint64_t min_acked_locked() const;
  void update_lag_locked();
  void note_deposed_locked(std::function<void()>& fire);

  std::string stream_;
  ShipperOptions options_;
  mutable std::mutex mutex_;
  std::vector<Standby> standbys_;
  /// Frames not yet acknowledged by every standby; frames_[0] has sequence
  /// frames_base_seq_.
  std::deque<std::string> frames_;
  std::uint64_t frames_base_seq_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t buffered_bytes_ = 0;
  std::uint64_t epoch_ = 0;
  bool deposed_ = false;
  std::function<void()> on_deposed_;
  std::function<Result<std::string>()> resync_source_;
  ShipperStats stats_;
  telemetry::Gauge* lag_gauge_ = nullptr;
  telemetry::Gauge* epoch_gauge_ = nullptr;
  telemetry::Counter* batches_counter_ = nullptr;
  telemetry::Counter* failures_counter_ = nullptr;
};

/// Test/bench transport: delivers straight into a StandbyReplica.
class LocalShipperTransport final : public ShipperTransport {
 public:
  explicit LocalShipperTransport(StandbyReplica* replica) : replica_(replica) {}

  Result<ReplicaAck> append(const AppendBatch& batch) override {
    return replica_->apply_append(batch);
  }
  Result<ReplicaAck> snapshot(const SnapshotInstall& snap) override {
    return replica_->install_snapshot(snap);
  }
  Result<ReplicaAck> status(const std::string&) override {
    return replica_->status();
  }
  Result<SnapshotInstall> fetch(const std::string&) override {
    return replica_->export_log();
  }

 private:
  StandbyReplica* replica_;
};

/// Drop-in WalStorage that replicates every append/replace through a
/// LogShipper. Wrap a service's real storage in one of these and the
/// service replicates without knowing it:
///
///   MemoryWalStorage inner;
///   LogShipper shipper("jobmon", {...});
///   ReplicatedWalStorage replicated(&inner, &shipper);
///   Wal wal(&replicated);            // hand to DBManager as usual
///
/// In sync mode a failed shipment fails the append, so the service never
/// acknowledges a write the standby does not hold.
class ReplicatedWalStorage final : public WalStorage {
 public:
  /// Wires `shipper`'s resync source to `inner` (a standby that reports a
  /// gap is healed with inner's full contents).
  ReplicatedWalStorage(WalStorage* inner, LogShipper* shipper);

  Status append(const std::string& bytes) override;
  Result<std::string> read_all() const override { return inner_->read_all(); }
  Status replace(const std::string& bytes) override;
  Status sync() override { return inner_->sync(); }
  bool writable() const override { return inner_->writable(); }
  void make_writable() override { inner_->make_writable(); }

 private:
  WalStorage* inner_;
  LogShipper* shipper_;
};

/// JournalSink adapter for the steering recovery journal: each line lands
/// in the inner sink (the service's own durability) and ships to standbys
/// as one Wal frame whose payload is the line. A promoted standby decodes
/// its log back into lines and replays them through restore_from_journal.
class ReplicatedJournalSink final : public steering::JournalSink {
 public:
  ReplicatedJournalSink(steering::JournalSink* inner, LogShipper* shipper);

  Status append(const std::string& line) override;

 private:
  steering::JournalSink* inner_;
  LogShipper* shipper_;
  /// Framed copy of every line shipped, kept as the shipper's resync
  /// source (JournalSink has no read-back).
  std::string framed_;
  std::mutex mutex_;
};

/// Decodes a standby journal log (frames written by ReplicatedJournalSink)
/// back into the journal lines the steering service replays.
Result<std::vector<std::string>> journal_lines_from_log(const std::string& log_bytes);

}  // namespace gae::ha
