#include "ha/rpc_binding.h"

namespace gae::ha {

using rpc::Array;
using rpc::CallContext;
using rpc::Struct;
using rpc::Value;

void StandbySet::add(StandbyReplica* replica) {
  if (replica) replicas_[replica->stream()] = replica;
}

StandbyReplica* StandbySet::find(const std::string& stream) const {
  auto it = replicas_.find(stream);
  return it == replicas_.end() ? nullptr : it->second;
}

namespace {

Value ack_to_value(const ReplicaAck& ack) {
  Struct out;
  out["epoch"] = Value(static_cast<std::int64_t>(ack.epoch));
  out["next_seq"] = Value(static_cast<std::int64_t>(ack.next_seq));
  return Value(std::move(out));
}

}  // namespace

void register_ha_methods(clarens::ClarensHost& host, StandbySet& standbys) {
  auto& d = host.dispatcher();
  StandbySet* set = &standbys;

  // ha.append(stream, epoch, base_seq, records, hex_bytes, crc,
  //           leader_host, leader_port) -> {epoch, next_seq}
  d.register_method(
      "ha.append",
      [set](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 8 || !params[0].is_string() || !params[1].is_number() ||
            !params[2].is_number() || !params[3].is_number() || !params[4].is_string() ||
            !params[5].is_number() || !params[6].is_string() || !params[7].is_number()) {
          return invalid_argument_error(
              "ha.append(stream, epoch, base_seq, records, hex_bytes, crc, "
              "leader_host, leader_port)");
        }
        StandbyReplica* replica = set->find(params[0].as_string());
        if (!replica) {
          return not_found_error("not a standby for stream: " + params[0].as_string());
        }
        auto bytes = hex_decode(params[4].as_string());
        if (!bytes.is_ok()) return bytes.status();
        AppendBatch batch;
        batch.stream = params[0].as_string();
        batch.epoch = static_cast<std::uint64_t>(params[1].as_int());
        batch.base_seq = static_cast<std::uint64_t>(params[2].as_int());
        batch.records = static_cast<std::uint64_t>(params[3].as_int());
        batch.bytes = std::move(bytes).value();
        batch.crc = static_cast<std::uint32_t>(params[5].as_int());
        batch.leader_host = params[6].as_string();
        batch.leader_port = static_cast<std::uint16_t>(params[7].as_int());
        auto ack = replica->apply_append(batch);
        if (!ack.is_ok()) return ack.status();
        return ack_to_value(ack.value());
      });

  // ha.snapshot(stream, epoch, next_seq, hex_bytes, crc,
  //             leader_host, leader_port) -> {epoch, next_seq}
  d.register_method(
      "ha.snapshot",
      [set](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 7 || !params[0].is_string() || !params[1].is_number() ||
            !params[2].is_number() || !params[3].is_string() || !params[4].is_number() ||
            !params[5].is_string() || !params[6].is_number()) {
          return invalid_argument_error(
              "ha.snapshot(stream, epoch, next_seq, hex_bytes, crc, "
              "leader_host, leader_port)");
        }
        StandbyReplica* replica = set->find(params[0].as_string());
        if (!replica) {
          return not_found_error("not a standby for stream: " + params[0].as_string());
        }
        auto bytes = hex_decode(params[3].as_string());
        if (!bytes.is_ok()) return bytes.status();
        SnapshotInstall snap;
        snap.stream = params[0].as_string();
        snap.epoch = static_cast<std::uint64_t>(params[1].as_int());
        snap.next_seq = static_cast<std::uint64_t>(params[2].as_int());
        snap.bytes = std::move(bytes).value();
        snap.crc = static_cast<std::uint32_t>(params[4].as_int());
        snap.leader_host = params[5].as_string();
        snap.leader_port = static_cast<std::uint16_t>(params[6].as_int());
        auto ack = replica->install_snapshot(snap);
        if (!ack.is_ok()) return ack.status();
        return ack_to_value(ack.value());
      });

  // ha.status(stream) -> {epoch, next_seq}
  d.register_method(
      "ha.status",
      [set](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 1 || !params[0].is_string()) {
          return invalid_argument_error("ha.status(stream)");
        }
        StandbyReplica* replica = set->find(params[0].as_string());
        if (!replica) {
          return not_found_error("not a standby for stream: " + params[0].as_string());
        }
        return ack_to_value(replica->status());
      });

  // ha.fetch(stream) -> {epoch, next_seq, hex_bytes, crc} — the standby
  // exports its verified log so a damaged primary can repair itself.
  d.register_method(
      "ha.fetch",
      [set](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 1 || !params[0].is_string()) {
          return invalid_argument_error("ha.fetch(stream)");
        }
        StandbyReplica* replica = set->find(params[0].as_string());
        if (!replica) {
          return not_found_error("not a standby for stream: " + params[0].as_string());
        }
        auto snap = replica->export_log();
        if (!snap.is_ok()) return snap.status();
        Struct out;
        out["epoch"] = Value(static_cast<std::int64_t>(snap.value().epoch));
        out["next_seq"] = Value(static_cast<std::int64_t>(snap.value().next_seq));
        out["hex_bytes"] = Value(hex_encode(snap.value().bytes));
        out["crc"] = Value(static_cast<std::int64_t>(snap.value().crc));
        return Value(std::move(out));
      });
}

RpcShipperTransport::RpcShipperTransport(rpc::RpcClient* client, int deadline_ms)
    : client_(client) {
  options_.deadline_ms = deadline_ms;
  options_.idempotent = true;
  options_.tier = Criticality::kControl;
}

Result<ReplicaAck> RpcShipperTransport::parse_ack(Result<rpc::Value> reply) {
  if (!reply.is_ok()) return reply.status();
  const Value& v = reply.value();
  if (!v.is_struct()) return internal_error("malformed ha ack: " + v.debug_string());
  ReplicaAck ack;
  ack.epoch = static_cast<std::uint64_t>(v.get_int("epoch", 0));
  ack.next_seq = static_cast<std::uint64_t>(v.get_int("next_seq", 0));
  return ack;
}

Result<ReplicaAck> RpcShipperTransport::append(const AppendBatch& batch) {
  Array params;
  params.push_back(Value(batch.stream));
  params.push_back(Value(static_cast<std::int64_t>(batch.epoch)));
  params.push_back(Value(static_cast<std::int64_t>(batch.base_seq)));
  params.push_back(Value(static_cast<std::int64_t>(batch.records)));
  params.push_back(Value(hex_encode(batch.bytes)));
  params.push_back(Value(static_cast<std::int64_t>(batch.crc)));
  params.push_back(Value(batch.leader_host));
  params.push_back(Value(static_cast<std::int64_t>(batch.leader_port)));
  return parse_ack(client_->call("ha.append", params, options_));
}

Result<ReplicaAck> RpcShipperTransport::snapshot(const SnapshotInstall& snap) {
  Array params;
  params.push_back(Value(snap.stream));
  params.push_back(Value(static_cast<std::int64_t>(snap.epoch)));
  params.push_back(Value(static_cast<std::int64_t>(snap.next_seq)));
  params.push_back(Value(hex_encode(snap.bytes)));
  params.push_back(Value(static_cast<std::int64_t>(snap.crc)));
  params.push_back(Value(snap.leader_host));
  params.push_back(Value(static_cast<std::int64_t>(snap.leader_port)));
  return parse_ack(client_->call("ha.snapshot", params, options_));
}

Result<ReplicaAck> RpcShipperTransport::status(const std::string& stream) {
  Array params;
  params.push_back(Value(stream));
  return parse_ack(client_->call("ha.status", params, options_));
}

Result<SnapshotInstall> RpcShipperTransport::fetch(const std::string& stream) {
  Array params;
  params.push_back(Value(stream));
  auto reply = client_->call("ha.fetch", params, options_);
  if (!reply.is_ok()) return reply.status();
  const Value& v = reply.value();
  if (!v.is_struct()) {
    return internal_error("malformed ha.fetch reply: " + v.debug_string());
  }
  auto bytes = hex_decode(v.get_string("hex_bytes", ""));
  if (!bytes.is_ok()) return bytes.status();
  SnapshotInstall snap;
  snap.stream = stream;
  snap.epoch = static_cast<std::uint64_t>(v.get_int("epoch", 0));
  snap.next_seq = static_cast<std::uint64_t>(v.get_int("next_seq", 0));
  snap.bytes = std::move(bytes).value();
  snap.crc = static_cast<std::uint32_t>(v.get_int("crc", 0));
  return snap;
}

}  // namespace gae::ha
