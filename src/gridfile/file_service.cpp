#include "gridfile/file_service.h"

#include <algorithm>

namespace gae::gridfile {

using rpc::Array;
using rpc::CallContext;
using rpc::Struct;
using rpc::Value;

std::string synthesize_content(const std::string& name, std::uint64_t offset,
                               std::size_t length) {
  // FNV-1a of the name seeds a per-file stream; each byte mixes the offset
  // so arbitrary chunk boundaries produce identical bytes.
  std::uint64_t seed = 1469598103934665603ULL;
  for (unsigned char c : name) {
    seed ^= c;
    seed *= 1099511628211ULL;
  }
  std::string out;
  out.resize(length);
  for (std::size_t i = 0; i < length; ++i) {
    std::uint64_t x = seed ^ (offset + i);
    x *= 0x9E3779B97F4A7C15ULL;
    x ^= x >> 29;
    // Printable range keeps the wire format friendly to XML.
    out[i] = static_cast<char>('a' + (x % 26));
  }
  return out;
}

void register_file_methods(clarens::ClarensHost& host, sim::Grid& grid,
                           const std::string& site) {
  auto& d = host.dispatcher();
  sim::Grid* grid_ptr = &grid;

  d.register_method(
      "file.list", [grid_ptr, site](const Array& params, const CallContext&) -> Result<Value> {
        const std::string prefix =
            params.empty() ? "" : (params[0].is_string() ? params[0].as_string() : "");
        Array out;
        for (const auto& [name, bytes] : grid_ptr->site(site).files()) {
          if (name.rfind(prefix, 0) != 0) continue;
          Struct s;
          s["name"] = Value(name);
          s["bytes"] = Value(static_cast<std::int64_t>(bytes));
          out.emplace_back(std::move(s));
        }
        return Value(std::move(out));
      });

  d.register_method(
      "file.stat", [grid_ptr, site](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 1 || !params[0].is_string()) {
          return invalid_argument_error("file.stat(name)");
        }
        auto size = grid_ptr->site(site).file_size(params[0].as_string());
        if (!size.is_ok()) return size.status();
        Struct s;
        s["name"] = params[0];
        s["bytes"] = Value(static_cast<std::int64_t>(size.value()));
        return Value(std::move(s));
      });

  d.register_method(
      "file.read", [grid_ptr, site](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 3 || !params[0].is_string() || !params[1].is_number() ||
            !params[2].is_number()) {
          return invalid_argument_error("file.read(name, offset, length)");
        }
        const std::string& name = params[0].as_string();
        auto size = grid_ptr->site(site).file_size(name);
        if (!size.is_ok()) return size.status();
        const auto offset = static_cast<std::uint64_t>(params[1].as_double());
        auto length = static_cast<std::uint64_t>(params[2].as_double());
        if (params[1].as_double() < 0 || params[2].as_double() < 0) {
          return invalid_argument_error("file.read: offset/length must be >= 0");
        }
        if (offset > size.value()) {
          return invalid_argument_error("file.read: offset beyond end of file");
        }
        length = std::min({length, size.value() - offset, kMaxReadChunk});
        Struct s;
        s["data"] = Value(synthesize_content(name, offset, static_cast<std::size_t>(length)));
        s["bytes"] = Value(static_cast<std::int64_t>(length));
        s["eof"] = Value(offset + length >= size.value());
        return Value(std::move(s));
      });

  host.registry().register_service(
      {"file@" + site, host.name(), host.port(), "xmlrpc", {}, 0});
}

}  // namespace gae::gridfile
