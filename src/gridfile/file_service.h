// Remote file access over the Clarens host — the "web interface" the
// steering service publishes execution state to (§4.2.4: "This execution
// state is made available for download"). Serves one site's storage element:
//
//   file.list([prefix])            -> [{name, bytes}, ...]
//   file.stat(name)                -> {name, bytes}
//   file.read(name, offset, len)   -> {data, bytes, eof}
//
// The storage elements are simulated (names + sizes), so reads return
// deterministic synthetic content: byte i of file f is hash(f, i). Chunked
// reads therefore compose exactly like reads of a real file.
#pragma once

#include <cstdint>
#include <string>

#include "clarens/host.h"
#include "sim/grid.h"

namespace gae::gridfile {

/// Maximum bytes one file.read call returns.
inline constexpr std::uint64_t kMaxReadChunk = 1 << 20;

/// Deterministic synthetic content of `name` at [offset, offset+length).
std::string synthesize_content(const std::string& name, std::uint64_t offset,
                               std::size_t length);

/// Registers the file.* methods serving `site`'s storage element. The grid
/// must outlive the host.
void register_file_methods(clarens::ClarensHost& host, sim::Grid& grid,
                           const std::string& site);

}  // namespace gae::gridfile
