#include "estimators/estimate_db.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/kvcodec.h"
#include "common/log.h"

namespace gae::estimators {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// WAL payloads: "put <task> <value>" / "del <task>", task percent-escaped.
std::string encode_put(const std::string& task_id, double value) {
  return "put " + kv::escape(task_id) + " " + fmt_double(value);
}
std::string encode_del(const std::string& task_id) {
  return "del " + kv::escape(task_id);
}

}  // namespace

void EstimateDatabase::put(const std::string& task_id, double estimated_runtime_seconds) {
  if (health_ && !health_->writable()) {
    GAE_LOG_WARN << "estimate db: dropping put for " << task_id << " ("
                 << storage::store_state_name(health_->state()) << ")";
    return;
  }
  estimates_[task_id] = estimated_runtime_seconds;
  if (wal_) {
    const Status s = wal_->append(encode_put(task_id, estimated_runtime_seconds));
    if (!s.is_ok()) {
      GAE_LOG_WARN << "estimate db wal append failed: " << s.message();
      if (health_) health_->mark_read_only("wal append failed: " + s.message());
    }
  }
}

void EstimateDatabase::erase(const std::string& task_id) {
  if (health_ && !health_->writable()) {
    GAE_LOG_WARN << "estimate db: dropping erase for " << task_id << " ("
                 << storage::store_state_name(health_->state()) << ")";
    return;
  }
  if (estimates_.erase(task_id) > 0 && wal_) {
    const Status s = wal_->append(encode_del(task_id));
    if (!s.is_ok()) {
      GAE_LOG_WARN << "estimate db wal append failed: " << s.message();
      if (health_) health_->mark_read_only("wal append failed: " + s.message());
    }
  }
}

Result<double> EstimateDatabase::get(const std::string& task_id) const {
  if (health_ && !health_->readable()) {
    return unavailable_error("estimate db quarantined: " + health_->reason());
  }
  auto it = estimates_.find(task_id);
  if (it == estimates_.end()) return not_found_error("no estimate for task " + task_id);
  return it->second;
}

std::string EstimateDatabase::export_state() const {
  std::string out;
  for (const auto& [task_id, value] : estimates_) {
    out += encode_put(task_id, value);
    out += '\n';
  }
  return out;
}

Status EstimateDatabase::save_snapshot() {
  if (!wal_) return failed_precondition_error("estimate db has no wal");
  return wal_->write_snapshot(export_state());
}

Status EstimateDatabase::recover() {
  if (!wal_) return failed_precondition_error("estimate db has no wal");
  RecoverStats stats;
  auto read = wal_->recover(&stats);
  if (!read.is_ok()) return read.status();
  if (health_) health_->note_recover(stats);
  const WalReadResult& log = read.value();

  std::map<std::string, double> recovered;
  auto apply = [&recovered](const std::string& line) -> Status {
    std::istringstream in(line);
    std::string op, task;
    if (!(in >> op >> task)) return invalid_argument_error("bad estimate record: " + line);
    auto unescaped = kv::unescape(task);
    if (!unescaped.is_ok()) return unescaped.status();
    if (op == "put") {
      std::string value;
      if (!(in >> value)) return invalid_argument_error("put without value: " + line);
      recovered[unescaped.value()] = std::strtod(value.c_str(), nullptr);
    } else if (op == "del") {
      recovered.erase(unescaped.value());
    } else {
      return invalid_argument_error("unknown estimate op: " + op);
    }
    return Status::ok();
  };

  std::size_t at = log.replay_start();
  if (at < log.records.size() && log.records[at].type == WalRecord::Type::kSnapshot) {
    std::istringstream lines(log.records[at].payload);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      const Status s = apply(line);
      if (!s.is_ok()) return s;
    }
    ++at;
  }
  for (; at < log.records.size(); ++at) {
    const Status s = apply(log.records[at].payload);
    if (!s.is_ok()) return s;
  }
  estimates_ = std::move(recovered);
  return Status::ok();
}

}  // namespace gae::estimators
