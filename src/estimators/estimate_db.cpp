#include "estimators/estimate_db.h"

namespace gae::estimators {

void EstimateDatabase::put(const std::string& task_id, double estimated_runtime_seconds) {
  estimates_[task_id] = estimated_runtime_seconds;
}

Result<double> EstimateDatabase::get(const std::string& task_id) const {
  auto it = estimates_.find(task_id);
  if (it == estimates_.end()) return not_found_error("no estimate for task " + task_id);
  return it->second;
}

}  // namespace gae::estimators
