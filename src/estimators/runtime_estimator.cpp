#include "estimators/runtime_estimator.h"

#include <cmath>

#include "common/stats.h"

namespace gae::estimators {

const char* estimator_kind_name(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kMean: return "mean";
    case EstimatorKind::kLinearRegression: return "linreg";
    case EstimatorKind::kHybrid: return "hybrid";
  }
  return "?";
}

RuntimeEstimator::RuntimeEstimator(std::shared_ptr<TaskHistoryStore> history,
                                   SimilarityMatcher matcher,
                                   RuntimeEstimatorOptions options)
    : history_(std::move(history)), matcher_(std::move(matcher)), options_(options) {
  if (!history_) history_ = std::make_shared<TaskHistoryStore>();
}

Result<RuntimeEstimate> RuntimeEstimator::estimate(
    const std::map<std::string, std::string>& attributes) const {
  const auto match = matcher_.find_similar(*history_, attributes, options_.min_matches);
  if (match.entries.empty()) {
    return failed_precondition_error("no task history available for estimation");
  }

  RunningStats stats;
  for (const HistoryEntry* e : match.entries) stats.add(e->runtime_seconds);

  RuntimeEstimate est;
  est.samples = stats.count();
  est.template_name = match.template_name;
  est.stddev = stats.stddev();
  est.seconds = stats.mean();
  est.used = EstimatorKind::kMean;

  const bool want_regression = options_.kind == EstimatorKind::kLinearRegression ||
                               options_.kind == EstimatorKind::kHybrid;
  auto attr_it = attributes.find(options_.regression_attribute);
  if (want_regression && attr_it != attributes.end() && stats.count() >= 2) {
    double x_target = 0.0;
    try {
      x_target = std::stod(attr_it->second);
    } catch (...) {
      return est;  // attribute not numeric: the mean stands
    }
    LinearRegression reg;
    for (const HistoryEntry* e : match.entries) {
      auto xe = e->attributes.find(options_.regression_attribute);
      if (xe == e->attributes.end()) continue;
      try {
        reg.add(std::stod(xe->second), e->runtime_seconds);
      } catch (...) {
        // skip entries with non-numeric attribute values
      }
    }
    const LinearFit fit = reg.fit();
    const bool take_fit =
        fit.valid && (options_.kind == EstimatorKind::kLinearRegression ||
                      fit.r_squared >= options_.min_r_squared);
    if (take_fit) {
      const double predicted = fit.predict(x_target);
      if (predicted > 0 && std::isfinite(predicted)) {
        est.seconds = predicted;
        est.used = EstimatorKind::kLinearRegression;
      }
    }
  }
  return est;
}

Result<RuntimeEstimate> RuntimeEstimator::estimate_cheap() const {
  RunningStats stats;
  for (const HistoryEntry& e : history_->entries()) {
    if (e.successful) stats.add(e.runtime_seconds);
  }
  if (stats.count() == 0) {
    return failed_precondition_error("no task history available for estimation");
  }
  RuntimeEstimate est;
  est.samples = stats.count();
  est.template_name = "*";
  est.used = EstimatorKind::kMean;
  est.seconds = stats.mean();
  est.stddev = stats.stddev();
  return est;
}

void RuntimeEstimator::record(const std::map<std::string, std::string>& attributes,
                              double runtime_seconds, SimTime at, bool successful) {
  HistoryEntry entry;
  entry.attributes = attributes;
  entry.runtime_seconds = runtime_seconds;
  entry.recorded_at = at;
  entry.successful = successful;
  history_->add(std::move(entry));
}

}  // namespace gae::estimators
