// Similarity templates for history-based prediction.
//
// A template names the attributes two tasks must share to count as
// "similar" (Smith/Taylor/Foster-style greedy template search): templates
// are tried most-specific first, and the first one yielding enough matches
// defines the similar set.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "estimators/history.h"

namespace gae::estimators {

/// One definition of "similar": these attribute keys must match exactly.
struct SimilarityTemplate {
  std::vector<std::string> keys;

  std::string name() const;  // "executable+login+queue" etc.; "(any)" if empty

  bool matches(const std::map<std::string, std::string>& a,
               const std::map<std::string, std::string>& b) const;
};

/// The default hierarchy, most specific first. The last, empty template
/// matches everything, so a non-empty history always yields an estimate.
std::vector<SimilarityTemplate> default_templates();

class SimilarityMatcher {
 public:
  explicit SimilarityMatcher(std::vector<SimilarityTemplate> templates = default_templates());

  struct Match {
    std::vector<const HistoryEntry*> entries;
    std::string template_name;
  };

  /// Entries similar to `attributes` under the most specific template that
  /// produces at least `min_matches` successful entries. Falls back towards
  /// less specific templates; returns an empty match only for empty history.
  Match find_similar(const TaskHistoryStore& history,
                     const std::map<std::string, std::string>& attributes,
                     std::size_t min_matches) const;

  const std::vector<SimilarityTemplate>& templates() const { return templates_; }

 private:
  std::vector<SimilarityTemplate> templates_;
};

}  // namespace gae::estimators
