#include "estimators/similarity.h"

namespace gae::estimators {

std::string SimilarityTemplate::name() const {
  if (keys.empty()) return "(any)";
  std::string out;
  for (const auto& k : keys) {
    if (!out.empty()) out += "+";
    out += k;
  }
  return out;
}

bool SimilarityTemplate::matches(const std::map<std::string, std::string>& a,
                                 const std::map<std::string, std::string>& b) const {
  for (const auto& key : keys) {
    auto ia = a.find(key);
    auto ib = b.find(key);
    // A task missing one of the template's attributes cannot be matched by
    // that template.
    if (ia == a.end() || ib == b.end() || ia->second != ib->second) return false;
  }
  return true;
}

std::vector<SimilarityTemplate> default_templates() {
  // Node count stays in the hierarchy as long as possible: runtimes of the
  // same application scale strongly with the nodes it ran on, so mixing node
  // counts degrades an otherwise good match set.
  return {
      {{"executable", "login", "queue", "nodes"}},
      {{"executable", "login", "nodes"}},
      {{"executable", "nodes"}},
      {{"executable", "login", "queue"}},
      {{"executable", "login"}},
      {{"executable"}},
      {{"login", "queue"}},
      {{"login"}},
      {{"queue"}},
      {{}},
  };
}

SimilarityMatcher::SimilarityMatcher(std::vector<SimilarityTemplate> templates)
    : templates_(std::move(templates)) {
  if (templates_.empty()) templates_.push_back(SimilarityTemplate{});
}

SimilarityMatcher::Match SimilarityMatcher::find_similar(
    const TaskHistoryStore& history, const std::map<std::string, std::string>& attributes,
    std::size_t min_matches) const {
  if (min_matches == 0) min_matches = 1;
  Match best;
  for (const auto& tmpl : templates_) {
    std::vector<const HistoryEntry*> matched;
    for (const auto& entry : history.entries()) {
      if (entry.successful && tmpl.matches(attributes, entry.attributes)) {
        matched.push_back(&entry);
      }
    }
    if (matched.size() >= min_matches) {
      best.entries = std::move(matched);
      best.template_name = tmpl.name();
      return best;
    }
    // Remember the best-effort candidate in case nothing reaches min_matches.
    if (matched.size() > best.entries.size()) {
      best.entries = std::move(matched);
      best.template_name = tmpl.name();
    }
  }
  return best;
}

}  // namespace gae::estimators
