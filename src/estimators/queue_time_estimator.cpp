#include "estimators/queue_time_estimator.h"

#include <algorithm>

namespace gae::estimators {

QueueTimeEstimator::QueueTimeEstimator(const exec::ExecutionService& service,
                                       std::shared_ptr<const EstimateDatabase> estimates,
                                       QueueTimeOptions options)
    : service_(service), estimates_(std::move(estimates)), options_(options) {
  if (!estimates_) estimates_ = std::make_shared<EstimateDatabase>();
}

Result<QueueTimeEstimate> QueueTimeEstimator::estimate(const std::string& task_id) const {
  auto target = service_.query(task_id);
  if (!target.is_ok()) return target.status();
  const exec::TaskInfo& info = target.value();

  QueueTimeEstimate out;
  // A task that already left the queue waits no further.
  if (info.state != exec::TaskState::kQueued) return out;

  for (const exec::TaskInfo& other : service_.list_tasks()) {
    if (other.spec.id == task_id || exec::is_terminal(other.state)) continue;
    if (other.state == exec::TaskState::kSuspended) continue;  // holds no node, waits idle

    bool counts = other.spec.priority > info.spec.priority;
    if (!counts && options_.include_equal_priority_ahead &&
        other.spec.priority == info.spec.priority &&
        other.state == exec::TaskState::kQueued) {
      counts = other.queue_position >= 0 && info.queue_position >= 0 &&
               other.queue_position < info.queue_position;
    }
    // Running/staging tasks occupy nodes regardless of priority relation:
    // the paper's step (b) pulls elapsed runtimes "from the queue", which in
    // Condor terms includes the running jobs.
    if (!counts && (other.state == exec::TaskState::kRunning ||
                    other.state == exec::TaskState::kStaging)) {
      counts = true;
    }
    if (!counts) continue;

    const double estimated =
        estimates_->get(other.spec.id).value_or(options_.fallback_estimate_seconds);
    const double remaining = std::max(0.0, estimated - other.cpu_seconds_used);
    out.seconds += remaining;
    ++out.tasks_ahead;
  }

  if (options_.divide_by_nodes) {
    // Pool size = occupied nodes + free nodes (not exposed directly).
    std::size_t occupied = 0;
    for (const exec::TaskInfo& t : service_.list_tasks()) {
      if (t.state == exec::TaskState::kRunning || t.state == exec::TaskState::kStaging) {
        ++occupied;
      }
    }
    const std::size_t pool = std::max<std::size_t>(1, occupied + service_.free_nodes());
    out.seconds /= static_cast<double>(pool);
  }
  return out;
}

}  // namespace gae::estimators
