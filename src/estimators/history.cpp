#include "estimators/history.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/kvcodec.h"
#include "common/log.h"

namespace gae::estimators {

namespace {
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}
}  // namespace

std::string encode_history_entry(const HistoryEntry& entry) {
  std::map<std::string, std::string> f;
  f["rt"] = fmt_double(entry.runtime_seconds);
  f["at"] = std::to_string(entry.recorded_at);
  f["ok"] = entry.successful ? "1" : "0";
  for (const auto& [k, v] : entry.attributes) f["a." + k] = v;
  return kv::encode(f);
}

Result<HistoryEntry> decode_history_entry(const std::string& line) {
  auto fields = kv::decode(line);
  if (!fields.is_ok()) return fields.status();
  HistoryEntry entry;
  for (const auto& [key, value] : fields.value()) {
    if (key == "rt") {
      entry.runtime_seconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "at") {
      entry.recorded_at = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "ok") {
      entry.successful = value == "1";
    } else if (key.rfind("a.", 0) == 0) {
      entry.attributes[key.substr(2)] = value;
    } else {
      return invalid_argument_error("unknown history field: " + key);
    }
  }
  return entry;
}

void TaskHistoryStore::add(HistoryEntry entry) {
  if (health_ && !health_->writable()) {
    GAE_LOG_WARN << "history store: dropping sample ("
                 << storage::store_state_name(health_->state()) << ")";
    return;
  }
  if (wal_) {
    const Status s = wal_->append(encode_history_entry(entry));
    if (!s.is_ok()) {
      GAE_LOG_WARN << "history wal append failed: " << s.message();
      if (health_) health_->mark_read_only("wal append failed: " + s.message());
    }
  }
  entries_.push_back(std::move(entry));
  if (max_entries_ > 0 && entries_.size() > max_entries_) {
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(entries_.size() - max_entries_));
  }
}

std::string TaskHistoryStore::export_state() const {
  std::string out;
  for (const auto& entry : entries_) {
    out += encode_history_entry(entry);
    out += '\n';
  }
  return out;
}

Status TaskHistoryStore::save_snapshot() {
  if (!wal_) return failed_precondition_error("history store has no wal");
  return wal_->write_snapshot(export_state());
}

Status TaskHistoryStore::recover() {
  if (!wal_) return failed_precondition_error("history store has no wal");
  RecoverStats stats;
  auto read = wal_->recover(&stats);
  if (!read.is_ok()) return read.status();
  if (health_) health_->note_recover(stats);
  const WalReadResult& log = read.value();

  // Replay into a detached store so a mid-replay failure leaves this one
  // untouched, then adopt the result (add() applies max_entries trimming).
  TaskHistoryStore recovered(max_entries_);
  auto apply = [&recovered](const std::string& line) -> Status {
    auto entry = decode_history_entry(line);
    if (!entry.is_ok()) return entry.status();
    recovered.add(std::move(entry).value());
    return Status::ok();
  };

  std::size_t at = log.replay_start();
  if (at < log.records.size() && log.records[at].type == WalRecord::Type::kSnapshot) {
    std::istringstream lines(log.records[at].payload);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      const Status s = apply(line);
      if (!s.is_ok()) return s;
    }
    ++at;
  }
  for (; at < log.records.size(); ++at) {
    const Status s = apply(log.records[at].payload);
    if (!s.is_ok()) return s;
  }
  entries_ = std::move(recovered.entries_);
  return Status::ok();
}

namespace {
constexpr const char* kHistoryHeader = "runtime_seconds,recorded_at_s,successful,attributes";
}  // namespace

Status save_history(const TaskHistoryStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) return unavailable_error("cannot write history file: " + path);
  out << kHistoryHeader << '\n';
  out.precision(15);
  for (const auto& e : store.entries()) {
    out << e.runtime_seconds << ',' << to_seconds(e.recorded_at) << ','
        << (e.successful ? 1 : 0) << ',';
    bool first = true;
    for (const auto& [k, v] : e.attributes) {
      if (!first) out << ';';
      first = false;
      out << k << '=' << v;
    }
    out << '\n';
  }
  return out ? Status::ok() : unavailable_error("write failed: " + path);
}

Result<TaskHistoryStore> load_history(const std::string& path, std::size_t max_entries) {
  std::ifstream in(path);
  if (!in) return not_found_error("cannot open history file: " + path);
  std::string line;
  if (!std::getline(in, line)) return invalid_argument_error("empty history file");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kHistoryHeader) {
    return invalid_argument_error("unexpected history header: " + line);
  }
  TaskHistoryStore store(max_entries);
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    // Three numeric fields, then the attribute blob (may itself be empty).
    std::istringstream fields(line);
    std::string runtime_s, recorded_s, success_s, attrs_s;
    if (!std::getline(fields, runtime_s, ',') || !std::getline(fields, recorded_s, ',') ||
        !std::getline(fields, success_s, ',')) {
      return invalid_argument_error("history line " + std::to_string(lineno) +
                                    ": too few fields");
    }
    std::getline(fields, attrs_s);
    HistoryEntry entry;
    try {
      entry.runtime_seconds = std::stod(runtime_s);
      entry.recorded_at = from_seconds(std::stod(recorded_s));
    } catch (...) {
      return invalid_argument_error("history line " + std::to_string(lineno) +
                                    ": bad number");
    }
    entry.successful = success_s == "1";
    std::istringstream attrs(attrs_s);
    std::string pair;
    while (std::getline(attrs, pair, ';')) {
      const auto eq = pair.find('=');
      if (eq == std::string::npos) {
        return invalid_argument_error("history line " + std::to_string(lineno) +
                                      ": malformed attribute '" + pair + "'");
      }
      entry.attributes[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    store.add(std::move(entry));
  }
  return store;
}

}  // namespace gae::estimators
