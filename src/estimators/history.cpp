#include "estimators/history.h"

#include <fstream>
#include <sstream>

namespace gae::estimators {

void TaskHistoryStore::add(HistoryEntry entry) {
  entries_.push_back(std::move(entry));
  if (max_entries_ > 0 && entries_.size() > max_entries_) {
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(entries_.size() - max_entries_));
  }
}

namespace {
constexpr const char* kHistoryHeader = "runtime_seconds,recorded_at_s,successful,attributes";
}  // namespace

Status save_history(const TaskHistoryStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) return unavailable_error("cannot write history file: " + path);
  out << kHistoryHeader << '\n';
  out.precision(15);
  for (const auto& e : store.entries()) {
    out << e.runtime_seconds << ',' << to_seconds(e.recorded_at) << ','
        << (e.successful ? 1 : 0) << ',';
    bool first = true;
    for (const auto& [k, v] : e.attributes) {
      if (!first) out << ';';
      first = false;
      out << k << '=' << v;
    }
    out << '\n';
  }
  return out ? Status::ok() : unavailable_error("write failed: " + path);
}

Result<TaskHistoryStore> load_history(const std::string& path, std::size_t max_entries) {
  std::ifstream in(path);
  if (!in) return not_found_error("cannot open history file: " + path);
  std::string line;
  if (!std::getline(in, line)) return invalid_argument_error("empty history file");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kHistoryHeader) {
    return invalid_argument_error("unexpected history header: " + line);
  }
  TaskHistoryStore store(max_entries);
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    // Three numeric fields, then the attribute blob (may itself be empty).
    std::istringstream fields(line);
    std::string runtime_s, recorded_s, success_s, attrs_s;
    if (!std::getline(fields, runtime_s, ',') || !std::getline(fields, recorded_s, ',') ||
        !std::getline(fields, success_s, ',')) {
      return invalid_argument_error("history line " + std::to_string(lineno) +
                                    ": too few fields");
    }
    std::getline(fields, attrs_s);
    HistoryEntry entry;
    try {
      entry.runtime_seconds = std::stod(runtime_s);
      entry.recorded_at = from_seconds(std::stod(recorded_s));
    } catch (...) {
      return invalid_argument_error("history line " + std::to_string(lineno) +
                                    ": bad number");
    }
    entry.successful = success_s == "1";
    std::istringstream attrs(attrs_s);
    std::string pair;
    while (std::getline(attrs, pair, ';')) {
      const auto eq = pair.find('=');
      if (eq == std::string::npos) {
        return invalid_argument_error("history line " + std::to_string(lineno) +
                                      ": malformed attribute '" + pair + "'");
      }
      entry.attributes[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    store.add(std::move(entry));
  }
  return store;
}

}  // namespace gae::estimators
