#include "estimators/rpc_binding.h"

#include "telemetry/instrument.h"

namespace gae::estimators {

using rpc::Array;
using rpc::CallContext;
using rpc::Struct;
using rpc::Value;

void register_estimator_methods(clarens::ClarensHost& host, EstimatorService& service,
                                telemetry::Tracer* tracer,
                                telemetry::MetricsRegistry* metrics,
                                AdmissionController* admission) {
  const telemetry::TracedRegistrar d(host.dispatcher(), tracer, metrics);
  telemetry::Counter* brownout_fallbacks =
      metrics ? &metrics->counter("estimator.brownout_fallbacks") : nullptr;

  // estimator.runtime(site, {attr: value, ...}) -> {seconds, samples, ...}
  // Under brownout the similarity matcher is skipped for the cheap
  // history-mean estimate; the response says so via degraded=true.
  d.register_method(
      "estimator.runtime",
      [&service, admission, brownout_fallbacks, tracer](
          const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 2 || !params[0].is_string() || !params[1].is_struct()) {
          return invalid_argument_error("estimator.runtime(site, attributes)");
        }
        const bool degraded = admission && admission->browned_out();
        Result<RuntimeEstimate> est = [&]() {
          if (degraded) {
            // A distinct span name makes brownout service visible in traces.
            telemetry::ScopedSpan span(tracer, "estimator", "runtime.brownout",
                                       "internal");
            if (brownout_fallbacks) brownout_fallbacks->inc();
            return service.runtime_cheap(params[0].as_string());
          }
          std::map<std::string, std::string> attributes;
          for (const auto& [key, value] : params[1].as_struct()) {
            attributes[key] = value.is_string() ? value.as_string() : value.debug_string();
          }
          return service.runtime(params[0].as_string(), attributes);
        }();
        if (!est.is_ok()) return est.status();
        Struct out;
        out["seconds"] = Value(est.value().seconds);
        out["samples"] = Value(static_cast<std::int64_t>(est.value().samples));
        out["template"] = Value(est.value().template_name);
        out["estimator"] = Value(std::string(estimator_kind_name(est.value().used)));
        out["stddev"] = Value(est.value().stddev);
        out["degraded"] = Value(degraded);
        return Value(std::move(out));
      });

  // estimator.queueTime(site, task_id) -> {seconds, tasks_ahead}
  d.register_method(
      "estimator.queueTime",
      [&service](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() != 2 || !params[0].is_string() || !params[1].is_string()) {
          return invalid_argument_error("estimator.queueTime(site, task_id)");
        }
        auto est = service.queue_time(params[0].as_string(), params[1].as_string());
        if (!est.is_ok()) return est.status();
        Struct out;
        out["seconds"] = Value(est.value().seconds);
        out["tasks_ahead"] = Value(static_cast<std::int64_t>(est.value().tasks_ahead));
        return Value(std::move(out));
      });

  // estimator.transferTime(src, dst, bytes[, now_seconds]) -> {seconds, bandwidth}
  d.register_method(
      "estimator.transferTime",
      [&service](const Array& params, const CallContext&) -> Result<Value> {
        if (params.size() < 3 || !params[0].is_string() || !params[1].is_string() ||
            !params[2].is_number()) {
          return invalid_argument_error("estimator.transferTime(src, dst, bytes[, now])");
        }
        const SimTime now =
            params.size() > 3 ? from_seconds(params[3].as_double()) : SimTime{0};
        auto est = service.transfer_time(params[0].as_string(), params[1].as_string(),
                                         static_cast<std::uint64_t>(params[2].as_double()),
                                         now);
        if (!est.is_ok()) return est.status();
        Struct out;
        out["seconds"] = Value(est.value().seconds);
        out["bandwidth_bytes_per_sec"] = Value(est.value().bandwidth_bytes_per_sec);
        return Value(std::move(out));
      });

  d.register_method("estimator.sites",
                    [&service](const Array&, const CallContext&) -> Result<Value> {
                      Array out;
                      for (const auto& site : service.sites()) out.push_back(Value(site));
                      return Value(std::move(out));
                    });

  host.registry().register_service(
      {"estimator@" + host.name(), host.name(), host.port(), "xmlrpc", {}, 0});
}

}  // namespace gae::estimators
