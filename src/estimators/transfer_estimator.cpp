#include "estimators/transfer_estimator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "net/socket.h"

namespace gae::estimators {

FileTransferEstimator::FileTransferEstimator(const sim::Grid& grid,
                                             TransferEstimatorOptions options)
    : grid_(grid), options_(options), rng_(options.noise_seed) {}

Result<TransferEstimate> FileTransferEstimator::estimate(const std::string& src,
                                                         const std::string& dst,
                                                         std::uint64_t bytes, SimTime now) {
  if (!grid_.has_site(src)) return not_found_error("unknown site: " + src);
  if (!grid_.has_site(dst)) return not_found_error("unknown site: " + dst);

  TransferEstimate out;
  if (src == dst) {
    out.bandwidth_bytes_per_sec = 0.0;
    out.seconds = 0.0;
    return out;
  }

  const auto key = std::make_pair(src, dst);
  auto it = cache_.find(key);
  const bool stale = it == cache_.end() ||
                     now - it->second.at > from_seconds(options_.probe_ttl_seconds);
  if (stale) {
    // "Run iperf": sample the true link bandwidth with measurement noise.
    const sim::Link link = grid_.link(src, dst);
    double measured = link.bandwidth_bytes_per_sec;
    if (options_.probe_noise > 0) {
      measured *= std::max(0.05, rng_.normal(1.0, options_.probe_noise));
    }
    cache_[key] = Probe{measured, now};
    it = cache_.find(key);
  }

  const double bandwidth = it->second.bandwidth;
  if (bandwidth <= 0) return failed_precondition_error("no bandwidth " + src + "->" + dst);
  out.bandwidth_bytes_per_sec = bandwidth;
  out.seconds = static_cast<double>(bytes) / bandwidth +
                to_seconds(grid_.link(src, dst).latency);
  return out;
}

Result<double> FileTransferEstimator::cached_bandwidth(const std::string& src,
                                                       const std::string& dst) const {
  auto it = cache_.find({src, dst});
  if (it == cache_.end()) return not_found_error("no probe for " + src + "->" + dst);
  return it->second.bandwidth;
}

Result<double> measure_loopback_bandwidth(std::uint64_t bytes) {
  auto listener = net::TcpListener::bind(0);
  if (!listener.is_ok()) return listener.status();

  const std::uint64_t total = std::max<std::uint64_t>(bytes, 1 << 16);
  Status sink_status = Status::ok();
  std::thread sink([&listener, total, &sink_status] {
    auto conn = listener.value().accept();
    if (!conn.is_ok()) {
      sink_status = conn.status();
      return;
    }
    std::vector<char> buf(1 << 16);
    std::uint64_t seen = 0;
    while (seen < total) {
      auto r = conn.value().read_some(buf.data(), buf.size());
      if (!r.is_ok() || r.value() == 0) break;
      seen += r.value();
    }
  });

  auto client = net::TcpStream::connect("127.0.0.1", listener.value().port());
  if (!client.is_ok()) {
    listener.value().close();
    sink.join();
    return client.status();
  }

  const std::vector<char> payload(1 << 16, 'x');
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  while (sent < total) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(payload.size(), total - sent));
    const Status s = client.value().write_all(payload.data(), chunk);
    if (!s.is_ok()) {
      sink.join();
      return s;
    }
    sent += chunk;
  }
  client.value().shutdown_write();
  sink.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  if (!sink_status.is_ok()) return sink_status;
  if (seconds <= 0) return internal_error("bandwidth probe finished in zero time");
  return static_cast<double>(sent) / seconds;
}

}  // namespace gae::estimators
