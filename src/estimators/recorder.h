// Decentralised history maintenance: each execution site records its
// completed tasks into its local runtime estimator (paper §6.1 — "a
// decentralized approach is used for maintenance").
#pragma once

#include <memory>

#include "estimators/runtime_estimator.h"
#include "exec/execution_service.h"

namespace gae::estimators {

/// Subscribes to an execution service and appends every terminal task's
/// observed runtime (reference-CPU seconds) to the site's history.
class SiteRuntimeRecorder {
 public:
  SiteRuntimeRecorder(exec::ExecutionService& service,
                      std::shared_ptr<RuntimeEstimator> estimator);
  ~SiteRuntimeRecorder();

  SiteRuntimeRecorder(const SiteRuntimeRecorder&) = delete;
  SiteRuntimeRecorder& operator=(const SiteRuntimeRecorder&) = delete;

  std::size_t recorded() const { return recorded_; }

 private:
  exec::ExecutionService& service_;
  std::shared_ptr<RuntimeEstimator> estimator_;
  int token_;
  std::size_t recorded_ = 0;
};

}  // namespace gae::estimators
