// Web-service face of the Estimator Service: registers "estimator.*"
// methods on a Clarens host, so clients and remote schedulers can request
// the §6 estimates over XML-RPC/JSON-RPC.
#pragma once

#include "clarens/host.h"
#include "estimators/service.h"

namespace gae::estimators {

/// Registers estimator.runtime / queueTime / transferTime / sites on the
/// host. The service must outlive the host.
void register_estimator_methods(clarens::ClarensHost& host, EstimatorService& service);

}  // namespace gae::estimators
