// Web-service face of the Estimator Service: registers "estimator.*"
// methods on a Clarens host, so clients and remote schedulers can request
// the §6 estimates over XML-RPC/JSON-RPC.
#pragma once

#include "clarens/host.h"
#include "estimators/service.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gae::estimators {

/// Registers estimator.runtime / queueTime / transferTime / sites on the
/// host. The service must outlive the host. With a tracer/metrics each
/// handler also records an "internal" span under service "estimator" and
/// estimator.<method>.{calls,errors} counters.
///
/// With `admission` set, estimator.runtime degrades under brownout: instead
/// of similarity matching it serves the cheap history-mean estimate, marks
/// the response with degraded=true, and counts estimator.brownout_fallbacks.
/// Bulk estimate consumers get *an* answer fast while capacity goes to the
/// critical tiers.
void register_estimator_methods(clarens::ClarensHost& host, EstimatorService& service,
                                telemetry::Tracer* tracer = nullptr,
                                telemetry::MetricsRegistry* metrics = nullptr,
                                AdmissionController* admission = nullptr);

}  // namespace gae::estimators
