// Web-service face of the Estimator Service: registers "estimator.*"
// methods on a Clarens host, so clients and remote schedulers can request
// the §6 estimates over XML-RPC/JSON-RPC.
#pragma once

#include "clarens/host.h"
#include "estimators/service.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gae::estimators {

/// Registers estimator.runtime / queueTime / transferTime / sites on the
/// host. The service must outlive the host. With a tracer/metrics each
/// handler also records an "internal" span under service "estimator" and
/// estimator.<method>.{calls,errors} counters.
void register_estimator_methods(clarens::ClarensHost& host, EstimatorService& service,
                                telemetry::Tracer* tracer = nullptr,
                                telemetry::MetricsRegistry* metrics = nullptr);

}  // namespace gae::estimators
