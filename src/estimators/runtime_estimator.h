// History-based runtime estimator (paper §6.1, fig. 4).
//
// To estimate a task's runtime: find similar past tasks (similarity
// templates), then compute a statistical estimate of their runtimes — the
// mean, a linear regression on the node count, or a hybrid that uses the
// regression only when it actually explains the variance.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "estimators/history.h"
#include "estimators/similarity.h"

namespace gae::estimators {

enum class EstimatorKind {
  kMean,              // mean runtime of similar tasks
  kLinearRegression,  // regression of runtime on the "nodes" attribute
  kHybrid,            // regression when r^2 is decent, else mean
};

const char* estimator_kind_name(EstimatorKind kind);

struct RuntimeEstimate {
  double seconds = 0.0;
  /// How many similar tasks contributed.
  std::size_t samples = 0;
  /// Which similarity template produced the match set.
  std::string template_name;
  /// Which statistic actually produced the number (hybrid resolves).
  EstimatorKind used = EstimatorKind::kMean;
  /// Sample standard deviation of similar runtimes (0 for n < 2).
  double stddev = 0.0;
};

struct RuntimeEstimatorOptions {
  EstimatorKind kind = EstimatorKind::kHybrid;
  /// Minimum similar tasks before trusting a template.
  std::size_t min_matches = 3;
  /// Hybrid: minimum r-squared for the regression to win.
  double min_r_squared = 0.5;
  /// Attribute regressed on for kLinearRegression (numeric-valued).
  std::string regression_attribute = "nodes";
};

class RuntimeEstimator {
 public:
  /// The estimator reads and appends to a site-local history store.
  RuntimeEstimator(std::shared_ptr<TaskHistoryStore> history,
                   SimilarityMatcher matcher = SimilarityMatcher(),
                   RuntimeEstimatorOptions options = {});

  /// Predicted runtime for a task with these attributes. FAILED_PRECONDITION
  /// when the history is empty.
  Result<RuntimeEstimate> estimate(
      const std::map<std::string, std::string>& attributes) const;

  /// Degraded-mode estimate: the mean over every successful history entry,
  /// skipping similarity matching and regression entirely. O(history) with
  /// no template scoring — what the service serves while browned out.
  /// template_name is "*" and `used` is kMean. FAILED_PRECONDITION when no
  /// successful entries exist.
  Result<RuntimeEstimate> estimate_cheap() const;

  /// Records an observed runtime (decentralised history maintenance: the
  /// execution site calls this when a task completes).
  void record(const std::map<std::string, std::string>& attributes,
              double runtime_seconds, SimTime at, bool successful = true);

  const TaskHistoryStore& history() const { return *history_; }

 private:
  std::shared_ptr<TaskHistoryStore> history_;
  SimilarityMatcher matcher_;
  RuntimeEstimatorOptions options_;
};

}  // namespace gae::estimators
