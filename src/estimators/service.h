// The Estimator Service facade: bundles the three §6 estimators for one
// grid deployment so they can be consulted as a unit — in-process by the
// scheduler/steering, or remotely through the estimator.* RPC methods
// (rpc_binding.h). "The estimator service can be used to provide estimates
// of the resources required by a job ... It also provides information to
// the scheduler for scheduling decisions."
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "estimators/queue_time_estimator.h"
#include "estimators/runtime_estimator.h"
#include "estimators/transfer_estimator.h"
#include "exec/execution_service.h"

namespace gae::estimators {

class EstimatorService {
 public:
  EstimatorService(std::shared_ptr<EstimateDatabase> estimate_db,
                   std::unique_ptr<FileTransferEstimator> transfer,
                   QueueTimeOptions queue_options = {});

  /// Registers one site's runtime estimator and execution service.
  void add_site(const std::string& site, std::shared_ptr<RuntimeEstimator> runtime,
                exec::ExecutionService* exec);

  std::vector<std::string> sites() const;

  /// §6.1: runtime prediction at one site for a task with these attributes.
  Result<RuntimeEstimate> runtime(const std::string& site,
                                  const std::map<std::string, std::string>& attributes) const;

  /// Brownout path: the site's cheap history-mean estimate (no similarity
  /// matching), served while the host is shedding load.
  Result<RuntimeEstimate> runtime_cheap(const std::string& site) const;

  /// §6.2: queue wait for a submitted task at the site currently holding it.
  Result<QueueTimeEstimate> queue_time(const std::string& site,
                                       const std::string& task_id) const;

  /// §6.3: transfer time between two sites.
  Result<TransferEstimate> transfer_time(const std::string& src, const std::string& dst,
                                         std::uint64_t bytes, SimTime now);

  const EstimateDatabase& estimate_db() const { return *estimate_db_; }

 private:
  struct SiteEntry {
    std::shared_ptr<RuntimeEstimator> runtime;
    exec::ExecutionService* exec = nullptr;
    std::unique_ptr<QueueTimeEstimator> queue;
  };

  std::shared_ptr<EstimateDatabase> estimate_db_;
  std::unique_ptr<FileTransferEstimator> transfer_;
  QueueTimeOptions queue_options_;
  std::map<std::string, SiteEntry> sites_;
};

}  // namespace gae::estimators
