// The "separate database" of §6.2: runtime estimates recorded at submission
// time, consulted later by the queue-time estimator to compute the remaining
// runtime of queued/running tasks.
#pragma once

#include <map>
#include <string>

#include "common/status.h"

namespace gae::estimators {

class EstimateDatabase {
 public:
  /// Stores (or overwrites) the submit-time runtime estimate for a task.
  void put(const std::string& task_id, double estimated_runtime_seconds);

  /// NOT_FOUND when no estimate was recorded for the task.
  Result<double> get(const std::string& task_id) const;

  bool has(const std::string& task_id) const { return estimates_.count(task_id) != 0; }
  void erase(const std::string& task_id) { estimates_.erase(task_id); }
  std::size_t size() const { return estimates_.size(); }

 private:
  std::map<std::string, double> estimates_;
};

}  // namespace gae::estimators
