// The "separate database" of §6.2: runtime estimates recorded at submission
// time, consulted later by the queue-time estimator to compute the remaining
// runtime of queued/running tasks.
//
// With a Wal attached every put/erase is journaled, save_snapshot()
// compacts the log, and recover() rebuilds the exact pre-crash map on a
// restarted estimator service.
#pragma once

#include <map>
#include <string>

#include "common/status.h"
#include "common/wal.h"
#include "storage/health.h"

namespace gae::estimators {

class EstimateDatabase {
 public:
  EstimateDatabase() = default;
  explicit EstimateDatabase(Wal* wal) : wal_(wal) {}

  /// Journals mutations to `wal` from now on (null detaches).
  void attach_wal(Wal* wal) { wal_ = wal; }

  /// Degraded-mode gate (optional): mutations are dropped while the store
  /// is not writable, get() refused while quarantined, failed appends latch
  /// read-only, recover() reports drops through note_recover.
  void attach_health(storage::StoreHealth* health) { health_ = health; }

  /// Stores (or overwrites) the submit-time runtime estimate for a task.
  /// Dropped (with a log line) while the store is not writable.
  void put(const std::string& task_id, double estimated_runtime_seconds);

  /// NOT_FOUND when no estimate was recorded for the task; UNAVAILABLE
  /// while the store is quarantined.
  Result<double> get(const std::string& task_id) const;

  bool has(const std::string& task_id) const { return estimates_.count(task_id) != 0; }
  void erase(const std::string& task_id);
  std::size_t size() const { return estimates_.size(); }

  /// Compacts the WAL to one snapshot of the current map.
  Status save_snapshot();
  /// Rebuilds the map from the WAL (last snapshot + tail); idempotent,
  /// replaces in-memory state, tolerates a torn final record.
  Status recover();
  /// Canonical one-line-per-entry serialisation (snapshot payload; tests
  /// byte-compare recovered state through it).
  std::string export_state() const;

 private:
  Wal* wal_ = nullptr;
  storage::StoreHealth* health_ = nullptr;
  std::map<std::string, double> estimates_;
};

}  // namespace gae::estimators
