#include "estimators/service.h"

namespace gae::estimators {

EstimatorService::EstimatorService(std::shared_ptr<EstimateDatabase> estimate_db,
                                   std::unique_ptr<FileTransferEstimator> transfer,
                                   QueueTimeOptions queue_options)
    : estimate_db_(std::move(estimate_db)),
      transfer_(std::move(transfer)),
      queue_options_(queue_options) {
  if (!estimate_db_) estimate_db_ = std::make_shared<EstimateDatabase>();
}

void EstimatorService::add_site(const std::string& site,
                                std::shared_ptr<RuntimeEstimator> runtime,
                                exec::ExecutionService* exec) {
  SiteEntry entry;
  entry.runtime = std::move(runtime);
  entry.exec = exec;
  if (exec) {
    entry.queue = std::make_unique<QueueTimeEstimator>(*exec, estimate_db_, queue_options_);
  }
  sites_[site] = std::move(entry);
}

std::vector<std::string> EstimatorService::sites() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [site, _] : sites_) out.push_back(site);
  return out;
}

Result<RuntimeEstimate> EstimatorService::runtime(
    const std::string& site, const std::map<std::string, std::string>& attributes) const {
  auto it = sites_.find(site);
  if (it == sites_.end()) return not_found_error("no estimator at site " + site);
  if (!it->second.runtime) return failed_precondition_error("site has no runtime estimator");
  return it->second.runtime->estimate(attributes);
}

Result<RuntimeEstimate> EstimatorService::runtime_cheap(const std::string& site) const {
  auto it = sites_.find(site);
  if (it == sites_.end()) return not_found_error("no estimator at site " + site);
  if (!it->second.runtime) return failed_precondition_error("site has no runtime estimator");
  return it->second.runtime->estimate_cheap();
}

Result<QueueTimeEstimate> EstimatorService::queue_time(const std::string& site,
                                                       const std::string& task_id) const {
  auto it = sites_.find(site);
  if (it == sites_.end()) return not_found_error("no estimator at site " + site);
  if (!it->second.queue) return failed_precondition_error("site has no queue estimator");
  return it->second.queue->estimate(task_id);
}

Result<TransferEstimate> EstimatorService::transfer_time(const std::string& src,
                                                         const std::string& dst,
                                                         std::uint64_t bytes, SimTime now) {
  if (!transfer_) return failed_precondition_error("no transfer estimator configured");
  return transfer_->estimate(src, dst, bytes, now);
}

}  // namespace gae::estimators
