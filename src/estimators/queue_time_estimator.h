// Queue-time estimator (paper §6.2).
//
// Paper algorithm: given a task's id, fetch from the execution service all
// tasks with higher priority plus their elapsed runtimes, look up their
// submit-time runtime estimates in the estimate database, and sum the
// remaining (estimated - elapsed) runtimes. Two refinements are exposed as
// options (both measured in the E5 ablation):
//  - also counting equal-priority tasks that sit ahead in the queue;
//  - dividing the total by the number of worker nodes, since a multi-node
//    pool drains the backlog in parallel.
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "estimators/estimate_db.h"
#include "exec/execution_service.h"

namespace gae::estimators {

struct QueueTimeOptions {
  /// Count equal-priority tasks that are ahead of the input task in queue
  /// order (the paper counts only strictly higher priorities).
  bool include_equal_priority_ahead = true;
  /// Divide the summed backlog by the pool's node count.
  bool divide_by_nodes = false;
  /// When a queued task has no recorded estimate, assume this many seconds.
  double fallback_estimate_seconds = 600.0;
};

struct QueueTimeEstimate {
  double seconds = 0.0;
  /// Tasks whose remaining runtime contributed.
  std::size_t tasks_ahead = 0;
};

class QueueTimeEstimator {
 public:
  QueueTimeEstimator(const exec::ExecutionService& service,
                     std::shared_ptr<const EstimateDatabase> estimates,
                     QueueTimeOptions options = {});

  /// Estimated wait before `task_id` starts executing. NOT_FOUND for unknown
  /// tasks; 0 when the task is already past the queue.
  Result<QueueTimeEstimate> estimate(const std::string& task_id) const;

 private:
  const exec::ExecutionService& service_;
  std::shared_ptr<const EstimateDatabase> estimates_;
  QueueTimeOptions options_;
};

}  // namespace gae::estimators
