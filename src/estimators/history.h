// Task execution history: the raw material for history-based runtime
// prediction (paper §6.1). Maintenance is decentralised in the paper — each
// execution site keeps its own history — so the store is a plain value type
// a site service owns.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_types.h"

namespace gae::estimators {

/// One completed task observation.
struct HistoryEntry {
  /// Categorical attributes (login, executable, queue, partition, nodes...).
  std::map<std::string, std::string> attributes;
  /// Observed runtime in seconds (reference-CPU).
  double runtime_seconds = 0.0;
  SimTime recorded_at = 0;
  bool successful = true;
};

class TaskHistoryStore {
 public:
  /// `max_entries` bounds memory; the oldest entries fall off. 0 = unbounded.
  explicit TaskHistoryStore(std::size_t max_entries = 0) : max_entries_(max_entries) {}

  void add(HistoryEntry entry);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<HistoryEntry>& entries() const { return entries_; }

  void clear() { entries_.clear(); }

 private:
  std::size_t max_entries_;
  std::vector<HistoryEntry> entries_;  // oldest first
};

/// Persists a history store as CSV (attributes flattened as k=v;k=v). The
/// decentralised site histories survive service restarts this way.
Status save_history(const TaskHistoryStore& store, const std::string& path);

/// Loads a history CSV written by save_history. INVALID_ARGUMENT on
/// malformed content, NOT_FOUND when the file is missing.
Result<TaskHistoryStore> load_history(const std::string& path,
                                      std::size_t max_entries = 0);

}  // namespace gae::estimators
