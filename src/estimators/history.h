// Task execution history: the raw material for history-based runtime
// prediction (paper §6.1). Maintenance is decentralised in the paper — each
// execution site keeps its own history — so the store is a plain value type
// a site service owns.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_types.h"
#include "common/wal.h"
#include "storage/health.h"

namespace gae::estimators {

/// One completed task observation.
struct HistoryEntry {
  /// Categorical attributes (login, executable, queue, partition, nodes...).
  std::map<std::string, std::string> attributes;
  /// Observed runtime in seconds (reference-CPU).
  double runtime_seconds = 0.0;
  SimTime recorded_at = 0;
  bool successful = true;
};

class TaskHistoryStore {
 public:
  /// `max_entries` bounds memory; the oldest entries fall off. 0 = unbounded.
  explicit TaskHistoryStore(std::size_t max_entries = 0) : max_entries_(max_entries) {}

  /// Journals every completion sample to `wal` from now on (null detaches),
  /// making the decentralised site history crash-consistent.
  void attach_wal(Wal* wal) { wal_ = wal; }

  /// Degraded-mode gate (optional): add() drops samples while the store is
  /// not writable, failed appends latch read-only, recover() reports drops
  /// through note_recover.
  void attach_health(storage::StoreHealth* health) { health_ = health; }

  void add(HistoryEntry entry);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<HistoryEntry>& entries() const { return entries_; }

  void clear() { entries_.clear(); }

  /// Compacts the WAL to one snapshot of the current entries.
  Status save_snapshot();
  /// Rebuilds the store from the WAL (last snapshot + tail). Replays
  /// through add(), so max_entries trimming applies; idempotent; tolerates
  /// a torn final record.
  Status recover();
  /// Canonical one-line-per-entry serialisation (snapshot payload; tests
  /// byte-compare recovered state through it).
  std::string export_state() const;

 private:
  std::size_t max_entries_;
  Wal* wal_ = nullptr;
  storage::StoreHealth* health_ = nullptr;
  std::vector<HistoryEntry> entries_;  // oldest first
};

/// One-line codec for a history entry (the WAL payload format).
std::string encode_history_entry(const HistoryEntry& entry);
Result<HistoryEntry> decode_history_entry(const std::string& line);

/// Persists a history store as CSV (attributes flattened as k=v;k=v). The
/// decentralised site histories survive service restarts this way.
Status save_history(const TaskHistoryStore& store, const std::string& path);

/// Loads a history CSV written by save_history. INVALID_ARGUMENT on
/// malformed content, NOT_FOUND when the file is missing.
Result<TaskHistoryStore> load_history(const std::string& path,
                                      std::size_t max_entries = 0);

}  // namespace gae::estimators
