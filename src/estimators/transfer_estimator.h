// File-transfer-time estimator (paper §6.3): measure the bandwidth between
// two endpoints (the paper used iperf between client and Clarens server),
// then estimate transfer time as size / bandwidth.
//
// Two bandwidth sources are provided:
//  - a simulated probe against the grid model's links, with optional
//    measurement noise (an iperf sample is never exact);
//  - a real loopback-TCP probe for live deployments and microbenchmarks.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "sim/grid.h"

namespace gae::estimators {

struct TransferEstimate {
  double seconds = 0.0;
  double bandwidth_bytes_per_sec = 0.0;  // as measured by the probe
};

struct TransferEstimatorOptions {
  /// Relative stddev of probe measurement noise (0 = perfect probe).
  double probe_noise = 0.05;
  /// Probe results are cached this many virtual seconds.
  double probe_ttl_seconds = 300.0;
  std::uint64_t noise_seed = 7;
};

/// Estimates transfers across the simulated grid.
class FileTransferEstimator {
 public:
  FileTransferEstimator(const sim::Grid& grid, TransferEstimatorOptions options = {});

  /// Probes (or reuses a cached probe of) the src->dst link at virtual time
  /// `now`, then returns bytes / measured-bandwidth + latency.
  Result<TransferEstimate> estimate(const std::string& src, const std::string& dst,
                                    std::uint64_t bytes, SimTime now);

  /// The last measured bandwidth for a pair; NOT_FOUND before any probe.
  Result<double> cached_bandwidth(const std::string& src, const std::string& dst) const;

 private:
  struct Probe {
    double bandwidth = 0.0;
    SimTime at = kSimTimeNever;
  };

  const sim::Grid& grid_;
  TransferEstimatorOptions options_;
  Rng rng_;
  std::map<std::pair<std::string, std::string>, Probe> cache_;
};

/// Measures real loopback TCP throughput by streaming `bytes` through a
/// socket pair (an iperf stand-in for live runs). Returns bytes/second.
Result<double> measure_loopback_bandwidth(std::uint64_t bytes);

}  // namespace gae::estimators
