#include "estimators/recorder.h"

namespace gae::estimators {

SiteRuntimeRecorder::SiteRuntimeRecorder(exec::ExecutionService& service,
                                         std::shared_ptr<RuntimeEstimator> estimator)
    : service_(service), estimator_(std::move(estimator)) {
  token_ = service_.subscribe([this](const exec::TaskEvent& ev) {
    if (ev.new_state != exec::TaskState::kCompleted &&
        ev.new_state != exec::TaskState::kFailed) {
      return;
    }
    auto info = service_.query(ev.task_id);
    if (!info.is_ok()) return;
    // Killed-by-user tasks carry no runtime signal; failures are recorded as
    // unsuccessful so the estimator can exclude them from "similar" sets.
    estimator_->record(info.value().spec.attributes, info.value().cpu_seconds_used,
                       ev.time, ev.new_state == exec::TaskState::kCompleted);
    ++recorded_;
  });
}

SiteRuntimeRecorder::~SiteRuntimeRecorder() { service_.unsubscribe(token_); }

}  // namespace gae::estimators
