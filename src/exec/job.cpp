#include "exec/job.h"

namespace gae::exec {

const char* task_state_name(TaskState s) {
  switch (s) {
    case TaskState::kQueued: return "QUEUED";
    case TaskState::kStaging: return "STAGING";
    case TaskState::kRunning: return "RUNNING";
    case TaskState::kSuspended: return "SUSPENDED";
    case TaskState::kCompleted: return "COMPLETED";
    case TaskState::kFailed: return "FAILED";
    case TaskState::kKilled: return "KILLED";
  }
  return "?";
}

bool is_terminal(TaskState s) {
  return s == TaskState::kCompleted || s == TaskState::kFailed || s == TaskState::kKilled;
}

}  // namespace gae::exec
