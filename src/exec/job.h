// Task and job model shared by the execution service, scheduler, monitoring
// and steering layers.
//
// Terminology follows the paper: a *job* is what the user submits (a DAG of
// processing steps); a *task* is the atomic unit placed on one execution
// site. The execution service deals in tasks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time_types.h"

namespace gae::exec {

/// Lifecycle of a task inside an execution service.
enum class TaskState {
  kQueued,      // waiting for a free node
  kStaging,     // node assigned, input files transferring
  kRunning,     // accruing CPU time
  kSuspended,   // paused by user/steering; node released
  kCompleted,   // all work done
  kFailed,      // task or node error
  kKilled,      // removed by user/steering
};

const char* task_state_name(TaskState s);
bool is_terminal(TaskState s);

/// Immutable description of a task, as it appears in a job description file.
struct TaskSpec {
  std::string id;
  std::string job_id;
  std::string owner;
  std::string executable;

  /// Ground-truth CPU seconds needed on a speed-1.0 node. Hidden from the
  /// estimators, which must predict it from history.
  double work_seconds = 0.0;

  /// Higher priority runs first; FIFO within a priority level.
  int priority = 0;

  /// Logical file names resolved against the grid's storage elements.
  std::vector<std::string> input_files;

  /// Bytes written to the site storage element on completion.
  std::uint64_t output_bytes = 0;

  /// Checkpointable tasks resume from saved progress after a move.
  bool checkpointable = false;

  std::map<std::string, std::string> environment;

  /// Free-form attributes the runtime estimator may use for similarity
  /// matching (e.g. "nodes", "queue", "jobtype").
  std::map<std::string, std::string> attributes;
};

/// Point-in-time view of a task, the raw material for the Job Monitoring
/// Service (paper §5: status, elapsed/CPU time, queue position, priority,
/// submission/execution/completion times, IO, owner, environment).
struct TaskInfo {
  TaskSpec spec;
  TaskState state = TaskState::kQueued;

  SimTime submit_time = kSimTimeNever;
  SimTime start_time = kSimTimeNever;       // first entered kStaging/kRunning
  SimTime completion_time = kSimTimeNever;  // entered a terminal state

  /// Condor-style "wall-clock time accumulated while actually running", i.e.
  /// reference-CPU seconds of work completed. Excludes queue and stage time.
  double cpu_seconds_used = 0.0;

  /// Fraction of the task's work completed, in [0,1].
  double progress = 0.0;

  /// 0-based position among queued tasks (-1 when not queued).
  int queue_position = -1;

  /// Node currently (or last) hosting the task; "" if never placed.
  std::string node;

  std::uint64_t input_bytes_transferred = 0;
  std::uint64_t output_bytes_written = 0;

  /// Human-readable reason for kFailed/kKilled.
  std::string detail;
};

/// State-transition notification emitted by the execution service.
struct TaskEvent {
  std::string task_id;
  std::string job_id;
  std::string site;
  TaskState old_state;
  TaskState new_state;
  SimTime time;
  std::string detail;
};

}  // namespace gae::exec
