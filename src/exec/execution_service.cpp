#include "exec/execution_service.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace gae::exec {

namespace {
/// Residual work below this many CPU-seconds counts as done (guards against
/// microsecond rounding creating zero-length segments).
constexpr double kWorkEpsilon = 1e-9;
}  // namespace

ExecutionService::ExecutionService(sim::Simulation& sim, sim::Grid& grid,
                                   std::string site_name, ExecOptions options)
    : sim_(sim),
      grid_(grid),
      site_(std::move(site_name)),
      options_(options),
      failure_rng_(options.failure_seed) {
  node_task_.resize(grid_.site(site_).node_count());
  node_drained_.resize(node_task_.size(), false);
}

// ---------------------------------------------------------------------------
// Submission & control
// ---------------------------------------------------------------------------

Status ExecutionService::submit(const TaskSpec& spec, double initial_cpu_seconds) {
  if (!up_) return unavailable_error("execution service at " + site_ + " is down");
  if (spec.id.empty()) return invalid_argument_error("task id must not be empty");
  if (spec.work_seconds <= 0) return invalid_argument_error("task work_seconds must be > 0");
  if (auto existing = tasks_.find(spec.id); existing != tasks_.end()) {
    if (!is_terminal(existing->second.info.state)) {
      return already_exists_error("task already submitted: " + spec.id);
    }
    tasks_.erase(existing);  // resubmitting a finished task replaces its record
  }

  TaskRec rec;
  rec.info.spec = spec;
  rec.info.state = TaskState::kQueued;
  rec.info.submit_time = sim_.now();
  rec.info.cpu_seconds_used = std::clamp(initial_cpu_seconds, 0.0, spec.work_seconds);
  rec.info.progress = rec.info.cpu_seconds_used / spec.work_seconds;
  auto [it, _] = tasks_.emplace(spec.id, std::move(rec));

  enqueue(spec.id);
  transition(it->second, TaskState::kQueued, "submitted");
  try_dispatch();
  return Status::ok();
}

Status ExecutionService::kill(const std::string& task_id, const std::string& reason) {
  if (!up_) return unavailable_error("execution service at " + site_ + " is down");
  TaskRec* rec = find(task_id);
  if (!rec) return not_found_error("no such task: " + task_id);
  if (is_terminal(rec->info.state)) {
    return failed_precondition_error("task already terminal: " + task_id);
  }
  accrue(*rec);
  remove_from_queue(task_id);
  detach_from_node(*rec);
  finish(*rec, TaskState::kKilled, reason);
  try_dispatch();
  return Status::ok();
}

Status ExecutionService::suspend(const std::string& task_id) {
  if (!up_) return unavailable_error("execution service at " + site_ + " is down");
  TaskRec* rec = find(task_id);
  if (!rec) return not_found_error("no such task: " + task_id);
  switch (rec->info.state) {
    case TaskState::kQueued:
      remove_from_queue(task_id);
      break;
    case TaskState::kStaging:
      // Staging restarts from scratch on resume; nothing was accounted yet.
      detach_from_node(*rec);
      break;
    case TaskState::kRunning:
      accrue(*rec);
      detach_from_node(*rec);
      break;
    default:
      return failed_precondition_error("cannot suspend task in state " +
                                       std::string(task_state_name(rec->info.state)));
  }
  transition(*rec, TaskState::kSuspended);
  try_dispatch();
  return Status::ok();
}

Status ExecutionService::resume(const std::string& task_id) {
  if (!up_) return unavailable_error("execution service at " + site_ + " is down");
  TaskRec* rec = find(task_id);
  if (!rec) return not_found_error("no such task: " + task_id);
  if (rec->info.state != TaskState::kSuspended) {
    return failed_precondition_error("cannot resume task in state " +
                                     std::string(task_state_name(rec->info.state)));
  }
  transition(*rec, TaskState::kQueued, "resumed");
  enqueue(task_id);
  try_dispatch();
  return Status::ok();
}

Status ExecutionService::set_priority(const std::string& task_id, int priority) {
  if (!up_) return unavailable_error("execution service at " + site_ + " is down");
  TaskRec* rec = find(task_id);
  if (!rec) return not_found_error("no such task: " + task_id);
  if (is_terminal(rec->info.state)) {
    return failed_precondition_error("task already terminal: " + task_id);
  }
  rec->info.spec.priority = priority;
  if (rec->info.state == TaskState::kQueued) {
    remove_from_queue(task_id);
    enqueue(task_id);
    try_dispatch();
  }
  return Status::ok();
}

Result<double> ExecutionService::checkpoint(const std::string& task_id) const {
  if (!up_) return unavailable_error("execution service at " + site_ + " is down");
  const TaskRec* rec = find(task_id);
  if (!rec) return not_found_error("no such task: " + task_id);
  if (!rec->info.spec.checkpointable) {
    return failed_precondition_error("task is not checkpointable: " + task_id);
  }
  return current_cpu_seconds(*rec);
}

Status ExecutionService::inject_task_failure(const std::string& task_id,
                                             const std::string& reason) {
  if (!up_) return unavailable_error("execution service at " + site_ + " is down");
  TaskRec* rec = find(task_id);
  if (!rec) return not_found_error("no such task: " + task_id);
  if (is_terminal(rec->info.state)) {
    return failed_precondition_error("task already terminal: " + task_id);
  }
  accrue(*rec);
  remove_from_queue(task_id);
  detach_from_node(*rec);
  finish(*rec, TaskState::kFailed, reason);
  try_dispatch();
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

Result<TaskInfo> ExecutionService::query(const std::string& task_id) const {
  if (!up_) return unavailable_error("execution service at " + site_ + " is down");
  const TaskRec* rec = find(task_id);
  if (!rec) return not_found_error("no such task: " + task_id);
  TaskInfo info = rec->info;
  info.cpu_seconds_used = current_cpu_seconds(*rec);
  info.progress = std::min(1.0, info.cpu_seconds_used / info.spec.work_seconds);
  info.queue_position = -1;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i] == task_id) {
      info.queue_position = static_cast<int>(i);
      break;
    }
  }
  return info;
}

std::vector<TaskInfo> ExecutionService::list_tasks() const {
  std::vector<TaskInfo> out;
  out.reserve(tasks_.size());
  for (const auto& [id, rec] : tasks_) {
    auto q = query(id);
    if (q.is_ok()) out.push_back(std::move(q).value());
  }
  return out;
}

std::vector<TaskInfo> ExecutionService::queued_tasks() const {
  std::vector<TaskInfo> out;
  out.reserve(queue_.size());
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const TaskRec* rec = find(queue_[i]);
    if (!rec) continue;
    TaskInfo info = rec->info;
    info.queue_position = static_cast<int>(i);
    out.push_back(std::move(info));
  }
  return out;
}

double ExecutionService::owner_usage(const std::string& owner) const {
  auto it = owner_usage_.find(owner);
  return it == owner_usage_.end() ? 0.0 : it->second;
}

std::size_t ExecutionService::free_nodes() const {
  if (!up_) return 0;
  std::size_t free = 0;
  for (std::size_t i = 0; i < node_task_.size(); ++i) {
    if (node_task_[i].empty() && !node_drained_[i]) ++free;
  }
  return free;
}

Status ExecutionService::drain_node(std::size_t node_index) {
  if (node_index >= node_drained_.size()) {
    return invalid_argument_error("no node " + std::to_string(node_index) + " at " + site_);
  }
  node_drained_[node_index] = true;
  return Status::ok();
}

Status ExecutionService::undrain_node(std::size_t node_index) {
  if (node_index >= node_drained_.size()) {
    return invalid_argument_error("no node " + std::to_string(node_index) + " at " + site_);
  }
  node_drained_[node_index] = false;
  try_dispatch();
  return Status::ok();
}

bool ExecutionService::node_drained(std::size_t node_index) const {
  return node_index < node_drained_.size() && node_drained_[node_index];
}

// ---------------------------------------------------------------------------
// Service failure
// ---------------------------------------------------------------------------

void ExecutionService::fail_service(const std::string& reason) {
  if (!up_) return;
  GAE_LOG(Warn) << "execution service at " << site_ << " failing: " << reason;
  queue_.clear();
  for (auto& [id, rec] : tasks_) {
    if (is_terminal(rec.info.state)) continue;
    accrue(rec);
    detach_from_node(rec);
    finish(rec, TaskState::kFailed, reason);
  }
  up_ = false;  // after transitions so listeners can still observe them
}

void ExecutionService::recover_service() {
  if (up_) return;
  up_ = true;
  GAE_LOG(Info) << "execution service at " << site_ << " recovered";
}

std::vector<std::string> ExecutionService::local_output_files(
    const std::string& task_id) const {
  std::vector<std::string> out;
  const std::string name = task_id + ".out";
  if (grid_.site(site_).has_file(name)) out.push_back(name);
  return out;
}

// ---------------------------------------------------------------------------
// Events & flocking
// ---------------------------------------------------------------------------

int ExecutionService::subscribe(EventCallback cb) {
  const int token = next_listener_++;
  listeners_[token] = std::move(cb);
  return token;
}

void ExecutionService::unsubscribe(int token) { listeners_.erase(token); }

void ExecutionService::flock_with(ExecutionService* other) {
  if (other && other != this) flock_peers_.push_back(other);
}

// ---------------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------------

ExecutionService::TaskRec* ExecutionService::find(const std::string& task_id) {
  auto it = tasks_.find(task_id);
  return it == tasks_.end() ? nullptr : &it->second;
}

const ExecutionService::TaskRec* ExecutionService::find(const std::string& task_id) const {
  auto it = tasks_.find(task_id);
  return it == tasks_.end() ? nullptr : &it->second;
}

void ExecutionService::enqueue(const std::string& task_id) {
  const TaskRec* rec = find(task_id);
  // Insert before the first waiting task with strictly lower priority:
  // FIFO within a priority level.
  auto pos = queue_.begin();
  for (; pos != queue_.end(); ++pos) {
    const TaskRec* other = find(*pos);
    if (other && other->info.spec.priority < rec->info.spec.priority) break;
  }
  queue_.insert(pos, task_id);
}

void ExecutionService::remove_from_queue(const std::string& task_id) {
  queue_.erase(std::remove(queue_.begin(), queue_.end(), task_id), queue_.end());
}

std::size_t ExecutionService::pick_next_queued() const {
  if (!options_.fair_share || queue_.size() < 2) return 0;
  // The queue is priority-ordered; fair share only reorders within the
  // highest waiting priority level.
  const TaskRec* head = find(queue_.front());
  if (!head) return 0;
  const int level = head->info.spec.priority;
  std::size_t best = 0;
  double best_usage = owner_usage(head->info.spec.owner);
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const TaskRec* rec = find(queue_[i]);
    if (!rec || rec->info.spec.priority != level) break;
    const double usage = owner_usage(rec->info.spec.owner);
    if (usage < best_usage) {
      best_usage = usage;
      best = i;
    }
  }
  return best;
}

void ExecutionService::try_dispatch() {
  if (dispatching_ || !up_) return;
  dispatching_ = true;
  while (!queue_.empty()) {
    const std::size_t pick = pick_next_queued();
    const std::string task_id = queue_[pick];
    TaskRec* rec = find(task_id);
    if (!rec || rec->info.state != TaskState::kQueued) {
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));  // stale entry
      continue;
    }

    // Fastest free local node wins.
    std::size_t best = SIZE_MAX;
    double best_speed = -1.0;
    const sim::Site& site = grid_.site(site_);
    for (std::size_t i = 0; i < node_task_.size(); ++i) {
      if (!node_task_[i].empty() || node_drained_[i]) continue;
      const double speed = site.node(i).speed_factor();
      if (speed > best_speed) {
        best_speed = speed;
        best = i;
      }
    }
    if (best != SIZE_MAX) {
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
      start_staging(*rec, best);
      continue;
    }

    // No free local node: preempt a lower-priority running task if allowed.
    if (options_.preemptive && try_preempt_for(rec->info.spec.priority)) {
      continue;  // a node is free now; re-run the placement loop
    }

    // No free local node: try flocking the head task to a peer pool.
    if (!rec->flocked_in && !flock_peers_.empty()) {
      ExecutionService* target = nullptr;
      for (ExecutionService* peer : flock_peers_) {
        if (peer->is_up() && peer->free_nodes() > 0) {
          target = peer;
          break;
        }
      }
      if (target) {
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
        const double carried =
            rec->info.spec.checkpointable ? rec->info.cpu_seconds_used : 0.0;
        TaskSpec spec = rec->info.spec;
        TaskEvent ev{spec.id,  spec.job_id,        site_,
                     rec->info.state, TaskState::kQueued, sim_.now(),
                     "flocked to " + target->site()};
        tasks_.erase(spec.id);
        for (const auto& [_, cb] : listeners_) cb(ev);
        Status s = target->submit(spec, carried);
        if (s.is_ok()) {
          TaskRec* moved = target->find(spec.id);
          if (moved) moved->flocked_in = true;
        } else {
          GAE_LOG(Warn) << "flocking " << spec.id << " to " << target->site()
                        << " failed: " << s;
        }
        continue;
      }
    }
    break;  // head of queue cannot start anywhere; strict FIFO, no backfill
  }
  dispatching_ = false;
}

bool ExecutionService::try_preempt_for(int priority) {
  // Lowest-priority running victim, evicted only if strictly below the
  // incoming priority (prevents preemption loops between equal priorities).
  TaskRec* victim = nullptr;
  for (auto& [id, rec] : tasks_) {
    if (rec.info.state != TaskState::kRunning && rec.info.state != TaskState::kStaging) {
      continue;
    }
    if (!victim || rec.info.spec.priority < victim->info.spec.priority) victim = &rec;
  }
  if (!victim || victim->info.spec.priority >= priority) return false;

  accrue(*victim);
  if (!victim->info.spec.checkpointable) {
    // Vanilla-universe preemption loses the work done so far.
    victim->info.cpu_seconds_used = 0.0;
    victim->info.progress = 0.0;
  }
  detach_from_node(*victim);
  transition(*victim, TaskState::kQueued, "preempted by higher priority task");
  enqueue(victim->info.spec.id);
  return true;
}

void ExecutionService::start_staging(TaskRec& rec, std::size_t node_index) {
  rec.node_index = node_index;
  node_task_[node_index] = rec.info.spec.id;
  rec.info.node = grid_.site(site_).node(node_index).name();
  if (rec.info.start_time == kSimTimeNever) rec.info.start_time = sim_.now();

  // Resolve sources for inputs not already at this site.
  struct Pull {
    std::string src;
    std::uint64_t bytes;
  };
  std::vector<Pull> pulls;
  SimDuration analytic_staging = 0;
  const sim::Site& here = grid_.site(site_);
  for (const auto& file : rec.info.spec.input_files) {
    if (here.has_file(file)) continue;
    auto src = grid_.closest_replica(file, site_, site_);
    if (!src.is_ok()) {
      detach_from_node(rec);
      finish(rec, TaskState::kFailed, "missing input file: " + file);
      return;
    }
    const std::uint64_t bytes = grid_.site(src.value()).file_size(file).value();
    pulls.push_back({src.value(), bytes});
    analytic_staging += grid_.transfer_time(src.value(), site_, bytes);
  }
  std::uint64_t staged_bytes = 0;
  for (const auto& pull : pulls) staged_bytes += pull.bytes;

  transition(rec, TaskState::kStaging);
  const std::string task_id = rec.info.spec.id;
  const std::uint64_t bytes = staged_bytes;

  if (network_ && !pulls.empty()) {
    // Contended staging: one transfer per input, compute when all land.
    rec.staging_pending = pulls.size();
    rec.staging_transfers.clear();
    for (const auto& pull : pulls) {
      auto transfer = network_->start_transfer(
          pull.src, site_, pull.bytes,
          [this, task_id] {
            TaskRec* r = find(task_id);
            if (!r || r->info.state != TaskState::kStaging) return;
            if (--r->staging_pending > 0) return;
            r->staging_transfers.clear();
            begin_running(task_id);
          },
          [this, task_id](const Status& cause) {
            // Link failure mid-staging: the task fails here and steering's
            // Backup & Recovery decides where it goes next.
            TaskRec* r = find(task_id);
            if (!r || r->info.state != TaskState::kStaging) return;
            detach_from_node(*r);
            finish(*r, TaskState::kFailed, "staging aborted: " + cause.message());
          });
      if (!transfer.is_ok()) {
        detach_from_node(rec);
        finish(rec, TaskState::kFailed, "staging failed: " + transfer.status().message());
        return;
      }
      rec.staging_transfers.push_back(transfer.value());
    }
    rec.info.input_bytes_transferred += bytes;
    return;
  }

  // Uncontended analytic model: one event after the summed transfer times.
  rec.pending_event = sim_.schedule_after(analytic_staging, [this, task_id, bytes] {
    TaskRec* r = find(task_id);
    if (!r || r->info.state != TaskState::kStaging) return;
    r->pending_event = sim::kInvalidEvent;
    r->info.input_bytes_transferred += bytes;
    begin_running(task_id);
  });
}

void ExecutionService::begin_running(const std::string& task_id) {
  TaskRec* rec = find(task_id);
  if (!rec) return;
  transition(*rec, TaskState::kRunning);
  rec->segment_start = sim_.now();

  if (options_.mean_time_between_failures > 0) {
    const double dt = failure_rng_.exponential(options_.mean_time_between_failures);
    rec->failure_at = sim_.now() + from_seconds(dt);
    rec->failure_event = sim_.schedule_at(rec->failure_at, [this, task_id] {
      TaskRec* r = find(task_id);
      if (!r || r->info.state != TaskState::kRunning) return;
      r->failure_event = sim::kInvalidEvent;
      accrue(*r);
      detach_from_node(*r);
      if (r->info.spec.checkpointable && options_.checkpoint_interval_seconds > 0) {
        // Condor standard-universe behaviour: resume from the last periodic
        // checkpoint rather than losing the job.
        r->info.cpu_seconds_used = r->last_checkpoint_cpu;
        r->info.progress = r->last_checkpoint_cpu / r->info.spec.work_seconds;
        transition(*r, TaskState::kQueued, "node failure: restarted from checkpoint");
        enqueue(task_id);
      } else {
        finish(*r, TaskState::kFailed, "node failure");
      }
      try_dispatch();
    });
  }

  if (rec->info.spec.checkpointable && options_.checkpoint_interval_seconds > 0) {
    arm_periodic_checkpoint(task_id);
  }

  schedule_segment_end(*rec);
}

void ExecutionService::arm_periodic_checkpoint(const std::string& task_id) {
  TaskRec* rec = find(task_id);
  if (!rec || rec->info.state != TaskState::kRunning) return;
  rec->checkpoint_event = sim_.schedule_after(
      from_seconds(options_.checkpoint_interval_seconds), [this, task_id] {
        TaskRec* r = find(task_id);
        if (!r || r->info.state != TaskState::kRunning) return;
        r->checkpoint_event = sim::kInvalidEvent;
        accrue(*r);
        r->last_checkpoint_cpu = r->info.cpu_seconds_used;
        arm_periodic_checkpoint(task_id);
      });
}

void ExecutionService::schedule_segment_end(TaskRec& rec) {
  const sim::Node& node = grid_.site(site_).node(rec.node_index);
  const SimTime now = sim_.now();
  rec.segment_start = now;
  rec.segment_rate = node.effective_rate(now);

  const double remaining = rec.info.spec.work_seconds - rec.info.cpu_seconds_used;
  SimTime completion = kSimTimeNever;
  if (rec.segment_rate > 0 && remaining > 0) {
    const double wall_seconds = remaining / rec.segment_rate;
    completion = now + static_cast<SimDuration>(std::ceil(wall_seconds * 1e6));
  }
  const SimTime load_change = node.next_load_change(now);

  SimTime boundary = kSimTimeNever;
  if (completion != kSimTimeNever) boundary = completion;
  if (load_change != kSimTimeNever && (boundary == kSimTimeNever || load_change < boundary)) {
    boundary = load_change;
  }
  if (boundary == kSimTimeNever) return;  // starved with constant load: waits forever

  const std::string task_id = rec.info.spec.id;
  rec.pending_event =
      sim_.schedule_at(boundary, [this, task_id] { on_segment_boundary(task_id); });
}

void ExecutionService::on_segment_boundary(const std::string& task_id) {
  TaskRec* rec = find(task_id);
  if (!rec || rec->info.state != TaskState::kRunning) return;
  rec->pending_event = sim::kInvalidEvent;
  accrue(*rec);
  const double remaining = rec->info.spec.work_seconds - rec->info.cpu_seconds_used;
  if (remaining <= kWorkEpsilon) {
    rec->info.cpu_seconds_used = rec->info.spec.work_seconds;
    rec->info.progress = 1.0;
    detach_from_node(*rec);
    if (rec->info.spec.output_bytes > 0) {
      grid_.site(site_).store_file(rec->info.spec.id + ".out", rec->info.spec.output_bytes);
      rec->info.output_bytes_written = rec->info.spec.output_bytes;
    }
    finish(*rec, TaskState::kCompleted, "");
    try_dispatch();
    return;
  }
  schedule_segment_end(*rec);
}

void ExecutionService::accrue(TaskRec& rec) {
  if (rec.info.state != TaskState::kRunning || rec.segment_start == kSimTimeNever) return;
  const SimTime now = sim_.now();
  const double dt = to_seconds(now - rec.segment_start);
  const double before = rec.info.cpu_seconds_used;
  rec.info.cpu_seconds_used = std::min(rec.info.spec.work_seconds,
                                       rec.info.cpu_seconds_used + dt * rec.segment_rate);
  rec.info.progress = rec.info.cpu_seconds_used / rec.info.spec.work_seconds;
  rec.segment_start = now;
  owner_usage_[rec.info.spec.owner] += rec.info.cpu_seconds_used - before;
}

void ExecutionService::detach_from_node(TaskRec& rec) {
  if (rec.pending_event != sim::kInvalidEvent) {
    sim_.cancel(rec.pending_event);
    rec.pending_event = sim::kInvalidEvent;
  }
  if (rec.failure_event != sim::kInvalidEvent) {
    sim_.cancel(rec.failure_event);
    rec.failure_event = sim::kInvalidEvent;
  }
  if (rec.checkpoint_event != sim::kInvalidEvent) {
    sim_.cancel(rec.checkpoint_event);
    rec.checkpoint_event = sim::kInvalidEvent;
  }
  if (network_) {
    for (const auto transfer : rec.staging_transfers) network_->cancel(transfer);
  }
  rec.staging_transfers.clear();
  rec.staging_pending = 0;
  if (rec.node_index != SIZE_MAX) {
    node_task_[rec.node_index].clear();
    rec.node_index = SIZE_MAX;
  }
  rec.segment_start = kSimTimeNever;
  rec.segment_rate = 0.0;
}

void ExecutionService::transition(TaskRec& rec, TaskState next, const std::string& detail) {
  const TaskState old = rec.info.state;
  rec.info.state = next;
  TaskEvent ev{rec.info.spec.id, rec.info.spec.job_id, site_, old, next, sim_.now(), detail};
  for (const auto& [_, cb] : listeners_) cb(ev);
}

void ExecutionService::finish(TaskRec& rec, TaskState terminal, const std::string& detail) {
  rec.info.completion_time = sim_.now();
  rec.info.detail = detail;
  // A failed task leaves whatever partial output it wrote on local storage
  // (the steering service retrieves these files, paper §4.2.4).
  if (terminal == TaskState::kFailed && rec.info.spec.output_bytes > 0 &&
      rec.info.progress > 0) {
    const auto partial = static_cast<std::uint64_t>(
        static_cast<double>(rec.info.spec.output_bytes) * rec.info.progress);
    if (partial > 0) {
      grid_.site(site_).store_file(rec.info.spec.id + ".out", partial);
      rec.info.output_bytes_written = partial;
    }
  }
  transition(rec, terminal, detail);
}

double ExecutionService::current_cpu_seconds(const TaskRec& rec) const {
  if (rec.info.state != TaskState::kRunning || rec.segment_start == kSimTimeNever) {
    return rec.info.cpu_seconds_used;
  }
  const double dt = to_seconds(sim_.now() - rec.segment_start);
  return std::min(rec.info.spec.work_seconds,
                  rec.info.cpu_seconds_used + dt * rec.segment_rate);
}

}  // namespace gae::exec
