// Condor-like execution service for one grid site, driven by the
// discrete-event simulator.
//
// Models the parts of Condor the paper relies on:
//  - a priority queue of tasks, FIFO within a priority level;
//  - one task per worker node, with input-file staging before compute;
//  - wall-clock (CPU) accounting that excludes queue and staging time and
//    slows under background node load — the "accumulated wall-clock time"
//    fig. 7 uses to measure job progress;
//  - suspend / resume / kill / re-prioritise, checkpointing, flocking;
//  - whole-service failure, which Backup & Recovery (steering) detects.
//
// Progress is integrated analytically between load change-points, so no
// polling events are needed while a task runs at constant effective rate.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "exec/job.h"
#include "sim/engine.h"
#include "sim/grid.h"
#include "sim/network.h"

namespace gae::exec {

/// Tunables for one execution service instance.
struct ExecOptions {
  /// Mean virtual seconds between spontaneous task failures while running
  /// (exponential). 0 disables random failures.
  double mean_time_between_failures = 0.0;
  std::uint64_t failure_seed = 1;
  /// Periodic checkpoint cadence for checkpointable tasks (virtual seconds).
  /// When a node fails, a checkpointable task restarts from its last
  /// periodic checkpoint instead of failing outright. 0 disables.
  double checkpoint_interval_seconds = 0.0;
  /// Condor-style fair share: within the highest waiting priority level,
  /// dispatch the task whose owner has consumed the least CPU here.
  bool fair_share = false;
  /// Priority preemption: a queued task may evict a strictly lower-priority
  /// running task when no node is free. The victim returns to the queue —
  /// keeping its progress if checkpointable, restarting otherwise.
  bool preemptive = false;
};

class ExecutionService {
 public:
  ExecutionService(sim::Simulation& sim, sim::Grid& grid, std::string site_name,
                   ExecOptions options = {});

  /// Routes input staging through a shared network manager, so concurrent
  /// transfers contend for link bandwidth instead of each assuming a free
  /// link. Null (the default) restores the uncontended analytic model.
  void use_network(sim::NetworkManager* network) { network_ = network; }

  const std::string& site() const { return site_; }

  // -- Submission & control ------------------------------------------------

  /// Enqueues a task. `initial_cpu_seconds` carries checkpointed progress
  /// when a task migrates in. ALREADY_EXISTS for duplicate ids,
  /// UNAVAILABLE when the service is down.
  Status submit(const TaskSpec& spec, double initial_cpu_seconds = 0.0);

  /// Terminates a task (any non-terminal state).
  Status kill(const std::string& task_id, const std::string& reason = "killed by user");

  /// Pauses a running/staging/queued task and releases its node.
  Status suspend(const std::string& task_id);

  /// Re-enqueues a suspended task; accumulated CPU time is retained.
  Status resume(const std::string& task_id);

  /// Changes priority; requeues if the task is waiting.
  Status set_priority(const std::string& task_id, int priority);

  /// Snapshot of saved progress (reference-CPU seconds) for a checkpointable
  /// task; FAILED_PRECONDITION when the task is not checkpointable.
  Result<double> checkpoint(const std::string& task_id) const;

  /// Marks one task failed (failure injection for tests/experiments).
  Status inject_task_failure(const std::string& task_id, const std::string& reason);

  // -- Queries -------------------------------------------------------------

  /// Point-in-time task view with up-to-date CPU accounting.
  Result<TaskInfo> query(const std::string& task_id) const;

  /// All tasks ever submitted here (terminal ones included).
  std::vector<TaskInfo> list_tasks() const;

  /// Waiting tasks in dispatch order (queue_position filled in).
  std::vector<TaskInfo> queued_tasks() const;

  std::size_t free_nodes() const;

  /// Reference-CPU seconds this owner's tasks have consumed at this site
  /// (drives fair-share dispatch).
  double owner_usage(const std::string& owner) const;

  // -- Service failure (exercised by steering's Backup & Recovery) ---------

  /// Takes the whole service down: running work is lost, queries fail with
  /// UNAVAILABLE until recover_service().
  void fail_service(const std::string& reason = "execution service failure");
  void recover_service();
  bool is_up() const { return up_; }

  /// Output files the failed/completed tasks produced locally (the steering
  /// service retrieves these on job failure, paper §4.2.4).
  std::vector<std::string> local_output_files(const std::string& task_id) const;

  // -- Node maintenance -------------------------------------------------------

  /// Drains a node: its current task finishes, but nothing new is placed on
  /// it until undrain_node(). INVALID_ARGUMENT for out-of-range indexes.
  Status drain_node(std::size_t node_index);
  Status undrain_node(std::size_t node_index);
  bool node_drained(std::size_t node_index) const;

  // -- Events & flocking ---------------------------------------------------

  using EventCallback = std::function<void(const TaskEvent&)>;

  /// Registers a state-change listener; returns a token for unsubscribe.
  /// Lifetime: subscribers (scheduler, monitoring, steering, recorders) must
  /// unsubscribe before this service is destroyed — in practice, construct
  /// the execution services first so they are destroyed last.
  int subscribe(EventCallback cb);
  void unsubscribe(int token);

  /// Enables Condor-style flocking: tasks queued here with no free local
  /// node may start on a free node of `other`. Checkpointable tasks carry
  /// their progress across; others restart from zero there.
  void flock_with(ExecutionService* other);

 private:
  struct TaskRec {
    TaskInfo info;
    std::size_t node_index = SIZE_MAX;   // valid while staging/running
    sim::EventId pending_event = sim::kInvalidEvent;  // staging done / segment end
    sim::EventId failure_event = sim::kInvalidEvent;  // random failure, if armed
    sim::EventId checkpoint_event = sim::kInvalidEvent;  // periodic checkpoint
    double last_checkpoint_cpu = 0.0;                 // progress saved by checkpoints
    std::vector<sim::TransferId> staging_transfers;   // in-flight staged inputs
    std::size_t staging_pending = 0;                  // transfers still running
    SimTime segment_start = kSimTimeNever;            // running segment began
    double segment_rate = 0.0;                        // effective rate this segment
    SimTime failure_at = kSimTimeNever;               // pre-drawn failure instant
    bool flocked_in = false;  // do not flock onwards
  };

  TaskRec* find(const std::string& task_id);
  const TaskRec* find(const std::string& task_id) const;

  /// Queue order: higher priority first, then submit time, then id.
  void enqueue(const std::string& task_id);
  void remove_from_queue(const std::string& task_id);

  /// Assigns queued tasks to free nodes (and flocked pools) until blocked.
  void try_dispatch();

  /// Preemption: evicts the lowest-priority running task if it is strictly
  /// below `priority`. Returns true when a node was freed.
  bool try_preempt_for(int priority);

  /// Index into queue_ of the task to dispatch next (fair share aware).
  std::size_t pick_next_queued() const;

  void start_staging(TaskRec& rec, std::size_t node_index);
  void begin_running(const std::string& task_id);
  void arm_periodic_checkpoint(const std::string& task_id);
  void schedule_segment_end(TaskRec& rec);
  void on_segment_boundary(const std::string& task_id);

  /// Folds the in-flight segment into cpu_seconds_used/progress.
  void accrue(TaskRec& rec);

  /// Releases node, cancels events; does not change state.
  void detach_from_node(TaskRec& rec);

  void transition(TaskRec& rec, TaskState next, const std::string& detail = "");
  void finish(TaskRec& rec, TaskState terminal, const std::string& detail);

  double current_cpu_seconds(const TaskRec& rec) const;

  sim::Simulation& sim_;
  sim::Grid& grid_;
  sim::NetworkManager* network_ = nullptr;
  std::string site_;
  ExecOptions options_;
  Rng failure_rng_;

  std::map<std::string, TaskRec> tasks_;
  std::deque<std::string> queue_;                 // waiting task ids, dispatch order
  std::vector<std::string> node_task_;            // task id per node ("" = free)
  std::vector<bool> node_drained_;                // maintenance mode per node
  std::vector<ExecutionService*> flock_peers_;
  std::map<int, EventCallback> listeners_;
  std::map<std::string, double> owner_usage_;
  int next_listener_ = 1;
  bool up_ = true;
  bool dispatching_ = false;  // re-entrancy guard
};

}  // namespace gae::exec
