// Quickstart: the smallest end-to-end GAE deployment.
//
// Builds a two-site simulated grid, wires up the full service ensemble
// (execution services, runtime estimators, Sphinx scheduler, Job Monitoring
// Service, Steering Service), submits one job, and watches it run — all in
// virtual time, so this finishes instantly.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "estimators/recorder.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "sim/load.h"
#include "sphinx/scheduler.h"
#include "steering/service.h"

#include "common/log.h"

using namespace gae;


int main() {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  // --- 1. A simulated grid: site "cern" is busy, site "caltech" is idle.
  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("cern").add_node("cern-n0", 1.0,
                                 std::make_shared<sim::ConstantLoad>(0.7));
  grid.add_site("caltech").add_node("ct-n0", 1.0, nullptr);
  grid.set_default_link({100e6, from_millis(20)});

  // --- 2. One execution service + runtime estimator per site. The recorder
  //        feeds each site's completions back into its history (§6.1).
  exec::ExecutionService exec_cern(sim, grid, "cern");
  exec::ExecutionService exec_caltech(sim, grid, "caltech");
  auto est_cern = std::make_shared<estimators::RuntimeEstimator>(
      std::make_shared<estimators::TaskHistoryStore>());
  auto est_caltech = std::make_shared<estimators::RuntimeEstimator>(
      std::make_shared<estimators::TaskHistoryStore>());
  estimators::SiteRuntimeRecorder rec_cern(exec_cern, est_cern);
  estimators::SiteRuntimeRecorder rec_caltech(exec_caltech, est_caltech);

  // --- 3. Shared infrastructure: MonALISA repository, estimate database,
  //        Sphinx scheduler, Job Monitoring Service, Steering Service.
  monalisa::Repository monitoring;
  auto estimate_db = std::make_shared<estimators::EstimateDatabase>();
  sphinx::SphinxScheduler scheduler(sim, grid, &monitoring, estimate_db);
  scheduler.add_site("cern", {&exec_cern, est_cern});
  scheduler.add_site("caltech", {&exec_caltech, est_caltech});

  jobmon::JobMonitoringService jms(sim.clock(), &monitoring, estimate_db);
  jms.attach_site("cern", &exec_cern);
  jms.attach_site("caltech", &exec_caltech);

  steering::SteeringService::Deps deps;
  deps.sim = &sim;
  deps.scheduler = &scheduler;
  deps.jobmon = &jms;
  deps.services = {{"cern", &exec_cern}, {"caltech", &exec_caltech}};
  steering::SteeringService steering(deps);
  steering.subscribe([](const steering::Notification& n) {
    std::printf("  [steering %7.1fs] %s %s %s\n", to_seconds(n.time), n.kind.c_str(),
                n.task_id.c_str(), n.detail.c_str());
  });

  // --- 4. Submit a physics-analysis job through the scheduler.
  exec::TaskSpec task;
  task.id = "higgs-scan-1";
  task.owner = "alice";
  task.executable = "higgs-scan";
  task.work_seconds = 180.0;  // needs 3 minutes on a free reference CPU
  task.output_bytes = 25'000'000;
  task.attributes = {{"executable", "higgs-scan"}, {"login", "alice"},
                     {"queue", "analysis"}, {"nodes", "1"}};

  sphinx::JobDescription job;
  job.id = "analysis-session-42";
  job.owner = "alice";
  job.tasks.push_back({task, {}});

  auto plan = scheduler.submit(job);
  if (!plan.is_ok()) {
    std::fprintf(stderr, "submit failed: %s\n", plan.status().to_string().c_str());
    return 1;
  }
  std::printf("job planned: task %s -> site %s (est %.0fs runtime, %.0fs queue)\n",
              plan.value().placements[0].task_id.c_str(),
              plan.value().placements[0].site.c_str(),
              plan.value().placements[0].score.est_runtime_seconds,
              plan.value().placements[0].score.est_queue_seconds);

  // --- 5. Watch it run: poll the Job Monitoring Service every 30 s (virtual).
  for (double t = 30; t <= 600; t += 30) {
    sim.schedule_at(from_seconds(t), [&, t] {
      auto info = jms.info("higgs-scan-1");
      if (!info.is_ok()) return;
      std::printf("  [monitor  %7.1fs] %-9s progress %5.1f%%  cpu %6.1fs  site %s\n", t,
                  exec::task_state_name(info.value().info.state),
                  info.value().info.progress * 100, info.value().info.cpu_seconds_used,
                  info.value().site.c_str());
    });
  }
  sim.run();

  auto final_info = jms.info("higgs-scan-1");
  if (final_info.is_ok()) {
    std::printf("\nfinal state: %s at %s after %.1f s wall\n",
                exec::task_state_name(final_info.value().info.state),
                final_info.value().site.c_str(), final_info.value().elapsed_seconds);
    for (const auto& [site, svc] :
         std::map<std::string, exec::ExecutionService*>{{"cern", &exec_cern},
                                                        {"caltech", &exec_caltech}}) {
      for (const auto& f : svc->local_output_files("higgs-scan-1")) {
        std::printf("output available: %s at %s\n", f.c_str(), site.c_str());
      }
    }
  }
  return 0;
}
