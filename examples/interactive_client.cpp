// The web-services deployment: GAE services hosted on a Clarens host over
// real TCP, driven by a language-neutral XML-RPC client — the way the paper's
// users reached them.
//
// The process plays both roles: it starts the host (with authentication and
// ACLs), then connects to itself as a client, logs in, discovers services,
// monitors a job and steers it.
//
//   $ ./interactive_client
#include <cstdio>
#include <memory>

#include "clarens/credentials.h"
#include "clarens/host.h"
#include "clarens/session_store.h"
#include "estimators/runtime_estimator.h"
#include "gridfile/file_service.h"
#include "jobmon/rpc_binding.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "rpc/client.h"
#include "sim/load.h"
#include "sphinx/scheduler.h"
#include "steering/rpc_binding.h"
#include "steering/service.h"

#include "common/log.h"

using namespace gae;


int main() {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  // --- Server side ----------------------------------------------------------
  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("site-a").add_node("a0", 1.0, std::make_shared<sim::ConstantLoad>(0.8));
  grid.add_site("site-b").add_node("b0", 1.0, nullptr);
  exec::ExecutionService exec_a(sim, grid, "site-a");
  exec::ExecutionService exec_b(sim, grid, "site-b");

  monalisa::Repository monitoring;
  auto estimate_db = std::make_shared<estimators::EstimateDatabase>();
  auto est = std::make_shared<estimators::RuntimeEstimator>(
      std::make_shared<estimators::TaskHistoryStore>());
  std::map<std::string, std::string> attrs = {{"executable", "primes"},
                                              {"login", "alice"},
                                              {"queue", "short"},
                                              {"nodes", "1"}};
  for (int i = 0; i < 5; ++i) est->record(attrs, 283, 0);

  sphinx::SphinxScheduler scheduler(sim, grid, &monitoring, estimate_db);
  scheduler.add_site("site-a", {&exec_a, est});
  scheduler.add_site("site-b", {&exec_b, est});
  jobmon::JobMonitoringService jms(sim.clock(), &monitoring, estimate_db);
  jms.attach_site("site-a", &exec_a);
  jms.attach_site("site-b", &exec_b);

  WallClock wall;
  clarens::ClarensHost host("gae-host", wall);

  // Grid security: alice authenticates with a delegated proxy certificate
  // issued by the GAE certificate authority (no password needed).
  clarens::CertificateAuthority ca("GAE-CA");
  host.auth().trust(&ca);
  const auto alice_cert = ca.issue("alice", wall.now() + from_seconds(86400));
  auto alice_proxy =
      clarens::CertificateAuthority::delegate(alice_cert, wall.now() + from_seconds(3600));

  // VO-style authorisation: members of the cms group may monitor and steer.
  host.acl().add_group_member("cms", "alice");
  host.acl().allow("group:cms", "jobmon.");
  host.acl().allow("group:cms", "steering.");
  host.acl().allow("group:cms", "session.");
  host.acl().allow("group:cms", "file.");

  clarens::SessionStateStore sessions(wall);
  clarens::register_session_methods(host, sessions);
  gridfile::register_file_methods(host, grid, "site-b");

  steering::SteeringService::Deps deps;
  deps.sim = &sim;
  deps.scheduler = &scheduler;
  deps.jobmon = &jms;
  deps.services = {{"site-a", &exec_a}, {"site-b", &exec_b}};
  deps.auth = &host.auth();  // the Session Manager checks host identities
  steering::SteeringOptions sopts;
  sopts.auto_steer = false;  // the *user* steers in this example
  steering::SteeringService steering(deps, sopts);

  jobmon::register_jobmon_methods(host, jms);
  steering::register_steering_methods(host, steering);

  auto port = host.serve(0);
  if (!port.is_ok()) {
    std::fprintf(stderr, "serve failed: %s\n", port.status().to_string().c_str());
    return 1;
  }
  std::printf("Clarens host serving on 127.0.0.1:%u\n\n", port.value());

  // A job is already running on the loaded site.
  exec::TaskSpec task;
  task.id = "primes-1";
  task.owner = "alice";
  task.executable = "primes";
  task.work_seconds = 283;
  task.attributes = attrs;
  sphinx::JobDescription job;
  job.id = "interactive-session";
  job.owner = "alice";
  job.tasks.push_back({task, {}});
  if (!scheduler.submit(job).is_ok()) return 1;
  sim.run_until(from_seconds(120));  // by now: clearly too slow at site-a

  // --- Client side ------------------------------------------------------------
  rpc::RpcClient client("127.0.0.1", port.value(), rpc::Protocol::kXmlRpc);

  // Certificate login happens in-process here (the wire format for cert
  // chains is deployment-specific); the minted session token then drives
  // every remote call, exactly as a password login would.
  auto token = host.auth().login_with_chain(
      {alice_proxy.value().certificate, alice_cert.certificate});
  if (!token.is_ok()) {
    std::fprintf(stderr, "certificate login failed: %s\n",
                 token.status().to_string().c_str());
    return 1;
  }
  client.set_session_token(token.value());
  std::printf("logged in as alice via proxy certificate (session %.8s...)\n",
              token.value().c_str());

  auto services = client.call("system.discover", {rpc::Value("")});
  if (services.is_ok()) {
    std::printf("discovered services:\n");
    for (const auto& s : services.value().as_array()) {
      std::printf("  - %s\n", s.get_string("name", "?").c_str());
    }
  }

  auto info = client.call("jobmon.info", {rpc::Value("primes-1")});
  if (info.is_ok()) {
    std::printf("\njob primes-1: %s at %s, progress %.1f%%, est runtime %.0fs, "
                "remaining %.0fs cpu\n",
                info.value().get_string("status", "?").c_str(),
                info.value().get_string("site", "?").c_str(),
                info.value().get_double("progress", 0) * 100,
                info.value().get_double("estimated_runtime_seconds", 0),
                info.value().get_double("remaining_seconds", 0));
  }

  std::printf("\nprogress is poor -> user moves the job to site-b\n");
  auto moved = client.call("steering.move",
                           {rpc::Value("primes-1"), rpc::Value("site-b")});
  if (!moved.is_ok()) {
    std::fprintf(stderr, "move failed: %s\n", moved.status().to_string().c_str());
    return 1;
  }
  std::printf("moved: now at %s (estimated total %.0fs there)\n",
              moved.value().get_string("site", "?").c_str(),
              moved.value().get_double("total_seconds", 0));

  sim.run();  // let the moved job finish in virtual time

  auto final_info = client.call("jobmon.info", {rpc::Value("primes-1")});
  if (final_info.is_ok()) {
    std::printf("final: %s at %s, completed at t=%.0fs\n",
                final_info.value().get_string("status", "?").c_str(),
                final_info.value().get_string("site", "?").c_str(),
                final_info.value().get_double("completion_time", -1));
  }

  // Persist the analysis session so another client can resume it.
  rpc::Struct state;
  state["job"] = rpc::Value("interactive-session");
  state["last_task"] = rpc::Value("primes-1");
  state["note"] = rpc::Value("moved to site-b after slow start");
  if (client.call("session.save", {rpc::Value("primes-study"), rpc::Value(state)})
          .is_ok()) {
    auto keys = client.call("session.list", {});
    if (keys.is_ok()) {
      std::printf("\nsaved analysis session; stored keys:");
      for (const auto& k : keys.value().as_array()) {
        std::printf(" %s", k.as_string().c_str());
      }
      std::printf("\n");
    }
  }

  // Download the job's output through the Clarens file service.
  auto outputs = client.call("file.list", {rpc::Value("primes-1")});
  if (outputs.is_ok() && !outputs.value().as_array().empty()) {
    const auto& f = outputs.value().as_array()[0];
    auto chunk = client.call(
        "file.read", {rpc::Value(f.get_string("name", "")), rpc::Value(0), rpc::Value(64)});
    if (chunk.is_ok()) {
      std::printf("downloaded %s (%lld bytes total), first bytes: %.32s...\n",
                  f.get_string("name", "").c_str(),
                  static_cast<long long>(f.get_int("bytes", 0)),
                  chunk.value().get_string("data", "").c_str());
    }
  }

  auto notes = client.call("steering.notifications", {});
  if (notes.is_ok()) {
    std::printf("\nsteering notification log:\n");
    for (const auto& n : notes.value().as_array()) {
      std::printf("  t=%7.1fs %-10s %s %s\n", n.get_double("time", 0),
                  n.get_string("kind", "").c_str(), n.get_string("task_id", "").c_str(),
                  n.get_string("detail", "").c_str());
    }
  }

  host.stop();
  return 0;
}
