// A CMS-style physics analysis session (the workload §2 motivates):
//
//  - a DAG job: skim -> three parallel reconstruction passes -> merge;
//  - input datasets that live on specific storage elements, so the scheduler
//    trades compute speed against staging cost;
//  - an execution-service failure mid-run, recovered automatically by the
//    steering service's Backup & Recovery module;
//  - job-state history published to the MonALISA repository.
//
//   $ ./physics_analysis
#include <cstdio>
#include <memory>

#include "estimators/recorder.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "sim/load.h"
#include "sphinx/scheduler.h"
#include "steering/service.h"

#include "common/log.h"

using namespace gae;


namespace {

exec::TaskSpec analysis_task(const std::string& id, const std::string& exe, double work) {
  exec::TaskSpec t;
  t.id = id;
  t.owner = "physicist";
  t.executable = exe;
  t.work_seconds = work;
  t.checkpointable = true;
  t.output_bytes = 10'000'000;
  t.attributes = {{"executable", exe}, {"login", "physicist"}, {"queue", "cms"},
                  {"nodes", "1"}};
  return t;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  sim::Simulation sim;
  sim::Grid grid;
  // Tier-0 holds the raw dataset; two analysis sites with different capacity.
  grid.add_site("tier0-cern").add_node("t0-n0", 1.0, nullptr);
  auto& fnal = grid.add_site("fnal");
  fnal.add_node("fnal-n0", 1.2, nullptr);
  fnal.add_node("fnal-n1", 1.2, nullptr);
  grid.add_site("nust").add_node("nust-n0", 0.8,
                                 std::make_shared<sim::ConstantLoad>(0.3));
  grid.set_default_link({50e6, from_millis(40)});                 // 50 MB/s WAN
  grid.set_symmetric_link("tier0-cern", "fnal", {200e6, from_millis(15)});
  grid.site("tier0-cern").store_file("run2026-raw.root", 20'000'000'000);  // 20 GB

  std::map<std::string, std::unique_ptr<exec::ExecutionService>> execs;
  std::map<std::string, std::shared_ptr<estimators::RuntimeEstimator>> estimators_by_site;
  std::vector<std::unique_ptr<estimators::SiteRuntimeRecorder>> recorders;
  for (const auto& site : grid.site_names()) {
    execs[site] = std::make_unique<exec::ExecutionService>(sim, grid, site);
    auto est = std::make_shared<estimators::RuntimeEstimator>(
        std::make_shared<estimators::TaskHistoryStore>());
    // Pre-seed from "previous analysis rounds" so planning is informed.
    for (int i = 0; i < 4; ++i) {
      est->record(analysis_task("h", "skim", 1).attributes, 600, 0);
      est->record(analysis_task("h", "reco", 1).attributes, 900, 0);
      est->record(analysis_task("h", "merge", 1).attributes, 300, 0);
    }
    estimators_by_site[site] = est;
    recorders.push_back(
        std::make_unique<estimators::SiteRuntimeRecorder>(*execs[site], est));
  }

  monalisa::Repository monitoring;
  auto estimate_db = std::make_shared<estimators::EstimateDatabase>();
  sphinx::SphinxScheduler scheduler(sim, grid, &monitoring, estimate_db);
  jobmon::JobMonitoringService jms(sim.clock(), &monitoring, estimate_db);
  for (const auto& site : grid.site_names()) {
    scheduler.add_site(site, {execs[site].get(), estimators_by_site[site]});
    jms.attach_site(site, execs[site].get());
  }

  steering::SteeringService::Deps deps;
  deps.sim = &sim;
  deps.scheduler = &scheduler;
  deps.jobmon = &jms;
  for (const auto& site : grid.site_names()) deps.services[site] = execs[site].get();
  steering::SteeringOptions sopts;
  sopts.recovery_interval_seconds = 20;
  steering::SteeringService steering(deps, sopts);
  steering.subscribe([](const steering::Notification& n) {
    std::printf("  [steering %8.1fs] %-15s %-12s %s\n", to_seconds(n.time),
                n.kind.c_str(), n.task_id.c_str(), n.detail.c_str());
  });

  // --- The analysis DAG.
  sphinx::JobDescription job;
  job.id = "cms-analysis-7";
  job.owner = "physicist";
  auto skim = analysis_task("skim", "skim", 600);
  skim.input_files = {"run2026-raw.root"};
  job.tasks.push_back({skim, {}});
  for (int i = 0; i < 3; ++i) {
    auto reco = analysis_task("reco-" + std::to_string(i), "reco", 900);
    job.tasks.push_back({reco, {"skim"}});
  }
  auto merge = analysis_task("merge", "merge", 300);
  job.tasks.push_back({merge, {"reco-0", "reco-1", "reco-2"}});

  auto plan = scheduler.submit(job);
  if (!plan.is_ok()) {
    std::fprintf(stderr, "submit failed: %s\n", plan.status().to_string().c_str());
    return 1;
  }
  std::printf("concrete job plan (%zu tasks):\n", plan.value().placements.size());
  for (const auto& p : plan.value().placements) {
    std::printf("  %-8s -> %-12s run %5.0fs queue %5.0fs transfer %6.0fs\n",
                p.task_id.c_str(), p.site.c_str(), p.score.est_runtime_seconds,
                p.score.est_queue_seconds, p.score.est_transfer_seconds);
  }
  std::printf("\n");

  // Disaster strikes: the busiest analysis site dies 20 virtual minutes in.
  sim.schedule_at(from_seconds(1200), [&] {
    std::printf("  [grid     %8.1fs] !!! fnal execution service fails\n", 1200.0);
    execs["fnal"]->fail_service("cooling failure");
  });
  sim.schedule_at(from_seconds(2400), [&] {
    std::printf("  [grid     %8.1fs] fnal execution service restored\n", 2400.0);
    execs["fnal"]->recover_service();
  });

  sim.run(5'000'000);

  auto status = scheduler.job_status("cms-analysis-7");
  if (status.is_ok()) {
    std::printf("\njob state: %s (%zu/%zu tasks completed, %zu failed)\n",
                status.value().state == sphinx::JobState::kCompleted ? "COMPLETED"
                                                                     : "NOT COMPLETE",
                status.value().tasks_completed, status.value().tasks_total,
                status.value().tasks_failed);
  }
  std::printf("steering stats: %zu auto moves, %zu recoveries, %zu completions\n",
              steering.stats().auto_moves, steering.stats().recoveries,
              steering.stats().completions);
  std::printf("MonALISA recorded %zu job-state updates\n", monitoring.event_count());

  auto merged = jms.info("merge");
  if (merged.is_ok() && merged.value().info.state == exec::TaskState::kCompleted) {
    std::printf("analysis result %s.out produced at %s, t=%.0fs\n",
                merged.value().info.spec.id.c_str(), merged.value().site.c_str(),
                to_seconds(merged.value().info.completion_time));
  }
  return 0;
}
