// Accounting-trace tooling: generate a synthetic Paragon-style trace, save
// it to CSV, reload it, print summary statistics, and evaluate the runtime
// estimator against it — the full fig-5 pipeline as a reusable command-line
// tool.
//
//   $ ./trace_explorer                 # generate + evaluate, default seed
//   $ ./trace_explorer 7               # different seed
//   $ ./trace_explorer 7 /tmp/t.csv    # also keep the CSV
#include <cmath>
#include <cstdio>
#include <map>

#include "common/rng.h"
#include "common/stats.h"
#include "estimators/runtime_estimator.h"
#include "workload/task_generator.h"
#include "workload/trace_io.h"

#include "common/log.h"

using namespace gae;


int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1995;
  const std::string csv_path = argc > 2 ? argv[2] : "";

  // --- Generate.
  Rng rng(seed);
  workload::PopulationOptions popts;
  popts.num_applications = 16;
  auto population = workload::ApplicationPopulation::make(rng, popts);
  workload::TraceOptions topts;
  topts.num_records = 500;
  auto trace = workload::generate_trace(population, rng, topts);
  std::printf("generated %zu accounting records (seed %llu)\n", trace.size(),
              static_cast<unsigned long long>(seed));

  // --- Round-trip through CSV (and optionally keep the file).
  const std::string csv = workload::trace_to_csv(trace);
  auto reloaded = workload::trace_from_csv(csv);
  if (!reloaded.is_ok()) {
    std::fprintf(stderr, "CSV round trip failed: %s\n",
                 reloaded.status().to_string().c_str());
    return 1;
  }
  trace = std::move(reloaded).value();
  std::printf("CSV round trip ok (%zu bytes)\n", csv.size());
  if (!csv_path.empty()) {
    if (workload::save_trace(trace, csv_path).is_ok()) {
      std::printf("saved trace to %s\n", csv_path.c_str());
    }
  }

  // --- Summarise.
  RunningStats runtimes, queue_waits, nodes;
  std::map<std::string, int> per_queue;
  int failures = 0;
  for (const auto& r : trace) {
    runtimes.add(r.runtime_seconds());
    queue_waits.add(to_seconds(r.start_time - r.submit_time));
    nodes.add(r.nodes);
    ++per_queue[r.queue];
    if (!r.successful) ++failures;
  }
  std::printf("\n-- trace summary --\n");
  std::printf("runtime  : mean %8.1fs  sd %8.1fs  min %7.1fs  max %9.1fs\n",
              runtimes.mean(), runtimes.stddev(), runtimes.min(), runtimes.max());
  std::printf("queue    : mean %8.1fs  max %8.1fs\n", queue_waits.mean(),
              queue_waits.max());
  std::printf("nodes    : mean %8.1f   max %8.0f\n", nodes.mean(), nodes.max());
  std::printf("failures : %d / %zu\n", failures, trace.size());
  std::printf("queues   :");
  for (const auto& [q, n] : per_queue) std::printf(" %s=%d", q.c_str(), n);
  std::printf("\n");

  // --- Evaluate the runtime estimator with a growing history (online mode:
  //     predict each job from everything before it).
  auto store = std::make_shared<estimators::TaskHistoryStore>();
  estimators::RuntimeEstimatorOptions eopts;
  eopts.min_matches = 2;
  estimators::RuntimeEstimator estimator(store, estimators::SimilarityMatcher(), eopts);

  RunningStats abs_err;
  std::vector<double> errors;
  for (const auto& r : trace) {
    const auto attrs = workload::record_attributes(r);
    if (store->size() >= 20 && r.successful) {
      auto est = estimator.estimate(attrs);
      if (est.is_ok()) {
        const double e =
            std::fabs(r.runtime_seconds() - est.value().seconds) / r.runtime_seconds() * 100.0;
        abs_err.add(e);
        errors.push_back(e);
      }
    }
    estimator.record(attrs, r.runtime_seconds(), r.complete_time, r.successful);
  }
  std::printf("\n-- online estimator evaluation --\n");
  std::printf("predictions : %zu\n", errors.size());
  std::printf("mean |%%err| : %.2f %%\n", abs_err.mean());
  std::printf("median      : %.2f %%    p90: %.2f %%\n", percentile(errors, 50),
              percentile(errors, 90));
  return 0;
}
