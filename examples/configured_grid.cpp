// Text-configured deployment: the whole grid topology comes from an INI
// file, so operators can re-shape the testbed without recompiling.
//
//   $ ./configured_grid                 # uses a built-in demo config
//   $ ./configured_grid mygrid.ini      # or your own
//
// The demo config builds a three-site grid, runs a batch of analysis jobs
// through the full service stack, and prints where everything ran.
#include <cstdio>
#include <memory>

#include "estimators/recorder.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "sim/config_loader.h"
#include "sphinx/scheduler.h"
#include "steering/service.h"
#include "workload/task_generator.h"

#include "common/log.h"

using namespace gae;


namespace {

constexpr const char* kDemoConfig = R"(
# Demo grid: a fast centre, a loaded centre, and a small university site.
[defaults]
bandwidth_mbps = 100
latency_ms = 25

[site:tier1-fast]
node.0 = speed=1.4
node.1 = speed=1.4
storage.calibration.db = 500000000

[site:tier1-loaded]
node.0 = speed=1.2 load=periodic:0.2,0.85,1800,1800
node.1 = speed=1.2 load=constant:0.6

[site:uni]
node.0 = speed=0.8 load=walk:0.0,0.5,300,86400,42

[link:tier1-fast->tier1-loaded]
bandwidth_mbps = 1000
latency_ms = 5
)";

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  // --- Load the topology.
  Result<Config> config = argc > 1 ? Config::load_file(argv[1])
                                   : Config::parse(kDemoConfig);
  if (!config.is_ok()) {
    std::fprintf(stderr, "config error: %s\n", config.status().to_string().c_str());
    return 1;
  }
  sim::Simulation sim;
  sim::Grid grid;
  const Status built = sim::grid_from_config(config.value(), grid);
  if (!built.is_ok()) {
    std::fprintf(stderr, "topology error: %s\n", built.to_string().c_str());
    return 1;
  }

  std::printf("grid loaded: %zu sites\n", grid.site_names().size());
  for (const auto& name : grid.site_names()) {
    const sim::Site& site = grid.site(name);
    std::printf("  %-14s %zu nodes", name.c_str(), site.node_count());
    if (!site.files().empty()) std::printf(", %zu files", site.files().size());
    std::printf("\n");
  }

  // --- Full service stack on top of the configured topology. Declaration
  // order matters: subscribers (scheduler, monitoring, steering) must be
  // destroyed before the execution services they watch.
  monalisa::Repository monitoring;
  auto estimate_db = std::make_shared<estimators::EstimateDatabase>();
  std::map<std::string, std::unique_ptr<exec::ExecutionService>> execs;
  sphinx::SphinxScheduler scheduler(sim, grid, &monitoring, estimate_db);
  jobmon::JobMonitoringService jms(sim.clock(), &monitoring, estimate_db);
  std::vector<std::unique_ptr<estimators::SiteRuntimeRecorder>> recorders;
  for (const auto& name : grid.site_names()) {
    execs[name] = std::make_unique<exec::ExecutionService>(sim, grid, name);
    auto est = std::make_shared<estimators::RuntimeEstimator>(
        std::make_shared<estimators::TaskHistoryStore>());
    recorders.push_back(
        std::make_unique<estimators::SiteRuntimeRecorder>(*execs[name], est));
    scheduler.add_site(name, {execs[name].get(), est});
    jms.attach_site(name, execs[name].get());
  }
  steering::SteeringService::Deps deps;
  deps.sim = &sim;
  deps.scheduler = &scheduler;
  deps.jobmon = &jms;
  for (const auto& name : grid.site_names()) deps.services[name] = execs[name].get();
  steering::SteeringService steering(deps);

  // --- A batch of jobs.
  Rng rng(1);
  auto population = workload::ApplicationPopulation::make(rng, {});
  workload::DagGenOptions dopts;
  dopts.levels = 2;
  dopts.max_width = 3;
  dopts.task_options.input_file_rate = 0.0;
  for (int j = 0; j < 5; ++j) {
    auto job = workload::make_dag_job(population, rng, dopts, "batch-" + std::to_string(j));
    for (auto& t : job.tasks) t.spec.work_seconds = std::min(t.spec.work_seconds, 900.0);
    if (!scheduler.submit(job).is_ok()) return 1;
  }
  sim.run(5'000'000);

  // --- Where did everything run?
  std::printf("\n%-14s %10s %10s %12s\n", "site", "tasks", "completed", "cpu_seconds");
  for (const auto& name : grid.site_names()) {
    std::size_t tasks = 0, completed = 0;
    double cpu = 0;
    for (const auto& info : execs[name]->list_tasks()) {
      ++tasks;
      if (info.state == exec::TaskState::kCompleted) ++completed;
      cpu += info.cpu_seconds_used;
    }
    std::printf("%-14s %10zu %10zu %12.0f\n", name.c_str(), tasks, completed, cpu);
  }
  std::printf("steering: %zu auto moves, %zu recoveries\n", steering.stats().auto_moves,
              steering.stats().recoveries);
  return 0;
}
