// "Grid weather" dashboard: the interactive-information side of the paper.
//
// Advanced users steer jobs well only if they can see the state of the grid.
// This example runs a busy simulated grid and periodically prints, per site:
// MonALISA load, free nodes, queue backlog (via the queue-time estimator's
// machinery), and estimated transfer times for a reference 1 GB dataset —
// the "Grid weather" §1 says users lack today.
//
//   $ ./grid_weather
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "estimators/estimate_db.h"
#include "estimators/transfer_estimator.h"
#include "monalisa/repository.h"
#include "sim/load.h"
#include "sphinx/scheduler.h"
#include "workload/task_generator.h"

#include "common/log.h"

using namespace gae;


int main() {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  sim::Simulation sim;
  sim::Grid grid;
  Rng rng(2026);

  const std::vector<std::string> sites = {"cern", "caltech", "fnal", "nust"};
  for (std::size_t i = 0; i < sites.size(); ++i) {
    auto& site = grid.add_site(sites[i]);
    const int nodes = 2 + static_cast<int>(i % 3);
    for (int n = 0; n < nodes; ++n) {
      site.add_node(sites[i] + "-n" + std::to_string(n), rng.uniform(0.8, 1.5),
                    sim::make_random_walk_load(rng.fork(sites[i] + std::to_string(n)),
                                               0.0, 0.9, from_seconds(120),
                                               from_seconds(7200)));
    }
  }
  grid.set_default_link({80e6, from_millis(30)});
  grid.set_symmetric_link("cern", "caltech", {300e6, from_millis(80)});

  std::map<std::string, std::unique_ptr<exec::ExecutionService>> execs;
  for (const auto& s : sites) {
    execs[s] = std::make_unique<exec::ExecutionService>(sim, grid, s);
  }

  // MonALISA farm agents: publish each site's mean node load every 60 s.
  monalisa::Repository monitoring;
  std::vector<std::unique_ptr<monalisa::PeriodicSampler>> samplers;
  for (const auto& s : sites) {
    samplers.push_back(std::make_unique<monalisa::PeriodicSampler>(
        sim, from_seconds(60), [&, s] {
          const sim::Site& site = grid.site(s);
          double load = 0;
          for (std::size_t n = 0; n < site.node_count(); ++n) {
            load += site.node(n).background_load(sim.now());
          }
          monitoring.publish(s, "cpu_load", sim.now(),
                             load / static_cast<double>(site.node_count()));
        }));
  }

  // Background traffic: a stream of batch tasks keeps the queues moving.
  auto population = workload::ApplicationPopulation::make(rng, {});
  auto estimate_db = std::make_shared<estimators::EstimateDatabase>();
  workload::TaskGenOptions gopts;
  gopts.input_file_rate = 0.0;
  int task_counter = 0;
  std::function<void()> feed = [&] {
    auto spec = workload::make_task(population, rng, gopts,
                                    "bg-" + std::to_string(task_counter++));
    spec.work_seconds = std::min(spec.work_seconds, 1200.0);
    const auto& site = sites[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sites.size()) - 1))];
    estimate_db->put(spec.id, spec.work_seconds);  // oracle estimates for the demo
    execs[site]->submit(spec);
    sim.schedule_after(from_seconds(rng.exponential(90)), feed);
  };
  sim.schedule_at(0, feed);

  // MonALISA alarms: shout when any site's load crosses 70 %.
  for (const auto& s : sites) {
    monitoring.add_alarm({s, "cpu_load", 0.7, true},
                         [&sim](const monalisa::AlarmEvent& ev) {
                           std::printf("  !! ALARM t=%6.0fs: %s cpu_load %.0f%% >= 70%%\n",
                                       to_seconds(sim.now()), ev.spec.source.c_str(),
                                       ev.point.value * 100);
                         });
  }

  estimators::FileTransferEstimator transfer(grid);
  constexpr std::uint64_t kDatasetBytes = 1'000'000'000;  // reference 1 GB

  // The dashboard: print grid weather every 10 virtual minutes.
  for (double t = 600; t <= 3600; t += 600) {
    sim.schedule_at(from_seconds(t), [&, t] {
      std::printf("=== grid weather at t=%5.0f s ===\n", t);
      std::printf("%-10s %9s %10s %12s %16s\n", "site", "load", "free", "backlog_s",
                  "xfer_1GB_from_cern");
      for (const auto& s : sites) {
        const double load =
            monitoring.windowed_average(s, "cpu_load", sim.now(), from_seconds(300))
                .value_or(-1);
        // Queue backlog: summed remaining estimates of waiting work.
        double backlog = 0;
        for (const auto& info : execs[s]->list_tasks()) {
          if (info.state == exec::TaskState::kQueued) {
            backlog += estimate_db->get(info.spec.id).value_or(600.0);
          }
        }
        const auto xfer = transfer.estimate("cern", s, kDatasetBytes, sim.now());
        std::printf("%-10s %8.0f%% %10zu %12.0f %15.1fs\n", s.c_str(), load * 100,
                    execs[s]->free_nodes(), backlog,
                    xfer.is_ok() ? xfer.value().seconds : -1.0);
      }
      std::printf("\n");
    });
  }

  sim.run_until(from_seconds(3601));

  std::size_t total = 0, completed = 0;
  for (const auto& s : sites) {
    for (const auto& info : execs[s]->list_tasks()) {
      ++total;
      if (info.state == exec::TaskState::kCompleted) ++completed;
    }
  }
  std::printf("one simulated hour: %zu tasks submitted, %zu completed\n", total,
              completed);
  std::printf("load alarms raised: %zu\n", monitoring.alarm_log().size());
  return 0;
}
