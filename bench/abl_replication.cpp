// Ablation E10: demand-driven replication vs staging cost.
//
// The paper's motivation includes "accessing data from a data grid"; its
// fig. 7 discussion names input-transfer time as a factor in move decisions.
// This bench runs a stream of analysis tasks at a remote site whose input
// dataset initially lives only at the tier-0 store, and sweeps the
// replication manager's hot-file threshold: lower thresholds replicate
// sooner, converting per-task WAN staging into one background transfer.
#include <cstdio>

#include "common/rng.h"
#include "common/stats.h"
#include "replica/replication.h"
#include "sim/load.h"

#include "common/log.h"

using namespace gae;


namespace {

struct Outcome {
  double mean_start_delay_s = 0.0;  // submit -> compute start
  double makespan_s = 0.0;
  std::size_t replicas = 0;
  std::uint64_t wan_bytes = 0;  // staging + replication traffic
};

Outcome run(int hot_threshold, int tasks) {
  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("tier0");
  auto& site = grid.add_site("analysis");
  site.add_node("n0", 1.0, nullptr);
  site.add_node("n1", 1.0, nullptr);
  grid.set_default_link({100e6, 0});
  grid.site("tier0").store_file("dataset.root", 2'000'000'000);  // 20 s to stage

  exec::ExecutionService exec(sim, grid, "analysis");
  replica::ReplicaCatalog catalog(grid);
  catalog.scan(0);
  replica::ReplicationOptions ropts;
  ropts.hot_access_threshold = hot_threshold;
  replica::ReplicationManager manager(sim, grid, catalog, ropts);
  if (hot_threshold > 0) manager.watch(exec);

  // One analysis task arrives every 30 virtual seconds.
  for (int i = 0; i < tasks; ++i) {
    sim.schedule_at(from_seconds(30.0 * i), [&exec, i] {
      exec::TaskSpec spec;
      spec.id = "t" + std::to_string(i);
      spec.work_seconds = 60;
      spec.input_files = {"dataset.root"};
      exec.submit(spec);
    });
  }
  sim.run();

  Outcome out;
  RunningStats delay;
  SimTime last = 0;
  std::uint64_t staged = 0;
  for (const auto& info : exec.list_tasks()) {
    // Wait before compute = queue wait (submit -> node) + staging time
    // (bytes over the 100 MB/s WAN link).
    const double staging_s = static_cast<double>(info.input_bytes_transferred) / 100e6;
    delay.add(to_seconds(info.start_time - info.submit_time) + staging_s);
    staged += info.input_bytes_transferred;
    last = std::max(last, info.completion_time);
  }
  out.mean_start_delay_s = delay.mean();
  out.makespan_s = to_seconds(last);
  out.replicas = manager.stats().replicas_created;
  out.wan_bytes = staged + manager.stats().bytes_transferred;
  return out;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  constexpr int kTasks = 12;
  std::printf("Ablation E10: demand-driven replication (%d tasks, 2 GB dataset, "
              "100 MB/s WAN)\n\n",
              kTasks);
  std::printf("%-18s %12s %12s %10s %14s\n", "hot_threshold", "makespan_s",
              "mean_wait_s", "replicas", "wan_GB_total");

  for (int threshold : {0 /* replication off */, 1, 2, 4, 8}) {
    const Outcome o = run(threshold, kTasks);
    std::printf("%-18s %12.1f %12.1f %10zu %14.1f\n",
                threshold == 0 ? "off" : std::to_string(threshold).c_str(), o.makespan_s,
                o.mean_start_delay_s, o.replicas,
                static_cast<double>(o.wan_bytes) / 1e9);
  }
  std::printf("\nlower thresholds trade one background transfer for per-task WAN "
              "staging; 'off' stages every task.\n");
  return 0;
}
