// Concurrency ablation: goodput and tail latency of the RPC fabric at 1 /
// 4 / 16 / 64 concurrent clients, comparing three client configurations
// against the same server:
//
//   single  — the pre-pool client shape: one persistent connection, calls
//             serialised on it (a mutex around the call reproduces the old
//             single-stream RpcClient). Adding clients adds queueing, not
//             parallelism — the fig-6 flat line.
//   pooled  — the per-endpoint connection pool: N in-flight calls check out
//             N keep-alive sockets, so server workers run in parallel.
//   batched — pooled plus rpc.batch: each round trip carries kBatch status
//             reads (one wire exchange, one admission ticket), the dashboard
//             poll pattern the jobmon read path serves.
//
// Goodput counts successful items per wall second (a batch of 8 counts 8).
// The tentpole acceptance bar is pooled/batched goodput at 16 clients >= 2x
// the single-connection configuration; the JSON artifact records the ratio.
//
// Emits BENCH_concurrency.json (see --bench_json=PATH).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "rpc/batch.h"
#include "rpc/client.h"
#include "rpc/server.h"

using namespace gae;

namespace {

constexpr int kHandlerMs = 2;      // simulated jobmon read (DB lookup + encode)
constexpr int kBatch = 8;          // items per rpc.batch round trip
constexpr double kRunSeconds = 1.2;
const std::vector<int> kClientCounts = {1, 4, 16, 64};

std::shared_ptr<rpc::Dispatcher> read_dispatcher() {
  auto d = std::make_shared<rpc::Dispatcher>();
  d->register_method("mon.read",
                     [](const rpc::Array&, const rpc::CallContext&) -> Result<rpc::Value> {
                       std::this_thread::sleep_for(std::chrono::milliseconds(kHandlerMs));
                       return rpc::Value(static_cast<std::int64_t>(1));
                     });
  d->enable_batch(kBatch * 2);
  return d;
}

struct RunResult {
  std::vector<double> item_us;  // per successful item, end-to-end
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  double elapsed_s = 0;
  double goodput_ips = 0;  // successful items per wall second
};

enum class Mode { kSingle, kPooled, kBatched };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kSingle: return "single";
    case Mode::kPooled: return "pooled";
    case Mode::kBatched: return "batched";
  }
  return "?";
}

RunResult run_load(std::uint16_t port, Mode mode, int threads) {
  RunResult result;
  rpc::ClientOptions options;
  options.default_call.retry.max_attempts = 2;
  rpc::RpcClient client({{"127.0.0.1", port}}, rpc::Protocol::kJsonRpc, options);

  std::mutex serialise;  // taken around every call in single mode only
  std::mutex collect;
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::duration<double>(kRunSeconds);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      std::vector<double> local_us;
      std::uint64_t local_ok = 0, local_errors = 0;
      while (std::chrono::steady_clock::now() < end) {
        const auto t0 = std::chrono::steady_clock::now();
        std::uint64_t items_ok = 0, items_bad = 0;
        if (mode == Mode::kBatched) {
          std::vector<rpc::BatchItem> items(
              static_cast<std::size_t>(kBatch),
              rpc::BatchItem{"mon.read", {}, Criticality::kStatus});
          for (const auto& r : client.call_many(items)) {
            r.is_ok() ? ++items_ok : ++items_bad;
          }
        } else {
          std::unique_lock<std::mutex> one_stream(serialise, std::defer_lock);
          if (mode == Mode::kSingle) one_stream.lock();
          auto r = client.call("mon.read", {});
          r.is_ok() ? ++items_ok : ++items_bad;
        }
        const double us =
            std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                      t0)
                .count();
        // Every item in a round trip waited the whole round trip.
        for (std::uint64_t i = 0; i < items_ok; ++i) local_us.push_back(us);
        local_ok += items_ok;
        local_errors += items_bad;
      }
      std::lock_guard<std::mutex> lock(collect);
      result.item_us.insert(result.item_us.end(), local_us.begin(), local_us.end());
      result.ok += local_ok;
      result.errors += local_errors;
    });
  }
  for (auto& w : workers) w.join();
  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.goodput_ips =
      result.elapsed_s > 0 ? static_cast<double>(result.ok) / result.elapsed_s : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  rpc::ServerOptions server_options;
  server_options.num_workers = 96;  // the server is not the axis under test
  rpc::RpcServer server(read_dispatcher(), server_options);
  auto port = server.start();
  if (!port.is_ok()) {
    std::fprintf(stderr, "bind failed: %s\n", port.status().to_string().c_str());
    return 1;
  }

  std::printf("# abl_concurrency: %d ms handler, batch=%d, %.1fs per cell\n",
              kHandlerMs, kBatch, kRunSeconds);
  std::printf("%-10s %8s %12s %10s %10s %8s\n", "mode", "clients", "goodput_ips",
              "p50_ms", "p99_ms", "errors");

  std::vector<bench::Scenario> scenarios;
  double single_16 = 0, pooled_16 = 0, batched_16 = 0;
  for (const Mode mode : {Mode::kSingle, Mode::kPooled, Mode::kBatched}) {
    for (const int clients : kClientCounts) {
      RunResult r = run_load(port.value(), mode, clients);
      bench::Scenario s = bench::summarize(
          std::string(mode_name(mode)) + "/c" + std::to_string(clients), r.item_us);
      s.throughput_rps = r.goodput_ips;  // wall-clock goodput, not 1/latency
      scenarios.push_back(s);
      if (clients == 16) {
        if (mode == Mode::kSingle) single_16 = r.goodput_ips;
        if (mode == Mode::kPooled) pooled_16 = r.goodput_ips;
        if (mode == Mode::kBatched) batched_16 = r.goodput_ips;
      }
      std::printf("%-10s %8d %12.1f %10.2f %10.2f %8llu\n", mode_name(mode), clients,
                  r.goodput_ips, s.p50_us / 1e3, s.p99_us / 1e3,
                  static_cast<unsigned long long>(r.errors));
    }
  }

  const double pooled_speedup = single_16 > 0 ? pooled_16 / single_16 : 0;
  const double batched_speedup = single_16 > 0 ? batched_16 / single_16 : 0;
  std::printf("# speedup at 16 clients vs single-connection: pooled %.2fx, "
              "batched %.2fx\n",
              pooled_speedup, batched_speedup);

  const std::string json = bench::bench_json_path(argc, argv);
  if (!json.empty()) {
    char extra[160];
    std::snprintf(extra, sizeof(extra),
                  "\"speedup_16_clients\": {\"pooled\": %.3f, \"batched\": %.3f}",
                  pooled_speedup, batched_speedup);
    if (!bench::write_bench_json(json, "abl_concurrency", scenarios, {extra})) {
      std::fprintf(stderr, "failed to write %s\n", json.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", json.c_str());
  }

  server.stop();
  // The acceptance bar for the pooled fabric: >= 2x single-connection
  // goodput at 16 concurrent clients.
  return pooled_speedup >= 2.0 && batched_speedup >= 2.0 ? 0 : 2;
}
