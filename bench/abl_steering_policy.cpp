// Ablation E6: steering-policy parameters.
//
// §7 observes that "a critical factor that affects the job completion time
// is the time at which the decision to move the job is taken" and that
// checkpointing + flocking would improve on the 369 s steered completion.
// This bench quantifies both: completion time of the fig-7 job as a function
// of the optimizer's decision cadence, the slow-rate threshold, and
// checkpointing, plus the flocking alternative (no steering at all).
#include <cstdio>
#include <map>

#include "estimators/estimate_db.h"
#include "estimators/runtime_estimator.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "sim/load.h"
#include "sphinx/scheduler.h"
#include "steering/service.h"

#include "common/log.h"

using namespace gae;


namespace {

constexpr double kJobSeconds = 283.0;
constexpr double kSiteALoad = 0.8;

struct Outcome {
  double completion_s = -1;
  double move_time_s = -1;
  std::size_t moves = 0;
};

Outcome run(double optimizer_interval, double min_observation, double slow_threshold,
            bool checkpointable, bool use_flocking) {
  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("site-a").add_node("a0", 1.0,
                                   std::make_shared<sim::ConstantLoad>(kSiteALoad));
  grid.add_site("site-b").add_node("b0", 1.0, nullptr);
  grid.set_default_link({100e6, 0});

  exec::ExecutionService exec_a(sim, grid, "site-a");
  exec::ExecutionService exec_b(sim, grid, "site-b");
  monalisa::Repository monitoring;
  auto estimate_db = std::make_shared<estimators::EstimateDatabase>();

  std::map<std::string, std::string> attrs = {{"executable", "primes"},
                                              {"login", "alice"},
                                              {"queue", "short"},
                                              {"nodes", "1"}};
  auto est_a = std::make_shared<estimators::RuntimeEstimator>(
      std::make_shared<estimators::TaskHistoryStore>());
  auto est_b = std::make_shared<estimators::RuntimeEstimator>(
      std::make_shared<estimators::TaskHistoryStore>());
  for (int i = 0; i < 8; ++i) {
    est_a->record(attrs, kJobSeconds, 0);
    est_b->record(attrs, kJobSeconds, 0);
  }

  sphinx::SphinxScheduler scheduler(sim, grid, &monitoring, estimate_db);
  scheduler.add_site("site-a", {&exec_a, est_a});
  scheduler.add_site("site-b", {&exec_b, est_b});
  jobmon::JobMonitoringService jms(sim.clock(), &monitoring, estimate_db);
  jms.attach_site("site-a", &exec_a);
  jms.attach_site("site-b", &exec_b);

  steering::SteeringService::Deps deps;
  deps.sim = &sim;
  deps.scheduler = &scheduler;
  deps.jobmon = &jms;
  deps.services = {{"site-a", &exec_a}, {"site-b", &exec_b}};
  steering::SteeringOptions sopts;
  sopts.auto_steer = !use_flocking;
  sopts.optimizer_interval_seconds = optimizer_interval;
  sopts.min_observation_seconds = min_observation;
  sopts.slow_rate_threshold = slow_threshold;
  steering::SteeringService steering(deps, sopts);

  if (use_flocking) exec_a.flock_with(&exec_b);

  exec::TaskSpec job;
  job.id = "primes-1";
  job.owner = "alice";
  job.executable = "primes";
  job.work_seconds = kJobSeconds;
  job.checkpointable = checkpointable;
  job.attributes = attrs;
  sphinx::JobDescription desc;
  desc.id = "j";
  desc.owner = "alice";
  desc.tasks.push_back({job, {}});

  Outcome out;
  steering.subscribe([&](const steering::Notification& n) {
    if (n.kind == "moved" && out.move_time_s < 0) out.move_time_s = to_seconds(n.time);
  });

  if (!scheduler.submit(desc).is_ok()) return out;
  sim.run_until(from_seconds(5000));

  for (exec::ExecutionService* svc : {&exec_b, &exec_a}) {
    auto info = svc->query("primes-1");
    if (info.is_ok() && info.value().state == exec::TaskState::kCompleted) {
      out.completion_s = to_seconds(info.value().completion_time);
      break;
    }
  }
  out.moves = steering.stats().auto_moves;
  return out;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  std::printf("Ablation E6: steering policy vs fig-7 job completion time\n");
  std::printf("(283 s job, site A load %.0f %%; unsteered baseline ~%.0f s)\n\n",
              kSiteALoad * 100, kJobSeconds / (1 - kSiteALoad));

  std::printf("-- decision cadence (threshold 0.5, observe>=2*interval, restart) --\n");
  std::printf("%-22s %14s %12s\n", "optimizer_interval_s", "completion_s", "move_at_s");
  for (double interval : {5.0, 15.0, 30.0, 60.0, 120.0}) {
    const Outcome o = run(interval, 2 * interval, 0.5, false, false);
    std::printf("%-22.0f %14.1f %12.1f\n", interval, o.completion_s, o.move_time_s);
  }

  std::printf("\n-- slow-rate threshold (15 s cadence, 30 s observation) --\n");
  std::printf("%-22s %14s %12s %8s\n", "threshold", "completion_s", "move_at_s",
              "moves");
  for (double threshold : {0.05, 0.1, 0.3, 0.5, 0.9}) {
    const Outcome o = run(15, 30, threshold, false, false);
    std::printf("%-22.2f %14.1f %12.1f %8zu\n", threshold, o.completion_s, o.move_time_s,
                o.moves);
  }

  std::printf("\n-- migration mechanism (15 s cadence, threshold 0.5) --\n");
  std::printf("%-34s %14s\n", "mechanism", "completion_s");
  {
    const Outcome restart = run(15, 30, 0.5, false, false);
    std::printf("%-34s %14.1f\n", "steer + restart from zero", restart.completion_s);
    const Outcome ckpt = run(15, 30, 0.5, true, false);
    std::printf("%-34s %14.1f\n", "steer + checkpointed migration", ckpt.completion_s);
    const Outcome flock = run(15, 30, 0.5, true, true);
    std::printf("%-34s %14.1f\n", "condor flocking only (no steering)",
                flock.completion_s);
    const Outcome none = run(1e9, 1e9, 0.0, false, false);
    std::printf("%-34s %14.1f\n", "no steering (stays on site A)", none.completion_s);
  }
  return 0;
}
