// Overload ablation: goodput and tail latency of the RPC fabric under 1x /
// 5x / 10x nominal load, with and without the overload-resilience stack.
//
//   static   — the pre-admission configuration: a fixed worker pool behind a
//              deep accept queue, no deadlines on the wire. Under a storm
//              every connection queues, every handler runs to completion, and
//              the caller has long since given up on most of the answers.
//   adaptive — the same server with the AdmissionController attached and a
//              60 ms whole-call deadline on every request: the AIMD limiter
//              bounds handler concurrency, CoDel drains the acceptor queue,
//              expired requests are rejected before dispatch, and sheds are
//              answered with a cheap 503 instead of a burned handler.
//
// Goodput counts only answers the caller could still use: successful calls
// whose end-to-end latency fit the 60 ms budget. Requests are spread across
// the three criticality tiers round-robin, so the tier-0 tail under storm is
// also reported (the admission ceilings should hold it near its no-load
// value while bulk is shed).
//
// Emits BENCH_overload.json (see --bench_json=PATH).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/admission.h"
#include "common/clock.h"
#include "common/retry.h"
#include "rpc/client.h"
#include "rpc/server.h"

using namespace gae;

namespace {

constexpr int kWorkers = 8;
constexpr int kHandlerMs = 40;    // simulated I/O-bound handler work
// Caller patience for the whole call, exactly 2x the handler floor: any
// answer that beats the deadline is by construction within 2x of the
// no-load latency, which is the tail guarantee the deadline plane sells.
constexpr int kDeadlineMs = 80;
constexpr int kBaseThreads = 4;   // "1x": comfortably inside capacity
constexpr double kRunSeconds = 2.0;

std::shared_ptr<rpc::Dispatcher> work_dispatcher() {
  auto d = std::make_shared<rpc::Dispatcher>();
  d->register_method("work.op",
                     [](const rpc::Array&, const rpc::CallContext&) -> Result<rpc::Value> {
                       std::this_thread::sleep_for(std::chrono::milliseconds(kHandlerMs));
                       return rpc::Value(static_cast<std::int64_t>(1));
                     });
  return d;
}

struct LoadResult {
  std::vector<double> good_us;        // latencies of within-deadline successes
  std::vector<double> tier0_good_us;  // same, tier 0 only
  std::uint64_t attempts = 0;
  std::uint64_t good = 0;
  std::uint64_t shed = 0;      // RESOURCE_EXHAUSTED (503 / retry-budget)
  std::uint64_t late = 0;      // DEADLINE_EXCEEDED or answered past budget
  std::uint64_t errors = 0;    // everything else
  double elapsed_s = 0;
  double goodput_rps = 0;
  double tier0_p99_us = 0;
};

/// Closed-loop storm: `threads` clients, connect-per-call (a kept-alive
/// connection would pin a worker per client and measure the connection cap,
/// not admission), tiers assigned round-robin across threads.
LoadResult run_load(std::uint16_t port, int threads, bool with_deadline) {
  LoadResult result;
  std::mutex mutex;
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::duration<double>(kRunSeconds);

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const auto tier = static_cast<Criticality>(t % kCriticalityTiers);
      std::vector<double> good_us, tier0_us;
      std::uint64_t attempts = 0, good = 0, shed = 0, late = 0, errors = 0;
      while (std::chrono::steady_clock::now() < end) {
        const auto t0 = std::chrono::steady_clock::now();
        rpc::RpcClient client("127.0.0.1", port);
        rpc::CallOptions opts;
        opts.retry = RetryPolicy::none();
        opts.tier = tier;
        opts.deadline_ms = with_deadline ? kDeadlineMs : 0;
        const auto r = client.call("work.op", {}, opts);
        const double us =
            std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
                .count();
        ++attempts;
        if (r.is_ok() && us <= kDeadlineMs * 1000.0) {
          ++good;
          good_us.push_back(us);
          if (tier == Criticality::kControl) tier0_us.push_back(us);
        } else if (r.is_ok()) {
          ++late;  // answered, but past the caller's patience
        } else if (r.status().code() == StatusCode::kResourceExhausted) {
          ++shed;
        } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
          ++late;
        } else {
          ++errors;
        }
      }
      std::lock_guard<std::mutex> lock(mutex);
      result.good_us.insert(result.good_us.end(), good_us.begin(), good_us.end());
      result.tier0_good_us.insert(result.tier0_good_us.end(), tier0_us.begin(),
                                  tier0_us.end());
      result.attempts += attempts;
      result.good += good;
      result.shed += shed;
      result.late += late;
      result.errors += errors;
    });
  }
  for (auto& w : workers) w.join();

  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.goodput_rps =
      result.elapsed_s > 0 ? static_cast<double>(result.good) / result.elapsed_s : 0;
  std::sort(result.tier0_good_us.begin(), result.tier0_good_us.end());
  result.tier0_p99_us = bench::percentile_of(result.tier0_good_us, 99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  struct Row {
    std::string name;
    LoadResult r;
  };
  std::vector<Row> rows;

  const int loads[] = {1, 5, 10};
  for (const bool adaptive : {false, true}) {
    // One server per configuration; the only difference is the admission
    // controller and whether clients send a deadline.
    WallClock wall;
    AdmissionOptions aopts;
    // Size the limiter to the worker pool (a limit above num_workers can
    // never bind: only a worker can hold a ticket) and keep the acceptor
    // queue short — queue time is pure deadline burn for a 60 ms budget.
    aopts.min_limit = 2;
    aopts.initial_limit = kWorkers;
    aopts.max_limit = kWorkers;
    aopts.queue_interval_ms = 30;
    AdmissionController admission(wall, aopts);
    rpc::ServerOptions sopts;
    sopts.port = 0;
    sopts.num_workers = kWorkers;
    sopts.max_in_flight = 256;  // deep accept queue for both configurations
    if (adaptive) sopts.admission = &admission;
    rpc::RpcServer server(work_dispatcher(), sopts);
    auto port = server.start();
    if (!port.is_ok()) {
      std::fprintf(stderr, "server start failed: %s\n", port.status().message().c_str());
      return 1;
    }
    for (const int load : loads) {
      const std::string name =
          std::string(adaptive ? "adaptive" : "static") + "_" + std::to_string(load) + "x";
      rows.push_back({name, run_load(port.value(), kBaseThreads * load, adaptive)});
      const LoadResult& r = rows.back().r;
      std::printf(
          "%-12s threads=%-3d attempts=%-6llu good=%-6llu shed=%-6llu late=%-6llu "
          "err=%-4llu goodput=%8.1f rps  tier0_p99=%8.0f us\n",
          name.c_str(), kBaseThreads * load,
          static_cast<unsigned long long>(r.attempts),
          static_cast<unsigned long long>(r.good),
          static_cast<unsigned long long>(r.shed),
          static_cast<unsigned long long>(r.late),
          static_cast<unsigned long long>(r.errors), r.goodput_rps, r.tier0_p99_us);
    }
    server.stop();
  }

  auto find = [&rows](const std::string& name) -> const LoadResult& {
    for (const auto& row : rows) {
      if (row.name == name) return row.r;
    }
    static LoadResult empty;
    return empty;
  };
  const double static_10x = find("static_10x").goodput_rps;
  const double adaptive_10x = find("adaptive_10x").goodput_rps;
  const double goodput_ratio = static_10x > 0 ? adaptive_10x / static_10x : 0;
  const double p99_1x = find("adaptive_1x").tier0_p99_us;
  const double p99_10x = find("adaptive_10x").tier0_p99_us;
  const double p99_ratio = p99_1x > 0 ? p99_10x / p99_1x : 0;
  std::printf("\nadaptive/static goodput at 10x: %.2fx   tier0 p99 10x/1x: %.2fx\n",
              goodput_ratio, p99_ratio);

  std::vector<bench::Scenario> scenarios;
  std::vector<std::string> goodputs, p99s;
  for (const auto& row : rows) {
    scenarios.push_back(bench::summarize(row.name, row.r.good_us));
    char buf[160];
    std::snprintf(buf, sizeof(buf), "\"%s\": %.1f", row.name.c_str(), row.r.goodput_rps);
    goodputs.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "\"%s\": %.1f", row.name.c_str(), row.r.tier0_p99_us);
    p99s.emplace_back(buf);
  }
  auto join = [](const std::vector<std::string>& parts) {
    std::string out = "{";
    for (std::size_t i = 0; i < parts.size(); ++i) {
      out += parts[i];
      if (i + 1 < parts.size()) out += ", ";
    }
    return out + "}";
  };
  char member[200];
  std::vector<std::string> extra;
  extra.push_back("\"goodput_rps\": " + join(goodputs));
  extra.push_back("\"tier0_p99_us\": " + join(p99s));
  std::snprintf(member, sizeof(member), "\"goodput_x10_ratio\": %.3f", goodput_ratio);
  extra.emplace_back(member);
  std::snprintf(member, sizeof(member), "\"tier0_p99_10x_over_1x\": %.3f", p99_ratio);
  extra.emplace_back(member);
  std::snprintf(member, sizeof(member),
                "\"config\": {\"workers\": %d, \"handler_ms\": %d, \"deadline_ms\": %d, "
                "\"base_threads\": %d, \"run_seconds\": %.1f}",
                kWorkers, kHandlerMs, kDeadlineMs, kBaseThreads, kRunSeconds);
  extra.emplace_back(member);

  std::string path = bench::bench_json_path(argc, argv);
  if (path.empty()) path = "BENCH_overload.json";
  if (!bench::write_bench_json(path, "abl_overload", scenarios, extra)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
