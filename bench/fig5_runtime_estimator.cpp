// Figure 5 reproduction: actual vs estimated runtimes for 20 test cases.
//
// Paper setup (§7): accounting data from the SDSC Paragon (Downey, 1995);
// a history of 100 jobs; runtimes estimated for the next 20; per-case
// percentage error and the mean error (paper reports 13.53 %).
//
// Here the trace is synthesised by workload::generate_trace (see DESIGN.md
// for why the substitution preserves the "similar tasks have similar
// runtimes" premise). The reproduction criterion is the error *regime*
// (low-teens mean percentage error), not the exact 13.53 %.
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "estimators/runtime_estimator.h"
#include "workload/paragon_trace.h"
#include "workload/task_generator.h"

#include "common/log.h"

using namespace gae;


int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1995;

  Rng rng(seed);
  workload::PopulationOptions popts;
  // A 100-job history over ~14 recurring applications gives each application
  // the handful of prior runs the paper's history-based approach assumes.
  popts.num_applications = 12;
  popts.sigma_within = 0.16;  // Paragon-like within-application dispersion
  auto population = workload::ApplicationPopulation::make(rng, popts);

  workload::TraceOptions topts;
  topts.num_records = 120;  // 100 history + 20 test cases
  topts.failure_rate = 0.0;
  const auto trace = workload::generate_trace(population, rng, topts);

  auto store = std::make_shared<estimators::TaskHistoryStore>();
  estimators::RuntimeEstimatorOptions eopts;
  eopts.min_matches = 2;  // accept a template once two prior runs match
  estimators::RuntimeEstimator estimator(store, estimators::SimilarityMatcher(), eopts);
  for (std::size_t i = 0; i < 100; ++i) {
    estimator.record(workload::record_attributes(trace[i]), trace[i].runtime_seconds(),
                     trace[i].complete_time);
  }

  std::printf("Figure 5: Actual & Estimated Runtimes for 20 test cases\n");
  std::printf("(history = 100 jobs, synthetic Paragon-style trace, seed %llu)\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("%-6s %12s %14s %12s %8s  %s\n", "case", "actual_s", "estimated_s",
              "error_pct", "samples", "template");

  double total_abs_pct = 0.0;
  double total_signed_pct = 0.0;
  for (std::size_t i = 100; i < 120; ++i) {
    const double actual = trace[i].runtime_seconds();
    auto est = estimator.estimate(workload::record_attributes(trace[i]));
    if (!est.is_ok()) {
      std::fprintf(stderr, "estimation failed for case %zu: %s\n", i - 99,
                   est.status().to_string().c_str());
      return 1;
    }
    // Paper formula: (actual - estimated) / actual * 100 %.
    const double signed_pct = (actual - est.value().seconds) / actual * 100.0;
    total_signed_pct += signed_pct;
    total_abs_pct += std::fabs(signed_pct);
    std::printf("%-6zu %12.1f %14.1f %11.2f%% %8zu  %s\n", i - 99, actual,
                est.value().seconds, signed_pct, est.value().samples,
                est.value().template_name.c_str());
  }

  std::printf("\nmean absolute percentage error : %6.2f %%   (paper: 13.53 %%)\n",
              total_abs_pct / 20.0);
  std::printf("mean signed percentage error   : %6.2f %%\n", total_signed_pct / 20.0);
  return 0;
}
