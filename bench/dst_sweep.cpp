// Deterministic-simulation seed sweep: plays randomized whole-cluster fault
// schedules (kills, restarts, partitions, clock skew, WAL bit rot) against
// dst::Cluster on virtual time and reports throughput plus any invariant
// violations.
//
//   dst_sweep [--seeds=N] [--begin=S] [--bench_json=PATH]   sweep mode
//   dst_sweep --seed=S [--trace]                            replay one seed
//
// Replay is bit-identical: the seed fully determines the schedule, the
// network jitter, and the workload, so a seed printed by a failing sweep
// (or by CI) reproduces the identical run here.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.h"
#include "dst/explore.h"

namespace {

std::string flag_value(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

bool flag_present(int argc, char** argv, const std::string& name) {
  const std::string bare = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) return true;
  }
  return false;
}

int replay_seed(std::uint64_t seed, bool trace) {
  gae::dst::ExploreOptions options;
  options.cluster.trace = trace;
  std::printf("replaying seed %llu\n", static_cast<unsigned long long>(seed));
  auto result = gae::dst::run_seed(seed, options);
  std::printf("schedule:\n");
  for (const auto& action : result.actions) std::printf("  %s\n", action.c_str());
  std::printf("writes_acked=%llu reads_ok=%llu reads_err=%llu promoted=%d\n",
              static_cast<unsigned long long>(result.writes_acked),
              static_cast<unsigned long long>(result.reads_ok),
              static_cast<unsigned long long>(result.reads_err), result.promoted ? 1 : 0);
  if (result.ok) {
    std::printf("seed %llu: all invariants held (%llu checks)\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(result.invariant_checks));
    return 0;
  }
  std::printf("%s", gae::dst::format_failure(result).c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string one_seed = flag_value(argc, argv, "seed");
  if (!one_seed.empty()) {
    return replay_seed(std::strtoull(one_seed.c_str(), nullptr, 10),
                       flag_present(argc, argv, "trace"));
  }

  std::uint64_t seeds = 2000;
  std::uint64_t begin = 1;
  if (const std::string v = flag_value(argc, argv, "seeds"); !v.empty()) {
    seeds = std::strtoull(v.c_str(), nullptr, 10);
  }
  if (const std::string v = flag_value(argc, argv, "begin"); !v.empty()) {
    begin = std::strtoull(v.c_str(), nullptr, 10);
  }

  gae::dst::ExploreOptions options;
  const auto start = std::chrono::steady_clock::now();
  auto report = gae::dst::explore(begin, begin + seeds, options);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  const double schedules_per_sec = secs > 0 ? static_cast<double>(report.seeds_run) / secs : 0;
  const double checks_per_sec =
      secs > 0 ? static_cast<double>(report.total_invariant_checks) / secs : 0;
  std::printf("swept %llu seeds in %.2fs: %.1f schedules/s, %.0f invariant checks/s, "
              "%llu acked writes, %zu failing seed(s)\n",
              static_cast<unsigned long long>(report.seeds_run), secs, schedules_per_sec,
              checks_per_sec, static_cast<unsigned long long>(report.total_writes_acked),
              report.failures.size());
  for (const auto& failure : report.failures) {
    std::printf("%s", gae::dst::format_failure(failure).c_str());
  }

  const std::string json = gae::bench::bench_json_path(argc, argv);
  if (!json.empty()) {
    std::vector<std::string> extra = {
        "\"seeds\": " + std::to_string(report.seeds_run),
        "\"wall_seconds\": " + std::to_string(secs),
        "\"schedules_per_sec\": " + std::to_string(schedules_per_sec),
        "\"invariant_checks_per_sec\": " + std::to_string(checks_per_sec),
        "\"failing_seeds\": " + std::to_string(report.failures.size()),
    };
    gae::bench::write_bench_json(json, "dst_sweep", {}, extra);
  }
  return report.failures.empty() ? 0 : 1;
}
