// Failover ablation: availability gap and acknowledged-write loss across 30
// seeded primary kills, sync vs async WAL shipping.
//
// Each trial runs an estimate-store primary replicating to one standby over
// the in-process transport, kills the primary at a seeded point mid-workload,
// then drives the failure detector + supervisor + registry primary lease on a
// virtual clock until the standby is promoted. Reported per mode:
//   - availability gap: virtual ms from the crash to a promoted, re-registered
//     standby (detector TTL + restart backoff + lease-fencing wait + replay)
//   - acked-write loss: writes acknowledged to the client that the promoted
//     standby does NOT hold. Sync shipping must report 0 across all kills;
//     async loses its buffered tail — that delta is the headline number.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "clarens/registry.h"
#include "common/clock.h"
#include "common/wal.h"
#include "estimators/estimate_db.h"
#include "ha/failover.h"
#include "ha/replication.h"
#include "supervision/failure_detector.h"
#include "supervision/supervisor.h"

using namespace gae;

namespace {

constexpr int kKills = 30;
constexpr int kWorkloadWrites = 60;
const SimDuration kBeat = from_millis(150);
const SimDuration kDeathTtl = 3 * kBeat;  // dead_after_missed * interval

struct Trial {
  double gap_ms = 0;       // crash -> promotion, virtual ms
  int acked = 0;           // writes acknowledged before the crash
  int lost = 0;            // acked writes missing from the promoted standby
  std::uint64_t epoch = 0; // fencing epoch after promotion
};

Trial run_trial(ha::ReplicationMode mode, int seed) {
  Trial trial;

  ManualClock clock;
  clarens::RegistryOptions registry_options;
  registry_options.default_ttl = kDeathTtl;
  clarens::ServiceRegistry registry("arbiter", &clock, registry_options);

  MemoryWalStorage primary_store, standby_store;
  ha::StandbyReplica replica("estimates", &standby_store);
  ha::LocalShipperTransport transport(&replica);
  ha::ShipperOptions ship_options;
  ship_options.mode = mode;
  ship_options.batch_max_records = 8;  // async ships every 8 records
  ha::LogShipper shipper("estimates", ship_options);
  shipper.add_standby(&transport);

  auto lease = registry.acquire_primary("estimates");
  if (!lease.is_ok()) return trial;
  shipper.set_epoch(lease.value().epoch);

  ha::ReplicatedWalStorage replicated(&primary_store, &shipper);
  Wal wal(&replicated);
  estimators::EstimateDatabase primary(&wal);

  supervision::FailureDetectorOptions detector_options;
  detector_options.heartbeat_interval = kBeat;
  detector_options.dead_after_missed = 3;
  detector_options.dead_debounce_checks = 2;
  supervision::FailureDetector detector(clock, detector_options);
  detector.watch("estimates-primary");

  supervision::SupervisorOptions supervisor_options;
  supervisor_options.restart_backoff =
      RetryPolicy{/*max_attempts=*/20, /*initial_backoff_ms=*/25,
                  /*backoff_multiplier=*/1.5, /*max_backoff_ms=*/100,
                  /*jitter_fraction=*/0.0, /*jitter_seed=*/1};
  supervision::Supervisor supervisor(clock, supervisor_options);
  supervisor.attach(detector);

  Wal standby_wal(&standby_store);
  estimators::EstimateDatabase standby_db(&standby_wal);
  auto role = std::make_shared<ha::PrimaryRole>();
  ha::PromotionOptions promotion;
  promotion.registry = &registry;
  promotion.service = "estimates";
  promotion.self.name = "estimates";
  promotion.self.host = "standby";
  promotion.lease_ttl = kDeathTtl;
  promotion.replica = &replica;
  promotion.replay = [&] { return standby_db.recover(); };
  promotion.role = role;
  promotion.clock = &clock;
  bool promoted = false;
  supervisor.manage(ha::make_promotion_recipe(
      "estimates-primary", promotion, [&](const ha::Promotion&) { promoted = true; }));

  // Seeded kill point: somewhere in the middle of the workload.
  const int kill_at = 10 + (seed * 7919) % (kWorkloadWrites - 20);

  for (int i = 0; i < kill_at; ++i) {
    primary.put("t" + std::to_string(i), 2.5 * i);
    ++trial.acked;  // the store acknowledged the write to its caller
    detector.heartbeat("estimates-primary");
    clock.advance_by(from_millis(40));
    (void)registry.renew_primary("estimates", lease.value().lease_id);
  }

  // CRASH: no more beats, renewals, or flushes. Drive the control plane.
  const SimTime crash_at = clock.now();
  while (!promoted && clock.now() - crash_at < 10 * kDeathTtl) {
    clock.advance_by(from_millis(25));
    detector.check();
    supervisor.tick();
    registry.sweep();
  }
  trial.gap_ms = to_seconds(clock.now() - crash_at) * 1000.0;
  trial.epoch = registry.primary_epoch("estimates");

  // Loss: acked writes the promoted standby does not hold.
  int recovered = 0;
  for (int i = 0; i < trial.acked; ++i) {
    if (standby_db.get("t" + std::to_string(i)).is_ok()) ++recovered;
  }
  trial.lost = trial.acked - recovered;
  return trial;
}

void report(const char* name, const std::vector<Trial>& trials) {
  double gap_sum = 0, gap_max = 0;
  int lost_total = 0, acked_total = 0, lossy_kills = 0;
  for (const Trial& t : trials) {
    gap_sum += t.gap_ms;
    if (t.gap_ms > gap_max) gap_max = t.gap_ms;
    lost_total += t.lost;
    acked_total += t.acked;
    if (t.lost > 0) ++lossy_kills;
  }
  std::printf("%-6s kills=%zu acked=%d lost=%d lossy_kills=%d "
              "gap_mean=%.1fms gap_max=%.1fms\n",
              name, trials.size(), acked_total, lost_total, lossy_kills,
              gap_sum / static_cast<double>(trials.size()), gap_max);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Trial> sync_trials, async_trials;
  std::vector<double> sync_gaps_us, async_gaps_us;
  for (int seed = 0; seed < kKills; ++seed) {
    sync_trials.push_back(run_trial(ha::ReplicationMode::kSync, seed));
    async_trials.push_back(run_trial(ha::ReplicationMode::kAsync, seed));
    sync_gaps_us.push_back(sync_trials.back().gap_ms * 1000.0);
    async_gaps_us.push_back(async_trials.back().gap_ms * 1000.0);
  }

  std::printf("abl_failover: %d seeded primary kills, sync vs async shipping\n",
              kKills);
  report("sync", sync_trials);
  report("async", async_trials);

  int sync_lost = 0, async_lost = 0, sync_acked = 0, async_acked = 0;
  for (const Trial& t : sync_trials) { sync_lost += t.lost; sync_acked += t.acked; }
  for (const Trial& t : async_trials) { async_lost += t.lost; async_acked += t.acked; }

  if (sync_lost != 0) {
    std::fprintf(stderr, "FAIL: sync mode lost %d acked writes\n", sync_lost);
    return 1;
  }

  const std::string json_path = gae::bench::bench_json_path(argc, argv);
  if (!json_path.empty()) {
    std::vector<gae::bench::Scenario> scenarios;
    scenarios.push_back(gae::bench::summarize("failover_gap_sync", sync_gaps_us));
    scenarios.push_back(gae::bench::summarize("failover_gap_async", async_gaps_us));
    const std::vector<std::string> extras = {
        "\"kills\": " + std::to_string(kKills),
        "\"sync_acked_writes\": " + std::to_string(sync_acked),
        "\"sync_acked_writes_lost\": " + std::to_string(sync_lost),
        "\"async_acked_writes\": " + std::to_string(async_acked),
        "\"async_acked_writes_lost\": " + std::to_string(async_lost),
    };
    if (!gae::bench::write_bench_json(json_path, "abl_failover", scenarios, extras)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
