// Tiny JSON emitter for bench artifacts (BENCH_rpc.json, BENCH_telemetry.json):
// each scenario reports latency percentiles and throughput so CI can archive
// and diff runs without parsing google-benchmark's console output.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace gae::bench {

struct Scenario {
  std::string name;
  std::size_t iterations = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double mean_us = 0;
  double throughput_rps = 0;
};

inline double percentile_of(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

inline Scenario summarize(std::string name, std::vector<double> latencies_us) {
  Scenario s;
  s.name = std::move(name);
  s.iterations = latencies_us.size();
  if (latencies_us.empty()) return s;
  double total = 0;
  for (const double v : latencies_us) total += v;
  std::sort(latencies_us.begin(), latencies_us.end());
  s.p50_us = percentile_of(latencies_us, 50);
  s.p95_us = percentile_of(latencies_us, 95);
  s.p99_us = percentile_of(latencies_us, 99);
  s.mean_us = total / static_cast<double>(latencies_us.size());
  s.throughput_rps = total > 0 ? 1e6 * static_cast<double>(latencies_us.size()) / total : 0;
  return s;
}

/// Writes {"bench": ..., "scenarios": [...]} (plus optional extra raw JSON
/// members, each a preformatted "\"key\": value" string). Returns false on
/// I/O failure.
inline bool write_bench_json(const std::string& path, const std::string& bench_name,
                             const std::vector<Scenario>& scenarios,
                             const std::vector<std::string>& extra_members = {}) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scenarios\": [\n", bench_name.c_str());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"iterations\": %zu, \"p50_us\": %.3f, "
                 "\"p95_us\": %.3f, \"p99_us\": %.3f, \"mean_us\": %.3f, "
                 "\"throughput_rps\": %.1f}%s\n",
                 s.name.c_str(), s.iterations, s.p50_us, s.p95_us, s.p99_us, s.mean_us,
                 s.throughput_rps, i + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(f, "  ]%s\n", extra_members.empty() ? "" : ",");
  for (std::size_t i = 0; i < extra_members.size(); ++i) {
    std::fprintf(f, "  %s%s\n", extra_members[i].c_str(),
                 i + 1 < extra_members.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  return std::fclose(f) == 0;
}

/// Returns the value of --bench_json=PATH from argv ("" when absent).
inline std::string bench_json_path(int argc, char** argv) {
  const std::string prefix = "--bench_json=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

}  // namespace gae::bench
